//! End-to-end loopback test of the live admin plane: real TCP, real
//! listener, real global metrics. Only meaningful with the `enabled`
//! feature (the listener is a stub otherwise).
#![cfg(feature = "enabled")]

use parcsr_obs::serve::{self, QueryKind};
use parcsr_server::admin::AdminServer;
use parcsr_server::client;
use std::io::{Read, Write};
use std::net::TcpStream;

/// One server for the whole test binary: the snapshot provider reads
/// process-global metrics, so tests share state anyway — a single
/// listener keeps the expectations explicit.
fn with_live_server(test: impl FnOnce(&str)) {
    parcsr_obs::set_enabled(true);
    // Seed the global grid so the exposition has windowed series.
    for _ in 0..8 {
        let t = serve::query_start();
        t.finish(QueryKind::Neighbors, || 3);
        let t = serve::query_start();
        t.finish(QueryKind::SplitSearch, || 50_000);
    }
    serve::rotate_window().expect("rotation completes a window");

    let mut server = AdminServer::bind(0, parcsr_obs::snapshot_all, serve::history_snapshot)
        .expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();
    test(&addr);
    server.shutdown();
}

#[test]
fn scrape_stats_and_probes_over_real_sockets() {
    with_live_server(|addr| {
        // Plain metrics scrape parses and carries live windowed series.
        let text = client::fetch(addr, "metrics").expect("metrics fetch");
        let expo = parcsr_obs::expo::parse(&text).expect("valid exposition");
        assert!(expo.saw_eof);
        assert!(
            expo.samples
                .iter()
                .any(|s| s.name == "parcsr_query_win_ns" && s.label("kind") == Some("neighbors")),
            "live query.win series missing from scrape"
        );

        // JSON stats parses and reuses the same snapshot names.
        let stats = client::fetch(addr, "stats").expect("stats fetch");
        assert!(stats.contains("parcsr.stats.v1"));
        assert!(parcsr_obs::json::Json::parse(&stats).is_ok());

        // Probes.
        assert_eq!(client::fetch(addr, "health").unwrap(), "ok\n");
        assert_eq!(client::fetch(addr, "ready").unwrap(), "ready\n");

        // History scrape: the rotated window landed in the ring and the
        // exposition view of it parses like a /metrics scrape.
        let hist = client::fetch(addr, "history").expect("history fetch");
        let expo = parcsr_obs::expo::parse(&hist).expect("valid history exposition");
        assert!(
            expo.samples
                .iter()
                .any(|s| s.name == "parcsr_history_windows" && s.value >= 1.0),
            "history ring empty after rotation"
        );
        assert!(
            expo.samples.iter().any(|s| s.name == "parcsr_query_hist_ns"
                && s.label("kind") == Some("neighbors")
                && s.label("window").is_some()),
            "per-cell history series missing"
        );

        // Unknown commands error without killing the listener.
        assert!(client::fetch(addr, "bogus").is_err());
        assert_eq!(client::fetch(addr, "health").unwrap(), "ok\n");

        // HTTP scrape on the same port (curl-style).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"));
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(parcsr_obs::expo::parse(body).unwrap().saw_eof);
    });
}
