//! Blocking client for the plain admin protocol, used by `parcsr watch`
//! and the CI scrape step. One connection per request keeps it stateless —
//! at watch's poll rates the reconnect cost is noise.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Connect/read/write timeout for one fetch.
const FETCH_TIMEOUT: Duration = Duration::from_secs(5);

/// Refuse `OK <len>` headers claiming more than this many payload bytes —
/// a corrupt length must not look like an instruction to allocate gigabytes.
const MAX_PAYLOAD: usize = 16 << 20;

/// Longest accepted response header line (`OK <len>` / `ERR <len>`).
const MAX_HEADER: usize = 64;

/// Sends one plain-protocol command (e.g. `metrics`, `stats`) to
/// `addr` (`host:port`) and returns the response payload. `ERR` responses
/// surface as [`io::ErrorKind::Other`] errors carrying the server's
/// message.
pub fn fetch(addr: &str, command: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(FETCH_TIMEOUT))?;
    stream.set_write_timeout(Some(FETCH_TIMEOUT))?;
    stream.write_all(command.as_bytes())?;
    stream.write_all(b"\n")?;
    read_response(&mut stream)
}

fn invalid(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Reads one `OK <len>\n<payload>` / `ERR <len>\n<payload>` response.
/// Exposed for tests; [`fetch`] is the normal entry point.
pub fn read_response(src: &mut impl Read) -> io::Result<String> {
    let mut header = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if src.read(&mut byte)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response header",
            ));
        }
        if byte[0] == b'\n' {
            break;
        }
        header.push(byte[0]);
        if header.len() > MAX_HEADER {
            return Err(invalid("response header too long"));
        }
    }
    let header = String::from_utf8_lossy(&header).into_owned();
    let (status, len) = header
        .split_once(' ')
        .ok_or_else(|| invalid(format!("malformed response header {header:?}")))?;
    let len: usize = len
        .trim()
        .parse()
        .map_err(|_| invalid(format!("bad payload length in {header:?}")))?;
    if len > MAX_PAYLOAD {
        return Err(invalid(format!(
            "payload length {len} exceeds {MAX_PAYLOAD}"
        )));
    }
    let mut payload = vec![0u8; len];
    src.read_exact(&mut payload)?;
    let payload = String::from_utf8_lossy(&payload).into_owned();
    match status {
        "OK" => Ok(payload),
        "ERR" => Err(io::Error::other(format!(
            "server error: {}",
            payload.trim_end()
        ))),
        other => Err(invalid(format!("unknown response status {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_response_returns_payload() {
        let mut src = &b"OK 5\nhello..."[..];
        assert_eq!(read_response(&mut src).unwrap(), "hello");
    }

    #[test]
    fn err_response_becomes_io_error_with_message() {
        let mut src = &b"ERR 4\nnope"[..];
        let e = read_response(&mut src).unwrap_err();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for bad in [
            &b"bogus\nx"[..],
            &b"OK abc\nx"[..],
            &b"OK 99999999999999\n"[..],
            &b"WAT 2\nxx"[..],
            &b""[..],
        ] {
            let mut src = bad;
            assert!(read_response(&mut src).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut src = &b"OK 10\nshort"[..];
        assert!(read_response(&mut src).is_err());
    }
}
