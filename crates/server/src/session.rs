//! One connection's lifecycle: fill the [`Buffer`] from the stream, drain
//! every complete request line, respond, repeat until the peer hangs up,
//! sends `quit`, completes an HTTP exchange, or misbehaves.
//!
//! The session is generic over `Read + Write`, so every robustness property
//! — partial reads, pipelined requests, oversized lines — is tested on
//! in-memory streams with adversarial chunking; the TCP listener in
//! [`crate::admin`] is a thin shell around this.

use crate::buffer::Buffer;
use crate::proto::{
    http_response, parse_request, plain_err, plain_ok, Endpoint, Request, MAX_LINE,
};
use parcsr_obs::expo;
use parcsr_obs::metrics::MetricsSnapshot;
use parcsr_obs::serve::HistoryWindow;
use std::io::{self, Read, Write};

/// Snapshot provider: the admin listener passes
/// [`parcsr_obs::snapshot_all`]; tests inject fixed snapshots.
pub type SnapshotFn = fn() -> MetricsSnapshot;

/// History provider for the `history` endpoint: the admin listener passes
/// [`parcsr_obs::serve::history_snapshot`]; tests inject fixed rings.
pub type HistoryFn = fn() -> Vec<HistoryWindow>;

/// Why a session ended (all are orderly; I/O errors surface as `Err` from
/// [`Session::run`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Peer closed the connection.
    Eof,
    /// Peer sent `quit` and was acknowledged.
    Quit,
    /// One HTTP exchange completed (`Connection: close` semantics).
    HttpServed,
    /// A request line exceeded [`MAX_LINE`]; an error response was sent.
    Oversized,
    /// The stream's read timeout elapsed with no complete request.
    TimedOut,
}

/// While skipping HTTP headers: the endpoint to serve once the blank line
/// arrives.
#[derive(Debug, Clone, Copy)]
struct PendingHttp {
    endpoint: Option<Endpoint>,
}

/// One admin connection.
pub struct Session<S> {
    stream: S,
    buf: Buffer,
    provider: SnapshotFn,
    history: HistoryFn,
    pending_http: Option<PendingHttp>,
}

fn endpoint_payload(endpoint: Endpoint, provider: SnapshotFn, history: HistoryFn) -> String {
    match endpoint {
        Endpoint::Metrics => expo::render(&provider()),
        Endpoint::Stats => {
            let mut doc = expo::snapshot_json(&provider()).pretty();
            doc.push('\n');
            doc
        }
        Endpoint::Health => "ok\n".to_string(),
        Endpoint::Ready => "ready\n".to_string(),
        Endpoint::History => expo::render_history(&history()),
    }
}

fn content_type(endpoint: Endpoint) -> &'static str {
    match endpoint {
        Endpoint::Stats => "application/json",
        // The Prometheus text format's conventional content type; the
        // history exposition uses the same grammar.
        Endpoint::Metrics | Endpoint::History => "text/plain; version=0.0.4",
        Endpoint::Health | Endpoint::Ready => "text/plain",
    }
}

impl<S: Read + Write> Session<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S, provider: SnapshotFn, history: HistoryFn) -> Self {
        Session {
            stream,
            buf: Buffer::new(),
            provider,
            history,
            pending_http: None,
        }
    }

    fn respond(&mut self, text: &str) -> io::Result<()> {
        self.stream.write_all(text.as_bytes())?;
        self.stream.flush()
    }

    /// Serves the connection to completion. `Ok` carries the orderly exit
    /// reason; `Err` is a transport error (peer reset mid-write and the
    /// like) for the caller to log and drop.
    pub fn run(&mut self) -> io::Result<Exit> {
        loop {
            // Drain every complete frame already buffered (pipelining).
            loop {
                let line = match self.buf.take_line(MAX_LINE) {
                    Ok(Some(line)) => line,
                    Ok(None) => break,
                    Err(too_long) => {
                        let msg = format!(
                            "request line exceeds {MAX_LINE} bytes ({} buffered)\n",
                            too_long.buffered
                        );
                        self.respond(&plain_err(&msg))?;
                        return Ok(Exit::Oversized);
                    }
                };

                if let Some(pending) = self.pending_http {
                    if !line.is_empty() {
                        continue; // skip an HTTP header line
                    }
                    self.serve_http(pending.endpoint)?;
                    return Ok(Exit::HttpServed);
                }

                match parse_request(&line) {
                    Request::Plain(endpoint) => {
                        let payload = endpoint_payload(endpoint, self.provider, self.history);
                        self.respond(&plain_ok(&payload))?;
                    }
                    Request::Quit => {
                        self.respond(&plain_ok("bye\n"))?;
                        return Ok(Exit::Quit);
                    }
                    Request::Http {
                        endpoint,
                        has_headers,
                    } => {
                        if has_headers {
                            self.pending_http = Some(PendingHttp { endpoint });
                        } else {
                            self.serve_http(endpoint)?;
                            return Ok(Exit::HttpServed);
                        }
                    }
                    Request::Unknown(text) => {
                        // Answer and keep serving: a typo in an interactive
                        // session should not cost the connection.
                        let msg = format!("unknown command: {text}\n");
                        self.respond(&plain_err(&msg))?;
                    }
                }
            }

            match self.buf.fill_from(&mut self.stream) {
                Ok(0) => return Ok(Exit::Eof),
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Exit::TimedOut)
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn serve_http(&mut self, endpoint: Option<Endpoint>) -> io::Result<()> {
        let response = match endpoint {
            Some(endpoint) => http_response(
                200,
                "OK",
                content_type(endpoint),
                &endpoint_payload(endpoint, self.provider, self.history),
            ),
            None => http_response(404, "Not Found", "text/plain", "not found\n"),
        };
        self.respond(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_obs::metrics::{HistogramSummary, WindowSeries};

    /// In-memory stream: reads hand back scripted chunks (then EOF), writes
    /// accumulate. Chunks smaller than the session's fill size exercise the
    /// partial-read path exactly like a dribbling socket.
    struct ChunkedStream {
        chunks: Vec<Vec<u8>>,
        next: usize,
        written: Vec<u8>,
    }

    impl ChunkedStream {
        fn new(chunks: Vec<Vec<u8>>) -> Self {
            ChunkedStream {
                chunks,
                next: 0,
                written: Vec::new(),
            }
        }

        fn bytes(data: &[u8], chunk: usize) -> Self {
            Self::new(data.chunks(chunk.max(1)).map(<[u8]>::to_vec).collect())
        }

        fn output(&self) -> String {
            String::from_utf8_lossy(&self.written).into_owned()
        }
    }

    impl Read for ChunkedStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let Some(chunk) = self.chunks.get(self.next) else {
                return Ok(0);
            };
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            if n == chunk.len() {
                self.next += 1;
            } else {
                let rest = chunk[n..].to_vec();
                self.chunks[self.next] = rest;
            }
            Ok(n)
        }
    }

    impl Write for ChunkedStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn test_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("queries.total".to_string(), 17));
        snap.windows.push(WindowSeries {
            name: "query.win.neighbors.hub".to_string(),
            kind: "neighbors",
            class: "hub",
            window: 3,
            summary: HistogramSummary {
                count: 4,
                sum: 400,
                max: 200,
                p50: 90,
                p95: 200,
                p99: 200,
            },
        });
        snap
    }

    fn test_history() -> Vec<HistoryWindow> {
        use parcsr_obs::serve::{DegreeClass, QueryKind, WindowCell};
        vec![HistoryWindow {
            window: 9,
            end_ns: 2_000_000,
            dur_ns: 1_000_000,
            queries: 4,
            qps: 4_000.0,
            cells: vec![WindowCell {
                kind: QueryKind::Neighbors,
                class: DegreeClass::Hub,
                summary: HistogramSummary {
                    count: 4,
                    sum: 400,
                    max: 200,
                    p50: 90,
                    p95: 200,
                    p99: 200,
                },
            }],
        }]
    }

    fn run_session(stream: ChunkedStream) -> (Exit, String) {
        let mut session = Session::new(stream, test_snapshot, test_history);
        let exit = session.run().unwrap();
        (exit, session.stream.output())
    }

    /// Splits a concatenation of `OK/ERR <len>\n<payload>` responses.
    fn split_plain(mut out: &str) -> Vec<(bool, String)> {
        let mut parts = Vec::new();
        while !out.is_empty() {
            let (status, rest) = out.split_once(' ').unwrap();
            let (len, rest) = rest.split_once('\n').unwrap();
            let len: usize = len.parse().unwrap();
            parts.push((status == "OK", rest[..len].to_string()));
            out = &rest[len..];
        }
        parts
    }

    #[test]
    fn metrics_request_in_one_byte_reads_serves_valid_exposition() {
        let (exit, out) = run_session(ChunkedStream::bytes(b"metrics\n", 1));
        assert_eq!(exit, Exit::Eof);
        let responses = split_plain(&out);
        assert_eq!(responses.len(), 1);
        let (ok, payload) = &responses[0];
        assert!(ok);
        let expo = expo::parse(payload).unwrap();
        assert!(expo.saw_eof);
        assert!(expo
            .samples
            .iter()
            .any(|s| s.name == "parcsr_query_win_ns" && s.label("kind") == Some("neighbors")));
    }

    #[test]
    fn pipelined_requests_answer_in_order_on_one_connection() {
        let (exit, out) = run_session(ChunkedStream::bytes(b"health\nready\nstats\nquit\n", 7));
        assert_eq!(exit, Exit::Quit);
        let responses = split_plain(&out);
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0], (true, "ok\n".to_string()));
        assert_eq!(responses[1], (true, "ready\n".to_string()));
        assert!(responses[2].0);
        assert!(responses[2].1.contains("parcsr.stats.v1"));
        assert_eq!(responses[3], (true, "bye\n".to_string()));
    }

    #[test]
    fn oversized_request_line_gets_error_response_not_panic() {
        let mut line = vec![b'a'; 5000];
        line.push(b'\n');
        let (exit, out) = run_session(ChunkedStream::bytes(&line, 900));
        assert_eq!(exit, Exit::Oversized);
        let responses = split_plain(&out);
        assert_eq!(responses.len(), 1);
        assert!(!responses[0].0);
        assert!(responses[0].1.contains("exceeds 4096 bytes"));
    }

    #[test]
    fn unknown_command_keeps_the_connection_alive() {
        let (exit, out) = run_session(ChunkedStream::bytes(b"bogus\nhealth\n", 3));
        assert_eq!(exit, Exit::Eof);
        let responses = split_plain(&out);
        assert_eq!(responses.len(), 2);
        assert!(
            !responses[0].0,
            "unknown command must produce an ERR response"
        );
        assert!(responses[0].1.contains("unknown command: bogus"));
        assert_eq!(responses[1], (true, "ok\n".to_string()));
    }

    #[test]
    fn http_scrape_skips_headers_and_closes_after_one_exchange() {
        let req = b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
        let (exit, out) = run_session(ChunkedStream::bytes(req, 5));
        assert_eq!(exit, Exit::HttpServed);
        assert!(out.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(out.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(out.contains("Connection: close\r\n"));
        let body = out.split("\r\n\r\n").nth(1).unwrap();
        assert!(expo::parse(body).unwrap().saw_eof);
        let len: usize = out
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
    }

    #[test]
    fn history_command_serves_the_ring_as_valid_exposition() {
        let (exit, out) = run_session(ChunkedStream::bytes(b"history\n", 3));
        assert_eq!(exit, Exit::Eof);
        let responses = split_plain(&out);
        assert_eq!(responses.len(), 1);
        let (ok, payload) = &responses[0];
        assert!(ok);
        let expo = expo::parse(payload).unwrap();
        assert!(expo.saw_eof);
        assert!(expo
            .samples
            .iter()
            .any(|s| s.name == "parcsr_history_windows" && s.value == 1.0));
        assert!(expo.samples.iter().any(|s| {
            s.name == "parcsr_query_hist_ns"
                && s.label("window") == Some("9")
                && s.label("class") == Some("hub")
        }));
    }

    #[test]
    fn http_history_scrape_uses_the_exposition_content_type() {
        let req = b"GET /history HTTP/1.1\r\nHost: localhost\r\n\r\n";
        let (exit, out) = run_session(ChunkedStream::bytes(req, 8));
        assert_eq!(exit, Exit::HttpServed);
        assert!(out.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(out.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        let body = out.split("\r\n\r\n").nth(1).unwrap();
        assert!(expo::parse(body).unwrap().saw_eof);
        assert!(body.contains("parcsr_history_qps{window=\"9\"} 4000\n"));
    }

    #[test]
    fn http_unknown_path_is_404() {
        let (exit, out) = run_session(ChunkedStream::bytes(b"GET /nope HTTP/1.0\r\n\r\n", 64));
        assert_eq!(exit, Exit::HttpServed);
        assert!(out.starts_with("HTTP/1.0 404 Not Found\r\n"));
    }

    #[test]
    fn versionless_get_serves_immediately() {
        let (exit, out) = run_session(ChunkedStream::bytes(b"GET /health\n", 64));
        assert_eq!(exit, Exit::HttpServed);
        assert!(out.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(out.ends_with("ok\n"));
    }

    #[test]
    fn read_timeout_surfaces_as_orderly_exit() {
        struct TimeoutAfter(ChunkedStream);
        impl Read for TimeoutAfter {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.next >= self.0.chunks.len() {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
                }
                self.0.read(buf)
            }
        }
        impl Write for TimeoutAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                self.0.flush()
            }
        }
        let stream = TimeoutAfter(ChunkedStream::bytes(b"health\n", 64));
        let mut session = Session::new(stream, test_snapshot, test_history);
        assert_eq!(session.run().unwrap(), Exit::TimedOut);
        assert_eq!(
            split_plain(&session.stream.0.output()),
            [(true, "ok\n".to_string())]
        );
    }
}
