//! Growable per-session read buffer (pelikan-style): the socket fills it
//! incrementally, the framing layer consumes complete lines out the front,
//! and the consumed prefix is compacted away on the next fill. Nothing here
//! assumes a frame arrives in one `read` — a request line split across ten
//! one-byte reads parses identically to one arriving whole.

use std::io::{self, Read};

/// How many bytes each fill attempts to read.
const FILL_CHUNK: usize = 1024;

/// Error from [`Buffer::take_line`]: the unconsumed data exceeds the caller's
/// line limit with no newline in sight. The session layer turns this into an
/// error *response* (then closes), never a panic — a misbehaving client must
/// not take the admin plane down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineTooLong {
    /// Bytes buffered without a newline when the limit was hit.
    pub buffered: usize,
}

/// Growable read buffer with a consumed-prefix cursor.
#[derive(Debug, Default)]
pub struct Buffer {
    data: Vec<u8>,
    /// Start of unconsumed data in `data`; everything before it has been
    /// handed out by `take_line` and is reclaimed on the next fill.
    start: usize,
}

impl Buffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Unconsumed byte count.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.data.len() - self.start
    }

    /// Drops the consumed prefix so the allocation tracks the unconsumed
    /// tail, not the session's lifetime traffic.
    fn compact(&mut self) {
        if self.start > 0 {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Reads once from `src` into the buffer. Returns the byte count from
    /// the underlying `read` — `Ok(0)` is end-of-stream, errors (including
    /// read timeouts) pass through untouched with the buffer intact.
    pub fn fill_from(&mut self, src: &mut impl Read) -> io::Result<usize> {
        self.compact();
        let old = self.data.len();
        self.data.resize(old + FILL_CHUNK, 0);
        match src.read(&mut self.data[old..]) {
            Ok(n) => {
                self.data.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.data.truncate(old);
                Err(e)
            }
        }
    }

    /// Takes the next complete line (up to and excluding `\n`, with a
    /// trailing `\r` stripped) out of the buffer. `Ok(None)` means no
    /// complete line is buffered yet — fill and retry. `Err` means the
    /// unconsumed data already exceeds `max_line` bytes with no newline,
    /// so no amount of further reading can produce a legal line.
    pub fn take_line(&mut self, max_line: usize) -> Result<Option<Vec<u8>>, LineTooLong> {
        let pending = &self.data[self.start..];
        match pending.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let mut line = pending[..pos].to_vec();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.start += pos + 1;
                Ok(Some(line))
            }
            None if pending.len() > max_line => Err(LineTooLong {
                buffered: pending.len(),
            }),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_assemble_across_single_byte_fills() {
        let input = b"health\r\nready\n".to_vec();
        let mut buf = Buffer::new();
        let mut lines = Vec::new();
        for byte in input {
            let mut one = &[byte][..];
            buf.fill_from(&mut one).unwrap();
            while let Some(line) = buf.take_line(64).unwrap() {
                lines.push(String::from_utf8(line).unwrap());
            }
        }
        assert_eq!(lines, ["health", "ready"]);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn pipelined_lines_drain_in_order() {
        let mut buf = Buffer::new();
        let mut src = &b"a\nb\nc\n"[..];
        buf.fill_from(&mut src).unwrap();
        let mut got = Vec::new();
        while let Some(line) = buf.take_line(64).unwrap() {
            got.push(line);
        }
        assert_eq!(got, [b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn oversized_line_reports_instead_of_growing_forever() {
        let mut buf = Buffer::new();
        let big = vec![b'x'; 5000];
        let mut src = &big[..];
        while buf.fill_from(&mut src).unwrap() > 0 {}
        assert_eq!(buf.take_line(4096), Err(LineTooLong { buffered: 5000 }));
    }

    #[test]
    fn under_limit_incomplete_line_is_just_pending() {
        let mut buf = Buffer::new();
        let mut src = &b"partial"[..];
        buf.fill_from(&mut src).unwrap();
        assert_eq!(buf.take_line(64), Ok(None));
        assert_eq!(buf.pending(), 7);
        let mut rest = &b" line\n"[..];
        buf.fill_from(&mut rest).unwrap();
        assert_eq!(buf.take_line(64).unwrap().unwrap(), b"partial line");
    }
}
