//! The TCP listener facade: binds `127.0.0.1:<port>`, accepts on a named
//! background thread, and runs one [`Session`] per connection on a
//! short-lived thread with a read timeout. Admin traffic is one scraper
//! and maybe a human with `nc`, so thread-per-connection is the right
//! amount of machinery — the event loop stays out of the tree until the
//! data plane needs it.
//!
//! Only this module is gated on the `enabled` feature: without it,
//! [`spawn`] returns `Unsupported` (callers print a one-line warning, the
//! same contract as `parcsr_obs::compiled()`), and the session/buffer/
//! protocol layers stay fully compiled and tested.

#[cfg(feature = "enabled")]
use crate::session::Session;
use std::io;
use std::net::SocketAddr;
#[cfg(feature = "enabled")]
use std::net::{TcpListener, TcpStream};
#[cfg(feature = "enabled")]
// ORDERING: Relaxed — STOP is a monotonic shutdown latch; the accept
// thread needs eventual visibility only, and the self-connect that
// unblocks `accept` happens-after the store on the shutdown caller's
// side via the socket itself.
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::Arc;
#[cfg(feature = "enabled")]
use std::thread;
#[cfg(feature = "enabled")]
use std::time::Duration;

/// Per-session socket read timeout: an idle or wedged client releases its
/// thread after this long. `parcsr watch` reconnects per poll, so polls
/// slower than this still work.
#[cfg(feature = "enabled")]
const SESSION_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A running admin listener. Dropping it shuts the accept loop down.
#[cfg(feature = "enabled")]
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

#[cfg(feature = "enabled")]
impl AdminServer {
    /// Binds `127.0.0.1:port` (`0` picks an ephemeral port — read it back
    /// with [`local_addr`](Self::local_addr)) and starts accepting, with
    /// `provider` supplying the snapshot behind the point-in-time endpoints
    /// and `history` supplying the rotated-window ring behind `history`.
    pub fn bind(
        port: u16,
        provider: crate::session::SnapshotFn,
        history: crate::session::HistoryFn,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept = thread::Builder::new()
            .name("parcsr-admin".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = stream.set_read_timeout(Some(SESSION_READ_TIMEOUT));
                    let _ = thread::Builder::new()
                        .name("parcsr-admin-session".to_string())
                        .spawn(move || {
                            if let Err(e) = Session::new(stream, provider, history).run() {
                                eprintln!("parcsr-admin: session error: {e}");
                            }
                        });
                }
            })?;
        Ok(AdminServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral port requests).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. In-flight sessions finish on
    /// their own (bounded by [`SESSION_READ_TIMEOUT`]); their threads are
    /// deliberately not tracked — the admin plane must never stall process
    /// exit behind a slow scraper. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.stop.store(true, Relaxed);
            // Unblock the accept call so the thread observes the latch.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

#[cfg(feature = "enabled")]
impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Disabled-build stand-in so `--admin-port` wiring compiles everywhere;
/// [`spawn`] never actually constructs one.
#[cfg(not(feature = "enabled"))]
pub struct AdminServer;

#[cfg(not(feature = "enabled"))]
impl AdminServer {
    /// Placeholder address (never observable: [`spawn`] always errors).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], 0))
    }

    /// No-op.
    pub fn shutdown(&mut self) {}
}

/// Starts the admin plane on `127.0.0.1:port` serving
/// [`parcsr_obs::snapshot_all`] and
/// [`parcsr_obs::serve::history_snapshot`]. Without the `enabled` feature this
/// returns [`io::ErrorKind::Unsupported`] — callers print the error and
/// carry on, so `--admin-port` on a default build degrades to a warning
/// rather than a hard failure.
pub fn spawn(port: u16) -> io::Result<AdminServer> {
    #[cfg(feature = "enabled")]
    {
        AdminServer::bind(
            port,
            parcsr_obs::snapshot_all,
            parcsr_obs::serve::history_snapshot,
        )
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = port;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "admin plane not compiled in (rebuild with the `obs` feature)",
        ))
    }
}
