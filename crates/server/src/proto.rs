//! Admin-plane request parsing and response framing.
//!
//! Two request syntaxes share one endpoint set:
//!
//! * **Plain**: a single lowercase command per line (`metrics`, `stats`,
//!   `health`, `ready`, `history`, `quit`). Responses are length-prefixed —
//!   `OK <len>\n<len bytes>` or `ERR <len>\n<len bytes>` — so clients can
//!   pipeline commands and split concatenated responses without sniffing
//!   payload contents.
//! * **HTTP**: `GET <path> HTTP/1.x`; headers are skipped up to the blank
//!   line, the response is a minimal `HTTP/1.0` message with
//!   `Content-Length` and `Connection: close`, and the connection closes
//!   after one exchange. Just enough for `curl` and Prometheus scrapers.

/// Longest accepted request line (bytes, excluding the newline). Longer
/// lines draw an error response and a close — see
/// [`crate::buffer::Buffer::take_line`].
pub const MAX_LINE: usize = 4096;

/// What the admin plane serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Prometheus-style text exposition of the live snapshot.
    Metrics,
    /// JSON `parcsr.stats.v1` document of the live snapshot.
    Stats,
    /// Liveness probe.
    Health,
    /// Readiness probe.
    Ready,
    /// Text exposition of the rotated-window history ring.
    History,
}

impl Endpoint {
    /// The HTTP path serving this endpoint.
    #[must_use]
    pub fn path(self) -> &'static str {
        match self {
            Endpoint::Metrics => "/metrics",
            Endpoint::Stats => "/stats",
            Endpoint::Health => "/health",
            Endpoint::Ready => "/ready",
            Endpoint::History => "/history",
        }
    }

    fn from_path(path: &str) -> Option<Self> {
        match path {
            "/metrics" => Some(Endpoint::Metrics),
            "/stats" => Some(Endpoint::Stats),
            "/health" | "/" => Some(Endpoint::Health),
            "/ready" => Some(Endpoint::Ready),
            "/history" => Some(Endpoint::History),
            _ => None,
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Plain-protocol command.
    Plain(Endpoint),
    /// Plain-protocol `quit`: acknowledge and close.
    Quit,
    /// HTTP request line; headers (if `has_headers`) follow up to a blank
    /// line, then one response is sent and the connection closes.
    /// `endpoint` is `None` for unknown paths (404).
    Http {
        /// Resolved endpoint, or `None` → 404.
        endpoint: Option<Endpoint>,
        /// Whether an HTTP version was present, meaning header lines
        /// follow; a bare `GET <path>` (HTTP/0.9 style) has none.
        has_headers: bool,
    },
    /// Anything else; echoed back in an error response.
    Unknown(String),
}

/// Parses one request line (bytes already stripped of the line ending).
/// Non-UTF-8 input degrades to `Unknown` via lossy conversion — the admin
/// plane answers garbage with an error, not a panic.
#[must_use]
pub fn parse_request(line: &[u8]) -> Request {
    let text = String::from_utf8_lossy(line);
    let text = text.trim();
    match text {
        "metrics" => return Request::Plain(Endpoint::Metrics),
        "stats" => return Request::Plain(Endpoint::Stats),
        "health" => return Request::Plain(Endpoint::Health),
        "ready" => return Request::Plain(Endpoint::Ready),
        "history" => return Request::Plain(Endpoint::History),
        "quit" => return Request::Quit,
        _ => {}
    }
    if let Some(rest) = text.strip_prefix("GET ") {
        let mut parts = rest.split_whitespace();
        let path = parts.next().unwrap_or("");
        let has_headers = parts.next().is_some_and(|v| v.starts_with("HTTP/"));
        return Request::Http {
            endpoint: Endpoint::from_path(path),
            has_headers,
        };
    }
    Request::Unknown(text.to_string())
}

/// Frames a plain-protocol success response: `OK <len>\n<payload>`.
#[must_use]
pub fn plain_ok(payload: &str) -> String {
    format!("OK {}\n{payload}", payload.len())
}

/// Frames a plain-protocol error response: `ERR <len>\n<message>`.
#[must_use]
pub fn plain_err(message: &str) -> String {
    format!("ERR {}\n{message}", message.len())
}

/// Frames a minimal HTTP/1.0 response with `Content-Length` and
/// `Connection: close`.
#[must_use]
pub fn http_response(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_commands_parse() {
        assert_eq!(parse_request(b"metrics"), Request::Plain(Endpoint::Metrics));
        assert_eq!(parse_request(b"stats"), Request::Plain(Endpoint::Stats));
        assert_eq!(parse_request(b"health"), Request::Plain(Endpoint::Health));
        assert_eq!(parse_request(b"ready"), Request::Plain(Endpoint::Ready));
        assert_eq!(parse_request(b"history"), Request::Plain(Endpoint::History));
        assert_eq!(parse_request(b"quit"), Request::Quit);
        assert_eq!(
            parse_request(b"  health  "),
            Request::Plain(Endpoint::Health)
        );
    }

    #[test]
    fn http_request_lines_parse() {
        assert_eq!(
            parse_request(b"GET /metrics HTTP/1.1"),
            Request::Http {
                endpoint: Some(Endpoint::Metrics),
                has_headers: true
            }
        );
        assert_eq!(
            parse_request(b"GET /stats"),
            Request::Http {
                endpoint: Some(Endpoint::Stats),
                has_headers: false
            }
        );
        assert_eq!(
            parse_request(b"GET /nope HTTP/1.0"),
            Request::Http {
                endpoint: None,
                has_headers: true
            }
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1"),
            Request::Http {
                endpoint: Some(Endpoint::Health),
                has_headers: true
            }
        );
        assert_eq!(
            parse_request(b"GET /history HTTP/1.1"),
            Request::Http {
                endpoint: Some(Endpoint::History),
                has_headers: true
            }
        );
    }

    #[test]
    fn garbage_is_unknown_not_a_panic() {
        assert!(matches!(parse_request(b"DELETE /x"), Request::Unknown(_)));
        assert!(matches!(
            parse_request(&[0xff, 0xfe, b'\0']),
            Request::Unknown(_)
        ));
        assert!(matches!(parse_request(b""), Request::Unknown(_)));
    }

    #[test]
    fn framing_lengths_match_payloads() {
        assert_eq!(plain_ok("ok\n"), "OK 3\nok\n");
        assert_eq!(plain_err("bad"), "ERR 3\nbad");
        let http = http_response(200, "OK", "text/plain", "body\n");
        assert!(http.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(http.contains("Content-Length: 5\r\n"));
        assert!(http.contains("Connection: close\r\n\r\nbody\n"));
    }
}
