#![deny(unsafe_op_in_unsafe_fn)]

//! Zero-async, zero-dependency admin plane for parcsr processes, and the
//! session/buffer networking substrate a future data-plane server reuses.
//!
//! Architecture follows the exemplar the ROADMAP names (twitter/pelikan's
//! `core/server` + `session` + `metrics` split), minus the event loop: the
//! admin plane is low-traffic, so a blocking `std::net::TcpListener` accept
//! loop with one short-lived thread per connection is simpler and plenty.
//! The layering is the part that carries forward:
//!
//! * [`buffer`] — a growable read buffer with incremental fills and
//!   consumed-prefix compaction; framing never assumes a request arrives in
//!   one `read`.
//! * [`proto`] — request parsing (single-line commands, plus just enough
//!   HTTP/1.x to satisfy `curl` and Prometheus scrapers) and response
//!   framing (`OK <len>` length-prefixed plain responses, `HTTP/1.0`
//!   responses with `Content-Length`).
//! * [`session`] — drives one connection: fill buffer → drain complete
//!   frames → respond, tolerating partial reads and pipelined requests,
//!   rejecting oversized request lines with an error response instead of a
//!   panic. Generic over `Read + Write`, so robustness tests run on
//!   in-memory streams with adversarial chunking.
//! * [`admin`] — the TCP listener facade binding the above to
//!   `127.0.0.1:<port>` with [`parcsr_obs::snapshot_all`] as the snapshot
//!   provider. Only this layer is gated on the `enabled` feature; the
//!   default build compiles it to an error-returning stub.
//! * [`client`] — a tiny blocking client for the plain protocol, used by
//!   `parcsr watch` and the CI scrape step.
//!
//! Endpoints (plain command / HTTP path): `metrics` / `/metrics`
//! (Prometheus-style text exposition, see [`parcsr_obs::expo`]), `stats` /
//! `/stats` (JSON `parcsr.stats.v1`), `health` / `/health`, `ready` /
//! `/ready`, and plain `quit` (closes the connection).

pub mod admin;
pub mod buffer;
pub mod client;
pub mod proto;
pub mod session;

/// Whether the live admin listener was compiled in (the `enabled` feature,
/// which implies `parcsr-obs/enabled`).
#[must_use]
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}
