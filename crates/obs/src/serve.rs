//! Serving telemetry: sharded per-worker metric slabs and sliding-window
//! histograms for per-query SLO accounting.
//!
//! The build-time obs stack (spans, cumulative histograms) answers "where
//! did this run spend its time"; a query *server* needs a different shape:
//! "what were p50/p95/p99 and qps over the last few hundred milliseconds,
//! per query type, per degree class". This module provides that shape,
//! mirroring pelikan's metrics layout:
//!
//! * [`WindowedHistogram`] — a ring of the existing log-bucketed
//!   [`Histogram`]s with epoch rotation. Recording always lands in the live
//!   epoch's histogram; [`WindowedHistogram::rotate`] completes the live
//!   window and clears the oldest retained one for reuse. Completed windows
//!   stay readable for `windows - 1` further rotations.
//! * [`QuerySlabs`] — cache-line-padded per-worker shards, each holding one
//!   `(overall, windowed)` histogram pair per `(QueryKind, DegreeClass)`
//!   cell. Workers record into their own shard with no sharing; readers
//!   merge shards on demand ([`Histogram::merge_into`] — deterministic
//!   bucketing makes a sharded merge bit-identical to single-slab
//!   recording).
//! * Per-cell **phase decomposition** ([`QueryPhase`]): each cell carries a
//!   `queue`/`exec`/`reply` triple of `(overall, windowed)` histogram pairs
//!   next to the end-to-end pair, fed by the phase-timed [`QueryStart`]
//!   guard (`queued → dispatched → executed → replied` checkpoints). The
//!   phases partition the end-to-end time exactly, so per-window phase sums
//!   never exceed the end-to-end sum (`check-trace` enforces this on the
//!   exported events).
//! * A per-shard **tail-exemplar reservoir** ([`Exemplar`]): the
//!   [`EXEMPLARS_PER_SHARD`] slowest queries of the live window with their
//!   full phase breakdown, rotated with the window. Admission is gated on a
//!   relaxed floor load, so the common (fast-query) path stays wait-free.
//! * A **history ring** ([`HistoryRing`]): the last [`HISTORY_WINDOWS`]
//!   rotated window summaries (per-cell count/percentiles + qps), the data
//!   behind the admin plane's `history` endpoint and `parcsr watch`'s
//!   sparklines.
//! * A process-global facade ([`query_start`], [`rotate_window`],
//!   [`drain_window_log`], [`drain_phase_log`], [`drain_exemplar_log`],
//!   [`history_snapshot`]) gated exactly like the rest of the crate: ZST
//!   no-ops without the `enabled` feature, one relaxed load when compiled
//!   in but runtime recording is off.
//!
//! # Concurrency contract
//!
//! Recording is wait-free (relaxed atomics into the recorder's own shard;
//! the exemplar reservoir takes its per-shard lock only for queries slower
//! than the current floor). Rotation is expected from a *single*
//! coordinator thread (the window reporter); concurrent rotators would race
//! on the epoch. A recorder that reads the epoch right at a rotation
//! boundary may land its sample in the just-completed window (or, if
//! descheduled for a full ring cycle, in a cleared one) — a one-sample
//! boundary smear that is acceptable for a statistical latency view and
//! never corrupts bucket counts. The same smear applies across the phase
//! histograms of one query (total and phases may straddle a rotation), so
//! consumers of per-window phase sums allow a small tolerance.

use std::collections::VecDeque;
// ORDERING: Relaxed throughout — slab cells are independent statistical
// histogram buckets (see metrics.rs), and the window epoch is a coarse
// phase indicator read at recording time; the boundary smear documented
// above is accepted, so no acquire/release pairing is needed. The exemplar
// admission floor is likewise a monotone-per-window hint: a stale read only
// costs one lock round or drops one borderline exemplar.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::OnceLock;
use std::sync::{Mutex, PoisonError};

use crate::metrics::{Histogram, HistogramSummary, MetricsSnapshot, WindowSeries};

/// Query types the serving path accounts for, matching the paper's
/// query-algorithm families (Algorithms 6–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Algorithm 6: neighborhood materialization (`neighbors_batch`).
    Neighbors,
    /// Algorithm 7, linear variant: edge-existence row scan
    /// (`edges_exist_batch`).
    EdgeScan,
    /// Algorithm 7, binary variant: edge-existence binary search over the
    /// decoded row (`edges_exist_batch_binary`).
    EdgeBinary,
    /// Algorithm 8/9: split-row search (`edge_exists_split[_binary]`).
    SplitSearch,
    /// Whole-graph traversal entry points in `parcsr-algos` (BFS, SSSP).
    Traversal,
}

/// Number of [`QueryKind`] variants (slab cell dimension).
pub const NUM_QUERY_KINDS: usize = 5;

impl QueryKind {
    /// All kinds, in slab-index order.
    pub const ALL: [QueryKind; NUM_QUERY_KINDS] = [
        QueryKind::Neighbors,
        QueryKind::EdgeScan,
        QueryKind::EdgeBinary,
        QueryKind::SplitSearch,
        QueryKind::Traversal,
    ];

    /// Stable slab index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in event/JSON schemas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Neighbors => "neighbors",
            QueryKind::EdgeScan => "edge_scan",
            QueryKind::EdgeBinary => "edge_binary",
            QueryKind::SplitSearch => "split",
            QueryKind::Traversal => "traversal",
        }
    }
}

/// Degree class of a query's subject row. Social-network degree skew means
/// hub rows behave nothing like the long tail — the paper's split-row
/// algorithms exist *because* of that — so latency is attributed per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegreeClass {
    /// Degree < 32: the long tail; rows fit in one or two cache lines.
    Low,
    /// Degree 32..1024: mid-size rows.
    Mid,
    /// Degree ≥ 1024: hub rows (the imbalance graph's hubs are ~16 k).
    Hub,
}

/// Number of [`DegreeClass`] variants (slab cell dimension).
pub const NUM_DEGREE_CLASSES: usize = 3;

/// `Low`/`Mid` boundary (exclusive upper degree for `Low`).
pub const LOW_DEGREE_MAX: usize = 32;
/// `Mid`/`Hub` boundary (exclusive upper degree for `Mid`).
pub const MID_DEGREE_MAX: usize = 1024;

impl DegreeClass {
    /// All classes, in slab-index order.
    pub const ALL: [DegreeClass; NUM_DEGREE_CLASSES] =
        [DegreeClass::Low, DegreeClass::Mid, DegreeClass::Hub];

    /// Classifies a row degree.
    #[inline]
    #[must_use]
    pub fn classify(degree: usize) -> Self {
        if degree < LOW_DEGREE_MAX {
            DegreeClass::Low
        } else if degree < MID_DEGREE_MAX {
            DegreeClass::Mid
        } else {
            DegreeClass::Hub
        }
    }

    /// Stable slab index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in event/JSON schemas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DegreeClass::Low => "low",
            DegreeClass::Mid => "mid",
            DegreeClass::Hub => "hub",
        }
    }
}

/// One phase of a request's lifecycle, as cut by the
/// `queued → dispatched → executed → replied` checkpoints of the
/// [`QueryStart`] guard:
///
/// ```text
/// queued ──queue──▶ dispatched ──exec──▶ executed ──reply──▶ replied
/// ```
///
/// The three phases partition the end-to-end time exactly. A guard that
/// never marks a checkpoint degenerates gracefully: without `dispatched`
/// the queue phase is 0, without `executed` the reply phase is 0 — so the
/// in-process query path (which has no queue today) reports everything as
/// `exec`, and the future data plane inherits the API unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryPhase {
    /// `queued → dispatched`: time spent waiting for a worker.
    Queue,
    /// `dispatched → executed`: time spent executing the query.
    Exec,
    /// `executed → replied`: time spent delivering the result.
    Reply,
}

/// Number of [`QueryPhase`] variants (phase-slot dimension).
pub const NUM_QUERY_PHASES: usize = 3;

impl QueryPhase {
    /// All phases, in lifecycle (and slot-index) order.
    pub const ALL: [QueryPhase; NUM_QUERY_PHASES] =
        [QueryPhase::Queue, QueryPhase::Exec, QueryPhase::Reply];

    /// Stable slot index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in event/JSON schemas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueryPhase::Queue => "queue",
            QueryPhase::Exec => "exec",
            QueryPhase::Reply => "reply",
        }
    }
}

/// One query's phase-decomposed timing, nanoseconds. The phases partition
/// `total_ns` (up to clock-saturation rounding), so
/// `queue_ns + exec_ns + reply_ns ≤ total_ns` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// End-to-end `queued → replied` time.
    pub total_ns: u64,
    /// `queued → dispatched` wait.
    pub queue_ns: u64,
    /// `dispatched → executed` service time.
    pub exec_ns: u64,
    /// `executed → replied` delivery time.
    pub reply_ns: u64,
}

impl PhaseNanos {
    /// Phase decomposition from the four checkpoint timestamps (span-clock
    /// ns). Checkpoints are clamped monotone, so a descheduled guard never
    /// produces phases that sum past the end-to-end time.
    #[must_use]
    pub fn from_checkpoints(queued: u64, dispatched: u64, executed: u64, replied: u64) -> Self {
        let dispatched = dispatched.clamp(queued, replied);
        let executed = executed.clamp(dispatched, replied);
        Self {
            total_ns: replied.saturating_sub(queued),
            queue_ns: dispatched.saturating_sub(queued),
            exec_ns: executed.saturating_sub(dispatched),
            reply_ns: replied.saturating_sub(executed),
        }
    }

    /// A sample with only a total (no checkpoints): everything counts as
    /// `exec`, matching the degenerate guard documented on [`QueryPhase`].
    #[must_use]
    pub fn all_exec(total_ns: u64) -> Self {
        Self {
            total_ns,
            queue_ns: 0,
            exec_ns: total_ns,
            reply_ns: 0,
        }
    }

    /// The named phase's nanoseconds.
    #[must_use]
    pub fn phase(self, phase: QueryPhase) -> u64 {
        match phase {
            QueryPhase::Queue => self.queue_ns,
            QueryPhase::Exec => self.exec_ns,
            QueryPhase::Reply => self.reply_ns,
        }
    }
}

/// Ring of [`Histogram`]s with epoch rotation: the sliding-window latency
/// view. Always compiled (plain atomics, unit-testable without features).
#[derive(Debug)]
pub struct WindowedHistogram {
    ring: Box<[Histogram]>,
    epoch: AtomicU64,
}

impl WindowedHistogram {
    /// A ring retaining `windows` epochs (clamped to ≥ 2 so the live window
    /// is never the one being cleared at rotation).
    #[must_use]
    pub fn new(windows: usize) -> Self {
        let w = windows.max(2);
        Self {
            ring: (0..w).map(|_| Histogram::new()).collect(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Ring capacity (number of retained epochs, including the live one).
    #[must_use]
    pub fn windows(&self) -> usize {
        self.ring.len()
    }

    /// The live (currently recording) epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Relaxed)
    }

    /// Records one observation into the live window.
    #[inline]
    pub fn record(&self, v: u64) {
        let e = self.epoch.load(Relaxed);
        self.ring[(e % self.ring.len() as u64) as usize].record(v);
    }

    /// Completes the live window and opens the next: clears the oldest
    /// retained histogram for reuse, then advances the epoch. Returns the
    /// epoch just completed (readable via [`Self::window`] for another
    /// `windows - 1` rotations). Single-rotator: call from one coordinator
    /// thread only.
    pub fn rotate(&self) -> u64 {
        let e = self.epoch.load(Relaxed);
        let next = ((e + 1) % self.ring.len() as u64) as usize;
        self.ring[next].reset();
        self.epoch.store(e + 1, Relaxed);
        e
    }

    /// The histogram for `epoch`, if still retained: the live epoch or one
    /// of the `windows - 1` most recently completed ones.
    #[must_use]
    pub fn window(&self, epoch: u64) -> Option<&Histogram> {
        let live = self.epoch.load(Relaxed);
        if epoch > live || live - epoch >= self.ring.len() as u64 {
            return None;
        }
        Some(&self.ring[(epoch % self.ring.len() as u64) as usize])
    }

    /// The live window's histogram.
    #[must_use]
    pub fn live(&self) -> &Histogram {
        &self.ring[(self.epoch() % self.ring.len() as u64) as usize]
    }

    /// Merges every retained window (completed + live) into `dst`: the
    /// sliding-window aggregate over the last `windows` epochs.
    pub fn merge_retained_into(&self, dst: &Histogram) {
        for h in &self.ring {
            h.merge_into(dst);
        }
    }
}

/// One phase's `(overall, windowed)` histogram pair inside a cell. Boxed
/// behind [`SlabCell::phases`] so the 15 KiB overall histogram stays off
/// the `ShardSlab` inline footprint.
#[derive(Debug)]
struct PhaseSlot {
    overall: Histogram,
    windowed: WindowedHistogram,
}

/// One `(overall, windowed)` histogram pair for the end-to-end latency,
/// plus one pair per [`QueryPhase`]: lifetime totals and the
/// sliding-window view of the same observations, phase-decomposed.
#[derive(Debug)]
struct SlabCell {
    overall: Histogram,
    windowed: WindowedHistogram,
    phases: Box<[PhaseSlot]>,
}

impl SlabCell {
    fn new(windows: usize) -> Self {
        Self {
            overall: Histogram::new(),
            windowed: WindowedHistogram::new(windows),
            phases: (0..NUM_QUERY_PHASES)
                .map(|_| PhaseSlot {
                    overall: Histogram::new(),
                    windowed: WindowedHistogram::new(windows),
                })
                .collect(),
        }
    }

    /// Records an end-to-end observation only; the phase slots are left
    /// untouched (phase counts are then ≤ the end-to-end count, which the
    /// phase-sum invariant tolerates).
    #[inline]
    fn record(&self, v: u64) {
        self.overall.record(v);
        self.windowed.record(v);
    }

    /// Records one phase-decomposed observation: the total into the
    /// end-to-end pair and each phase into its slot.
    #[inline]
    fn record_phases(&self, ns: PhaseNanos) {
        self.record(ns.total_ns);
        for phase in QueryPhase::ALL {
            let slot = &self.phases[phase.index()];
            let v = ns.phase(phase);
            slot.overall.record(v);
            slot.windowed.record(v);
        }
    }
}

/// The number of tail exemplars each shard retains per window: the K in
/// "K slowest queries". Readers merge shards and keep the global top K,
/// so the per-process bound is `shards × K` live + as many completed.
pub const EXEMPLARS_PER_SHARD: usize = 8;

/// One captured tail query: the full phase breakdown of one of the window's
/// slowest requests, with enough identity (kind, class, source vertex) to
/// re-run it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Query kind.
    pub kind: QueryKind,
    /// Degree class of the source row.
    pub class: DegreeClass,
    /// Source vertex the query addressed.
    pub source: u64,
    /// Phase-decomposed timing.
    pub ns: PhaseNanos,
}

/// Bounded per-shard reservoir of the live window's slowest queries.
///
/// The admission test is one relaxed load of the floor (the smallest total
/// currently retained once the reservoir is full): queries at or below it
/// return without touching the lock, so the common path stays wait-free
/// and only genuine tail candidates pay for the mutex. `rotate` publishes
/// the live set as the completed window's exemplars and resets the floor.
#[derive(Debug)]
struct ExemplarReservoir {
    /// Admission floor: 0 while the live set is not full, else the smallest
    /// retained `total_ns`. A stale read only costs one lock round or drops
    /// one borderline exemplar (the boundary smear the module header
    /// documents).
    floor_ns: AtomicU64,
    live: Mutex<Vec<Exemplar>>,
    completed: Mutex<Vec<Exemplar>>,
}

impl ExemplarReservoir {
    fn new() -> Self {
        Self {
            floor_ns: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
            completed: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn offer(&self, ex: Exemplar) {
        if ex.ns.total_ns < self.floor_ns.load(Relaxed) {
            return;
        }
        let mut live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        if live.len() < EXEMPLARS_PER_SHARD {
            live.push(ex);
            if live.len() == EXEMPLARS_PER_SHARD {
                let min = live.iter().map(|e| e.ns.total_ns).min().unwrap_or(0);
                self.floor_ns.store(min, Relaxed);
            }
            return;
        }
        // Full: replace the current minimum if this query is slower.
        let (slot, min) = live
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.ns.total_ns)
            .map(|(i, e)| (i, e.ns.total_ns))
            .unwrap_or((0, 0));
        if ex.ns.total_ns > min {
            live[slot] = ex;
            let new_min = live.iter().map(|e| e.ns.total_ns).min().unwrap_or(0);
            self.floor_ns.store(new_min, Relaxed);
        }
    }

    /// Publishes the live set as the completed window and opens a fresh
    /// one. Single-rotator, like [`WindowedHistogram::rotate`].
    fn rotate(&self) {
        let taken = {
            let mut live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *live)
        };
        self.floor_ns.store(0, Relaxed);
        *self
            .completed
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = taken;
    }

    /// The completed window's exemplars, slowest first.
    fn completed(&self) -> Vec<Exemplar> {
        let mut out = self
            .completed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        out.sort_by_key(|b| std::cmp::Reverse(b.ns.total_ns));
        out
    }
}

/// One worker's slab: a `(QueryKind, DegreeClass)` grid of cells plus the
/// shard's tail-exemplar reservoir, padded to its own cache-line
/// neighborhood so concurrent recorders never share a line across shards
/// (pelikan's per-worker metrics shape).
#[derive(Debug)]
#[repr(align(128))]
struct ShardSlab {
    cells: [[SlabCell; NUM_DEGREE_CLASSES]; NUM_QUERY_KINDS],
    exemplars: ExemplarReservoir,
}

impl ShardSlab {
    fn new(windows: usize) -> Self {
        Self {
            cells: std::array::from_fn(|_| std::array::from_fn(|_| SlabCell::new(windows))),
            exemplars: ExemplarReservoir::new(),
        }
    }
}

/// Per-window summary of one non-empty `(kind, class)` cell, merged across
/// shards.
#[derive(Debug, Clone)]
pub struct WindowCell {
    /// Query kind.
    pub kind: QueryKind,
    /// Degree class.
    pub class: DegreeClass,
    /// Merged-across-shards summary for the window.
    pub summary: HistogramSummary,
}

/// Sharded per-worker query-latency slabs. Value type — the closed-loop
/// driver owns one per run (client-observed latencies work without any
/// feature); the gated global facade below owns another for the
/// instrumented query path.
#[derive(Debug)]
pub struct QuerySlabs {
    shards: Box<[ShardSlab]>,
}

impl QuerySlabs {
    /// `shards` slabs (clamped to ≥ 1), each retaining `windows` epochs.
    #[must_use]
    pub fn new(shards: usize, windows: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| ShardSlab::new(windows))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The live epoch (all cells rotate in lockstep, so any cell's epoch is
    /// the slab set's epoch).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shards[0].cells[0][0].windowed.epoch()
    }

    /// Records one latency observation from `shard` (reduced modulo the
    /// shard count, so callers can pass a raw worker/client index). The
    /// end-to-end view only — see [`Self::record_query`] for the
    /// phase-decomposed, exemplar-capturing path.
    #[inline]
    pub fn record(&self, shard: usize, kind: QueryKind, class: DegreeClass, ns: u64) {
        self.shards[shard % self.shards.len()].cells[kind.index()][class.index()].record(ns);
    }

    /// Records one phase-decomposed query from `shard`: the total into the
    /// end-to-end histograms, each phase into its phase slot, and the whole
    /// exemplar into the shard's tail reservoir.
    #[inline]
    pub fn record_query(&self, shard: usize, ex: Exemplar) {
        let slab = &self.shards[shard % self.shards.len()];
        slab.cells[ex.kind.index()][ex.class.index()].record_phases(ex.ns);
        slab.exemplars.offer(ex);
    }

    /// Rotates every cell's window (end-to-end and phase slots) and every
    /// shard's exemplar reservoir in lockstep; returns the completed
    /// epoch. Single-rotator, like [`WindowedHistogram::rotate`].
    pub fn rotate(&self) -> u64 {
        let mut completed = 0;
        for shard in self.shards.iter() {
            for row in &shard.cells {
                for cell in row {
                    completed = cell.windowed.rotate();
                    for slot in cell.phases.iter() {
                        slot.windowed.rotate();
                    }
                }
            }
            shard.exemplars.rotate();
        }
        completed
    }

    /// The completed window's tail exemplars, merged across shards, slowest
    /// first, truncated to the global top [`EXEMPLARS_PER_SHARD`].
    #[must_use]
    pub fn completed_exemplars(&self) -> Vec<Exemplar> {
        let mut out: Vec<Exemplar> = self
            .shards
            .iter()
            .flat_map(|s| s.exemplars.completed())
            .collect();
        out.sort_by_key(|b| std::cmp::Reverse(b.ns.total_ns));
        out.truncate(EXEMPLARS_PER_SHARD);
        out
    }

    /// Merges window `epoch` of every shard's `(kind, class)` cell into
    /// `dst`. `None` for `kind`/`class` merges across that whole dimension.
    pub fn merge_window_into(
        &self,
        epoch: u64,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
        dst: &Histogram,
    ) {
        self.for_cells(kind, class, |cell| {
            if let Some(h) = cell.windowed.window(epoch) {
                h.merge_into(dst);
            }
        });
    }

    /// Merges the lifetime (overall) histograms of the selected cells into
    /// `dst`. `None` for `kind`/`class` merges across that whole dimension.
    pub fn merge_overall_into(
        &self,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
        dst: &Histogram,
    ) {
        self.for_cells(kind, class, |cell| cell.overall.merge_into(dst));
    }

    fn for_cells(
        &self,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
        mut f: impl FnMut(&SlabCell),
    ) {
        for shard in self.shards.iter() {
            for k in QueryKind::ALL {
                if kind.is_some_and(|want| want != k) {
                    continue;
                }
                for c in DegreeClass::ALL {
                    if class.is_some_and(|want| want != c) {
                        continue;
                    }
                    f(&shard.cells[k.index()][c.index()]);
                }
            }
        }
    }

    /// Merged-across-shards summary of window `epoch` for the selected
    /// cells.
    #[must_use]
    pub fn window_summary(
        &self,
        epoch: u64,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
    ) -> HistogramSummary {
        let scratch = Histogram::new();
        self.merge_window_into(epoch, kind, class, &scratch);
        scratch.summary()
    }

    /// Merged-across-shards lifetime summary for the selected cells.
    #[must_use]
    pub fn overall_summary(
        &self,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
    ) -> HistogramSummary {
        let scratch = Histogram::new();
        self.merge_overall_into(kind, class, &scratch);
        scratch.summary()
    }

    /// Merged-across-shards summary of one phase of window `epoch` for the
    /// selected cells.
    #[must_use]
    pub fn window_phase_summary(
        &self,
        epoch: u64,
        phase: QueryPhase,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
    ) -> HistogramSummary {
        let scratch = Histogram::new();
        self.for_cells(kind, class, |cell| {
            if let Some(h) = cell.phases[phase.index()].windowed.window(epoch) {
                h.merge_into(&scratch);
            }
        });
        scratch.summary()
    }

    /// Merged-across-shards lifetime summary of one phase for the selected
    /// cells.
    #[must_use]
    pub fn overall_phase_summary(
        &self,
        phase: QueryPhase,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
    ) -> HistogramSummary {
        let scratch = Histogram::new();
        self.for_cells(kind, class, |cell| {
            cell.phases[phase.index()].overall.merge_into(&scratch);
        });
        scratch.summary()
    }

    /// Every non-empty `(kind, class)` cell of window `epoch`, merged across
    /// shards, in slab-index order.
    #[must_use]
    pub fn window_cells(&self, epoch: u64) -> Vec<WindowCell> {
        let mut out = Vec::new();
        for kind in QueryKind::ALL {
            for class in DegreeClass::ALL {
                let summary = self.window_summary(epoch, Some(kind), Some(class));
                if summary.count > 0 {
                    out.push(WindowCell {
                        kind,
                        class,
                        summary,
                    });
                }
            }
        }
        out
    }

    /// Snapshot of window `epoch` as [`MetricsSnapshot`] window series: one
    /// [`WindowSeries`] per non-empty `(kind, class)` cell, named through
    /// [`window_series_name`] — the same one-definition naming the trace
    /// exporter uses, so every exporter agrees on `query.win.<kind>.<class>`.
    #[must_use]
    pub fn snapshot(&self, epoch: u64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for cell in self.window_cells(epoch) {
            snap.windows.push(WindowSeries {
                name: window_series_name(cell.kind, cell.class),
                kind: cell.kind.name(),
                class: cell.class.name(),
                window: epoch,
                summary: cell.summary,
            });
        }
        snap
    }
}

/// The canonical series name for one `(kind, class)` cell of the windowed
/// serving grid: `query.win.<kind>.<class>`. The *single* definition of
/// this naming — the Chrome-trace counter events
/// ([`crate::export::chrome_trace_with_counters`]), [`QuerySlabs::snapshot`],
/// and (through it) the exposition and JSON stats renderers all call here,
/// so the name cannot drift between exporters.
#[must_use]
pub fn window_series_name(kind: QueryKind, class: DegreeClass) -> String {
    format!("query.win.{}.{}", kind.name(), class.name())
}

/// The canonical series name for one phase of one `(kind, class)` cell:
/// `query.phase.<phase>.<kind>.<class>`. Single definition, like
/// [`window_series_name`].
#[must_use]
pub fn phase_series_name(phase: QueryPhase, kind: QueryKind, class: DegreeClass) -> String {
    format!(
        "query.phase.{}.{}.{}",
        phase.name(),
        kind.name(),
        class.name()
    )
}

/// The canonical series name for a tail exemplar of one `(kind, class)`
/// cell: `query.exemplar.<kind>.<class>`. Single definition, like
/// [`window_series_name`].
#[must_use]
pub fn exemplar_series_name(kind: QueryKind, class: DegreeClass) -> String {
    format!("query.exemplar.{}.{}", kind.name(), class.name())
}

/// One completed window of one `(kind, class)` cell from the process-global
/// slabs, as drained by [`drain_window_log`] and exported as a
/// `query.win.<kind>.<class>` trace counter event. Always compiled.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// The completed epoch.
    pub window: u64,
    /// Window open time (ns on the span clock; `0` for the first window,
    /// meaning "process tracing epoch").
    pub start_ns: u64,
    /// Window close (rotation) time, ns on the span clock.
    pub end_ns: u64,
    /// Query kind.
    pub kind: QueryKind,
    /// Degree class.
    pub class: DegreeClass,
    /// Merged-across-shards summary for the window.
    pub summary: HistogramSummary,
}

impl WindowRecord {
    /// The record's canonical `query.win.<kind>.<class>` series name
    /// (see [`window_series_name`]).
    #[must_use]
    pub fn series_name(&self) -> String {
        window_series_name(self.kind, self.class)
    }
}

/// One completed window of one phase of one `(kind, class)` cell from the
/// process-global slabs, as drained by [`drain_phase_log`] and exported as
/// a `query.phase.<phase>.<kind>.<class>` trace counter event. Always
/// compiled.
#[derive(Debug, Clone)]
pub struct PhaseRecord {
    /// The completed epoch.
    pub window: u64,
    /// Window close (rotation) time, ns on the span clock.
    pub end_ns: u64,
    /// Lifecycle phase.
    pub phase: QueryPhase,
    /// Query kind.
    pub kind: QueryKind,
    /// Degree class.
    pub class: DegreeClass,
    /// Merged-across-shards summary of the phase for the window.
    pub summary: HistogramSummary,
}

impl PhaseRecord {
    /// The record's canonical `query.phase.<phase>.<kind>.<class>` series
    /// name (see [`phase_series_name`]).
    #[must_use]
    pub fn series_name(&self) -> String {
        phase_series_name(self.phase, self.kind, self.class)
    }
}

/// One tail exemplar of one completed window from the process-global
/// slabs, as drained by [`drain_exemplar_log`] and exported as a
/// `query.exemplar.<kind>.<class>` trace counter event. Always compiled.
#[derive(Debug, Clone)]
pub struct ExemplarRecord {
    /// The completed epoch.
    pub window: u64,
    /// Window close (rotation) time, ns on the span clock.
    pub end_ns: u64,
    /// The captured tail query.
    pub exemplar: Exemplar,
}

impl ExemplarRecord {
    /// The record's canonical `query.exemplar.<kind>.<class>` series name
    /// (see [`exemplar_series_name`]).
    #[must_use]
    pub fn series_name(&self) -> String {
        exemplar_series_name(self.exemplar.kind, self.exemplar.class)
    }
}

/// One rotated window's summary as retained by the history ring: the
/// non-empty `(kind, class)` cells plus the window-level throughput.
#[derive(Debug, Clone)]
pub struct HistoryWindow {
    /// The completed epoch.
    pub window: u64,
    /// Window close (rotation) time, ns on the span clock.
    pub end_ns: u64,
    /// Window length, nanoseconds (0 for the first window, whose open time
    /// is the process tracing epoch).
    pub dur_ns: u64,
    /// Total queries across all cells.
    pub queries: u64,
    /// Achieved throughput over the window (0 when `dur_ns` is 0).
    pub qps: f64,
    /// Per-cell summaries, slab-index order, empty cells skipped.
    pub cells: Vec<WindowCell>,
}

/// Fixed-capacity ring of rotated window summaries: the time-series view
/// behind the admin plane's `history` endpoint. Pushing past capacity
/// evicts oldest-first, and [`HistoryRing::window`] returns `None` for
/// evicted (or never-pushed) epochs — the same retention semantics as
/// [`WindowedHistogram`], which the property tests pin.
#[derive(Debug)]
pub struct HistoryRing {
    cap: usize,
    ring: Mutex<VecDeque<HistoryWindow>>,
}

impl HistoryRing {
    /// A ring retaining the last `cap` windows (clamped to ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            ring: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    /// Ring capacity (maximum retained windows).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of currently retained windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one rotated window, evicting the oldest when full.
    pub fn push(&self, window: HistoryWindow) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(window);
    }

    /// The retained summary for `epoch`, or `None` once it has been
    /// evicted (or was never pushed).
    #[must_use]
    pub fn window(&self, epoch: u64) -> Option<HistoryWindow> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|w| w.window == epoch)
            .cloned()
    }

    /// Every retained window, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<HistoryWindow> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

/// Shards in the process-global slab set. Worker `tid`s map to
/// `1 + index`, reduced modulo this, and off-pool threads share shard 0 —
/// good enough isolation for the shim pool's widths while bounding memory.
#[cfg(feature = "enabled")]
const GLOBAL_SHARDS: usize = 8;
/// Retained epochs per cell in the process-global slab set.
#[cfg(feature = "enabled")]
const GLOBAL_WINDOWS: usize = 4;

/// Windows the process-global history ring retains. Sized so a default
/// watch cadence (250 ms windows) keeps ~16 s of history on screen — and
/// comfortably above the 30 sparkline columns `parcsr watch` renders.
pub const HISTORY_WINDOWS: usize = 64;

#[cfg(feature = "enabled")]
static GLOBAL_SLABS: OnceLock<QuerySlabs> = OnceLock::new();

#[cfg(feature = "enabled")]
static GLOBAL_HISTORY: OnceLock<HistoryRing> = OnceLock::new();

#[cfg(feature = "enabled")]
static WINDOW_LOG: Mutex<Vec<WindowRecord>> = Mutex::new(Vec::new());

#[cfg(feature = "enabled")]
static PHASE_LOG: Mutex<Vec<PhaseRecord>> = Mutex::new(Vec::new());

#[cfg(feature = "enabled")]
static EXEMPLAR_LOG: Mutex<Vec<ExemplarRecord>> = Mutex::new(Vec::new());

/// Span-clock time of the last [`rotate_window`] (0 = none yet), so each
/// drained window knows when it opened.
#[cfg(feature = "enabled")]
static LAST_ROTATE_NS: AtomicU64 = AtomicU64::new(0);

/// Wall-clock length of the most recently completed window, nanoseconds
/// (0 = no window completed yet). Lets [`serving_snapshot`] report a
/// `query.win.duration_ns` gauge so scrapers can turn per-window counts
/// into qps without knowing the reporter's `--window-ms`.
#[cfg(feature = "enabled")]
static LAST_WINDOW_DUR_NS: AtomicU64 = AtomicU64::new(0);

#[cfg(feature = "enabled")]
fn global_slabs() -> &'static QuerySlabs {
    GLOBAL_SLABS.get_or_init(|| QuerySlabs::new(GLOBAL_SHARDS, GLOBAL_WINDOWS))
}

/// In-flight phase-timed guard from [`query_start`]. Construction stamps
/// the `queued` checkpoint; [`dispatched`](Self::dispatched) and
/// [`executed`](Self::executed) stamp the intermediate checkpoints;
/// [`finish`](Self::finish) stamps `replied` and records the
/// phase-decomposed sample. Checkpoints are optional — an unmarked
/// `dispatched` means no queue phase, an unmarked `executed` means no
/// reply phase (see [`QueryPhase`]) — so today's in-process query path and
/// the future data plane share one API. Zero-sized when the `enabled`
/// feature is off.
pub struct QueryStart {
    #[cfg(feature = "enabled")]
    armed: Option<PhaseClock>,
}

/// The checkpoint timestamps of one armed [`QueryStart`].
#[cfg(feature = "enabled")]
#[derive(Clone, Copy)]
struct PhaseClock {
    queued_ns: u64,
    dispatched_ns: Option<u64>,
    executed_ns: Option<u64>,
    source: u64,
}

impl QueryStart {
    /// Marks the `dispatched` checkpoint: the query left the queue and
    /// began executing. Queue time is 0 if never called.
    #[inline(always)]
    pub fn dispatched(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(clock) = self.armed.as_mut() {
            clock.dispatched_ns = Some(crate::span::now_ns());
        }
    }

    /// Marks the `executed` checkpoint: the query's work finished and the
    /// reply phase began. Reply time is 0 if never called.
    #[inline(always)]
    pub fn executed(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(clock) = self.armed.as_mut() {
            clock.executed_ns = Some(crate::span::now_ns());
        }
    }

    /// Labels the source vertex for tail-exemplar capture (0, the default,
    /// when the caller never labels one).
    #[inline(always)]
    pub fn source(&mut self, vertex: u64) {
        #[cfg(feature = "enabled")]
        if let Some(clock) = self.armed.as_mut() {
            clock.source = vertex;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = vertex;
        }
    }

    /// Completes the query: stamps the `replied` checkpoint, classifies
    /// `degree()` (only evaluated when a sample will actually be recorded),
    /// and records the phase-decomposed sample — histograms plus the tail
    /// exemplar reservoir — into the global slabs.
    #[inline(always)]
    pub fn finish(self, kind: QueryKind, degree: impl FnOnce() -> usize) {
        #[cfg(feature = "enabled")]
        if let Some(clock) = self.armed {
            let replied = crate::span::now_ns();
            let dispatched = clock.dispatched_ns.unwrap_or(clock.queued_ns);
            let executed = clock.executed_ns.unwrap_or(replied);
            let ns = PhaseNanos::from_checkpoints(clock.queued_ns, dispatched, executed, replied);
            let shard = rayon::current_thread_index().map_or(0, |i| i + 1);
            global_slabs().record_query(
                shard,
                Exemplar {
                    kind,
                    class: DegreeClass::classify(degree()),
                    source: clock.source,
                    ns,
                },
            );
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (kind, degree);
        }
    }
}

/// Starts timing one query against the process-global slabs. Compiles to a
/// ZST without the `enabled` feature; one relaxed load when compiled in but
/// runtime recording is off.
#[inline(always)]
#[must_use]
pub fn query_start() -> QueryStart {
    #[cfg(feature = "enabled")]
    {
        QueryStart {
            armed: crate::is_enabled().then(|| PhaseClock {
                queued_ns: crate::span::now_ns(),
                dispatched_ns: None,
                executed_ns: None,
                source: 0,
            }),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        QueryStart {}
    }
}

/// Rotates the process-global slabs (single-rotator) and, for the
/// completed window: appends one [`WindowRecord`] per non-empty
/// `(kind, class)` cell to the window log, one [`PhaseRecord`] per phase of
/// each such cell to the phase log, the window's tail exemplars to the
/// exemplar log, and the window's summary to the history ring. Returns the
/// completed epoch, or `None` when nothing was ever recorded (or the
/// feature is off).
pub fn rotate_window() -> Option<u64> {
    #[cfg(feature = "enabled")]
    {
        let slabs = GLOBAL_SLABS.get()?;
        let end_ns = crate::span::now_ns();
        let start_ns = LAST_ROTATE_NS.swap(end_ns, Relaxed);
        let dur_ns = end_ns.saturating_sub(start_ns);
        LAST_WINDOW_DUR_NS.store(dur_ns, Relaxed);
        let completed = slabs.rotate();
        let cells = slabs.window_cells(completed);

        {
            let mut phases = PHASE_LOG.lock().unwrap_or_else(PoisonError::into_inner);
            for cell in &cells {
                for phase in QueryPhase::ALL {
                    let summary = slabs.window_phase_summary(
                        completed,
                        phase,
                        Some(cell.kind),
                        Some(cell.class),
                    );
                    if summary.count > 0 {
                        phases.push(PhaseRecord {
                            window: completed,
                            end_ns,
                            phase,
                            kind: cell.kind,
                            class: cell.class,
                            summary,
                        });
                    }
                }
            }
        }

        {
            let mut log = EXEMPLAR_LOG.lock().unwrap_or_else(PoisonError::into_inner);
            for exemplar in slabs.completed_exemplars() {
                log.push(ExemplarRecord {
                    window: completed,
                    end_ns,
                    exemplar,
                });
            }
        }

        let queries: u64 = cells.iter().map(|c| c.summary.count).sum();
        let qps = if dur_ns > 0 {
            queries as f64 * 1e9 / dur_ns as f64
        } else {
            0.0
        };
        GLOBAL_HISTORY
            .get_or_init(|| HistoryRing::new(HISTORY_WINDOWS))
            .push(HistoryWindow {
                window: completed,
                end_ns,
                dur_ns,
                queries,
                qps,
                cells: cells.clone(),
            });

        let mut log = WINDOW_LOG.lock().unwrap_or_else(PoisonError::into_inner);
        for cell in cells {
            log.push(WindowRecord {
                window: completed,
                start_ns,
                end_ns,
                kind: cell.kind,
                class: cell.class,
                summary: cell.summary,
            });
        }
        Some(completed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        None
    }
}

/// Every retained window of the process-global history ring, oldest
/// first — the payload behind the admin plane's `history` endpoint.
/// Read-only and safe from any thread, like [`serving_snapshot`]. Empty
/// when the feature is off or no window ever rotated.
#[must_use]
pub fn history_snapshot() -> Vec<HistoryWindow> {
    #[cfg(feature = "enabled")]
    {
        GLOBAL_HISTORY
            .get()
            .map(HistoryRing::snapshot)
            .unwrap_or_default()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Snapshot of the process-global serving slabs for live introspection
/// (the admin plane's scrape path): the most recently *completed* window's
/// `(kind, class)` grid as [`WindowSeries`] entries (the live, still-filling
/// window when nothing has rotated yet), plus `query.win.epoch` (live
/// epoch) and `query.win.duration_ns` (length of the last completed window)
/// gauges. Read-only — never rotates, so it is safe to call from any
/// thread while a reporter owns rotation (a scrape that races a rotation
/// sees the one-sample boundary smear documented in the module header, no
/// worse). Empty when the feature is off or nothing was ever recorded.
#[must_use]
pub fn serving_snapshot() -> MetricsSnapshot {
    #[cfg(feature = "enabled")]
    {
        let Some(slabs) = GLOBAL_SLABS.get() else {
            return MetricsSnapshot::default();
        };
        let live = slabs.epoch();
        let shown = live.saturating_sub(1);
        let mut snap = slabs.snapshot(shown);
        snap.gauges
            .push(("query.win.epoch".to_string(), live as i64));
        snap.gauges.push((
            "query.win.duration_ns".to_string(),
            LAST_WINDOW_DUR_NS.load(Relaxed) as i64,
        ));
        snap
    }
    #[cfg(not(feature = "enabled"))]
    {
        MetricsSnapshot::default()
    }
}

/// Takes every [`WindowRecord`] accumulated by [`rotate_window`] since the
/// last drain, in rotation order. Empty without the `enabled` feature.
#[must_use]
pub fn drain_window_log() -> Vec<WindowRecord> {
    #[cfg(feature = "enabled")]
    {
        std::mem::take(&mut *WINDOW_LOG.lock().unwrap_or_else(PoisonError::into_inner))
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Takes every [`PhaseRecord`] accumulated by [`rotate_window`] since the
/// last drain, in rotation order. Empty without the `enabled` feature.
#[must_use]
pub fn drain_phase_log() -> Vec<PhaseRecord> {
    #[cfg(feature = "enabled")]
    {
        std::mem::take(&mut *PHASE_LOG.lock().unwrap_or_else(PoisonError::into_inner))
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Takes every [`ExemplarRecord`] accumulated by [`rotate_window`] since
/// the last drain, in rotation order. Empty without the `enabled` feature.
#[must_use]
pub fn drain_exemplar_log() -> Vec<ExemplarRecord> {
    #[cfg(feature = "enabled")]
    {
        std::mem::take(&mut *EXEMPLAR_LOG.lock().unwrap_or_else(PoisonError::into_inner))
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_classes_partition_the_degree_axis() {
        assert_eq!(DegreeClass::classify(0), DegreeClass::Low);
        assert_eq!(DegreeClass::classify(LOW_DEGREE_MAX - 1), DegreeClass::Low);
        assert_eq!(DegreeClass::classify(LOW_DEGREE_MAX), DegreeClass::Mid);
        assert_eq!(DegreeClass::classify(MID_DEGREE_MAX - 1), DegreeClass::Mid);
        assert_eq!(DegreeClass::classify(MID_DEGREE_MAX), DegreeClass::Hub);
        assert_eq!(DegreeClass::classify(usize::MAX), DegreeClass::Hub);
    }

    #[test]
    fn kind_and_class_indices_are_dense_and_stable() {
        for (i, k) in QueryKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, c) in DegreeClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let names: Vec<_> = QueryKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "neighbors",
                "edge_scan",
                "edge_binary",
                "split",
                "traversal"
            ]
        );
    }

    #[test]
    fn windowed_histogram_rotation_retains_and_expires() {
        let w = WindowedHistogram::new(3);
        w.record(10);
        w.record(20);
        assert_eq!(w.live().count(), 2);

        let completed = w.rotate();
        assert_eq!(completed, 0);
        assert_eq!(w.epoch(), 1);
        assert_eq!(w.window(0).unwrap().count(), 2);
        assert_eq!(w.live().count(), 0);

        w.record(30);
        w.rotate(); // completes epoch 1 (count 1)
        w.rotate(); // completes epoch 2 (empty); epoch 0 now expires
        assert!(w.window(0).is_none(), "epoch 0 fell out of the ring");
        assert_eq!(w.window(1).unwrap().count(), 1);
        assert_eq!(w.window(2).unwrap().count(), 0);
        assert!(w.window(4).is_none(), "future epoch");
    }

    #[test]
    fn windowed_histogram_retained_merge_is_sliding_aggregate() {
        let w = WindowedHistogram::new(2);
        w.record(100);
        w.rotate();
        w.record(200);
        let dst = Histogram::new();
        w.merge_retained_into(&dst);
        assert_eq!(dst.count(), 2);
        assert_eq!(dst.max(), 200);
    }

    #[test]
    fn slabs_merge_across_shards_matches_single_slab() {
        let sharded = QuerySlabs::new(4, 2);
        let single = QuerySlabs::new(1, 2);
        let samples = [
            (0usize, QueryKind::Neighbors, DegreeClass::Low, 50u64),
            (1, QueryKind::Neighbors, DegreeClass::Low, 5_000),
            (2, QueryKind::EdgeScan, DegreeClass::Hub, 900),
            (7, QueryKind::Neighbors, DegreeClass::Low, 70), // 7 % 4 == 3
        ];
        for &(shard, kind, class, ns) in &samples {
            sharded.record(shard, kind, class, ns);
            single.record(0, kind, class, ns);
        }
        let a = sharded.window_summary(0, Some(QueryKind::Neighbors), Some(DegreeClass::Low));
        let b = single.window_summary(0, Some(QueryKind::Neighbors), Some(DegreeClass::Low));
        assert_eq!(a, b);
        assert_eq!(a.count, 3);
        // Merging across every dimension sees all four samples.
        assert_eq!(sharded.window_summary(0, None, None).count, 4);
        assert_eq!(sharded.overall_summary(None, None).count, 4);
    }

    #[test]
    fn window_series_names_are_canonical_and_snapshot_uses_them() {
        assert_eq!(
            window_series_name(QueryKind::EdgeBinary, DegreeClass::Hub),
            "query.win.edge_binary.hub"
        );
        let slabs = QuerySlabs::new(2, 3);
        slabs.record(0, QueryKind::Neighbors, DegreeClass::Low, 100);
        slabs.record(1, QueryKind::SplitSearch, DegreeClass::Hub, 9_000);
        let completed = slabs.rotate();
        let snap = slabs.snapshot(completed);
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
        let names: Vec<_> = snap.windows.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            ["query.win.neighbors.low", "query.win.split.hub"],
            "slab-index order, one definition of the naming"
        );
        // Labels mirror the name's components without re-deriving them.
        assert_eq!(snap.windows[0].kind, "neighbors");
        assert_eq!(snap.windows[0].class, "low");
        assert_eq!(snap.windows[1].window, completed);
        assert_eq!(snap.windows[1].summary.count, 1);
        // An empty epoch snapshots to an empty series list.
        assert!(slabs.snapshot(slabs.epoch()).windows.is_empty());
    }

    #[test]
    fn slab_rotation_is_lockstep_and_window_cells_skip_empty() {
        let slabs = QuerySlabs::new(2, 3);
        slabs.record(0, QueryKind::Neighbors, DegreeClass::Low, 10);
        slabs.record(1, QueryKind::SplitSearch, DegreeClass::Hub, 10_000);
        let completed = slabs.rotate();
        assert_eq!(completed, 0);
        assert_eq!(slabs.epoch(), 1);
        let cells = slabs.window_cells(completed);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].kind, QueryKind::Neighbors);
        assert_eq!(cells[0].class, DegreeClass::Low);
        assert_eq!(cells[1].kind, QueryKind::SplitSearch);
        assert_eq!(cells[1].class, DegreeClass::Hub);
        // Overall view survives rotation.
        assert_eq!(slabs.overall_summary(None, None).count, 2);
        // The new live window is empty.
        assert!(slabs.window_cells(slabs.epoch()).is_empty());
    }

    #[test]
    fn phase_indices_and_names_are_dense_and_stable() {
        for (i, p) in QueryPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: Vec<_> = QueryPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["queue", "exec", "reply"]);
        assert_eq!(
            phase_series_name(QueryPhase::Queue, QueryKind::SplitSearch, DegreeClass::Hub),
            "query.phase.queue.split.hub"
        );
        assert_eq!(
            exemplar_series_name(QueryKind::Neighbors, DegreeClass::Low),
            "query.exemplar.neighbors.low"
        );
    }

    #[test]
    fn phase_nanos_partition_the_end_to_end_time() {
        let ns = PhaseNanos::from_checkpoints(100, 150, 900, 1_000);
        assert_eq!(ns.total_ns, 900);
        assert_eq!(ns.queue_ns, 50);
        assert_eq!(ns.exec_ns, 750);
        assert_eq!(ns.reply_ns, 100);
        assert_eq!(ns.queue_ns + ns.exec_ns + ns.reply_ns, ns.total_ns);
        // Non-monotone checkpoints (clock smear) are clamped, never summing
        // past the end-to-end time.
        let ns = PhaseNanos::from_checkpoints(100, 90, 2_000, 1_000);
        assert!(ns.queue_ns + ns.exec_ns + ns.reply_ns <= ns.total_ns);
        // Degenerate guard: everything is exec.
        let ns = PhaseNanos::all_exec(777);
        assert_eq!((ns.queue_ns, ns.exec_ns, ns.reply_ns), (0, 777, 0));
    }

    #[test]
    fn record_query_feeds_phase_histograms_in_the_same_grid() {
        let slabs = QuerySlabs::new(2, 3);
        for (shard, source, queue, exec) in [(0usize, 7u64, 100u64, 900u64), (1, 9, 300, 1_700)] {
            slabs.record_query(
                shard,
                Exemplar {
                    kind: QueryKind::Neighbors,
                    class: DegreeClass::Hub,
                    source,
                    ns: PhaseNanos {
                        total_ns: queue + exec,
                        queue_ns: queue,
                        exec_ns: exec,
                        reply_ns: 0,
                    },
                },
            );
        }
        let epoch = slabs.epoch();
        let total = slabs.window_summary(epoch, Some(QueryKind::Neighbors), Some(DegreeClass::Hub));
        assert_eq!(total.count, 2);
        let queue = slabs.window_phase_summary(epoch, QueryPhase::Queue, None, None);
        let exec = slabs.window_phase_summary(epoch, QueryPhase::Exec, None, None);
        let reply = slabs.window_phase_summary(epoch, QueryPhase::Reply, None, None);
        assert_eq!(queue.count, 2);
        assert_eq!(exec.count, 2);
        assert_eq!(reply.count, 2);
        // The phase sums partition the end-to-end sum exactly.
        assert_eq!(queue.sum + exec.sum + reply.sum, total.sum);
        assert_eq!(queue.sum, 400);
        // Overall phase view matches while the window is live; both survive
        // rotation on the overall side only.
        assert_eq!(
            slabs
                .overall_phase_summary(QueryPhase::Exec, Some(QueryKind::Neighbors), None)
                .sum,
            2_600
        );
        slabs.rotate();
        slabs.rotate();
        slabs.rotate();
        assert_eq!(
            slabs
                .window_phase_summary(epoch, QueryPhase::Queue, None, None)
                .count,
            0,
            "phase windows rotate in lockstep with the end-to-end windows"
        );
        assert_eq!(
            slabs
                .overall_phase_summary(QueryPhase::Queue, None, None)
                .sum,
            400
        );
    }

    fn exemplar(total_ns: u64, source: u64) -> Exemplar {
        Exemplar {
            kind: QueryKind::EdgeScan,
            class: DegreeClass::Mid,
            source,
            ns: PhaseNanos::all_exec(total_ns),
        }
    }

    #[test]
    fn exemplar_reservoir_keeps_the_k_slowest_per_window() {
        let slabs = QuerySlabs::new(1, 2);
        // 2×K queries with distinct totals: only the slowest K survive.
        let n = 2 * EXEMPLARS_PER_SHARD as u64;
        for i in 0..n {
            slabs.record_query(0, exemplar(1_000 + i, i));
        }
        assert!(
            slabs.completed_exemplars().is_empty(),
            "live exemplars publish only at rotation"
        );
        slabs.rotate();
        let kept = slabs.completed_exemplars();
        assert_eq!(kept.len(), EXEMPLARS_PER_SHARD);
        // Slowest first, and exactly the top half by total.
        let totals: Vec<_> = kept.iter().map(|e| e.ns.total_ns).collect();
        let want: Vec<_> = (0..EXEMPLARS_PER_SHARD as u64)
            .map(|i| 1_000 + n - 1 - i)
            .collect();
        assert_eq!(totals, want);
        // The next rotation replaces the completed set (empty this time).
        slabs.rotate();
        assert!(slabs.completed_exemplars().is_empty());
    }

    #[test]
    fn exemplars_merge_across_shards_to_the_global_top_k() {
        let slabs = QuerySlabs::new(4, 2);
        for shard in 0..4usize {
            for i in 0..EXEMPLARS_PER_SHARD as u64 {
                slabs.record_query(shard, exemplar(1_000 * (shard as u64 + 1) + i, i));
            }
        }
        slabs.rotate();
        let kept = slabs.completed_exemplars();
        assert_eq!(kept.len(), EXEMPLARS_PER_SHARD);
        // All survivors come from the slowest shard's range.
        assert!(kept.iter().all(|e| e.ns.total_ns >= 4_000));
    }

    fn history_window(epoch: u64) -> HistoryWindow {
        HistoryWindow {
            window: epoch,
            end_ns: (epoch + 1) * 1_000,
            dur_ns: 1_000,
            queries: 10,
            qps: 10.0,
            cells: Vec::new(),
        }
    }

    #[test]
    fn history_ring_evicts_oldest_first_like_the_windowed_histogram() {
        let ring = HistoryRing::new(3);
        assert!(ring.is_empty());
        assert!(ring.window(0).is_none(), "never pushed");
        for epoch in 0..5 {
            ring.push(history_window(epoch));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert!(ring.window(0).is_none(), "evicted");
        assert!(ring.window(1).is_none(), "evicted");
        for epoch in 2..5 {
            assert_eq!(ring.window(epoch).unwrap().window, epoch);
        }
        let ordinals: Vec<_> = ring.snapshot().iter().map(|w| w.window).collect();
        assert_eq!(ordinals, [2, 3, 4], "oldest first");
    }
}
