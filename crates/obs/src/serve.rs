//! Serving telemetry: sharded per-worker metric slabs and sliding-window
//! histograms for per-query SLO accounting.
//!
//! The build-time obs stack (spans, cumulative histograms) answers "where
//! did this run spend its time"; a query *server* needs a different shape:
//! "what were p50/p95/p99 and qps over the last few hundred milliseconds,
//! per query type, per degree class". This module provides that shape,
//! mirroring pelikan's metrics layout:
//!
//! * [`WindowedHistogram`] — a ring of the existing log-bucketed
//!   [`Histogram`]s with epoch rotation. Recording always lands in the live
//!   epoch's histogram; [`WindowedHistogram::rotate`] completes the live
//!   window and clears the oldest retained one for reuse. Completed windows
//!   stay readable for `windows - 1` further rotations.
//! * [`QuerySlabs`] — cache-line-padded per-worker shards, each holding one
//!   `(overall, windowed)` histogram pair per `(QueryKind, DegreeClass)`
//!   cell. Workers record into their own shard with no sharing; readers
//!   merge shards on demand ([`Histogram::merge_into`] — deterministic
//!   bucketing makes a sharded merge bit-identical to single-slab
//!   recording).
//! * A process-global facade ([`query_start`], [`rotate_window`],
//!   [`drain_window_log`]) gated exactly like the rest of the crate: ZST
//!   no-ops without the `enabled` feature, one relaxed load when compiled
//!   in but runtime recording is off.
//!
//! # Concurrency contract
//!
//! Recording is wait-free (relaxed atomics into the recorder's own shard).
//! Rotation is expected from a *single* coordinator thread (the window
//! reporter); concurrent rotators would race on the epoch. A recorder that
//! reads the epoch right at a rotation boundary may land its sample in the
//! just-completed window (or, if descheduled for a full ring cycle, in a
//! cleared one) — a one-sample boundary smear that is acceptable for a
//! statistical latency view and never corrupts bucket counts.

// ORDERING: Relaxed throughout — slab cells are independent statistical
// histogram buckets (see metrics.rs), and the window epoch is a coarse
// phase indicator read at recording time; the boundary smear documented
// above is accepted, so no acquire/release pairing is needed.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::metrics::{Histogram, HistogramSummary, MetricsSnapshot, WindowSeries};

/// Query types the serving path accounts for, matching the paper's
/// query-algorithm families (Algorithms 6–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Algorithm 6: neighborhood materialization (`neighbors_batch`).
    Neighbors,
    /// Algorithm 7, linear variant: edge-existence row scan
    /// (`edges_exist_batch`).
    EdgeScan,
    /// Algorithm 7, binary variant: edge-existence binary search over the
    /// decoded row (`edges_exist_batch_binary`).
    EdgeBinary,
    /// Algorithm 8/9: split-row search (`edge_exists_split[_binary]`).
    SplitSearch,
    /// Whole-graph traversal entry points in `parcsr-algos` (BFS, SSSP).
    Traversal,
}

/// Number of [`QueryKind`] variants (slab cell dimension).
pub const NUM_QUERY_KINDS: usize = 5;

impl QueryKind {
    /// All kinds, in slab-index order.
    pub const ALL: [QueryKind; NUM_QUERY_KINDS] = [
        QueryKind::Neighbors,
        QueryKind::EdgeScan,
        QueryKind::EdgeBinary,
        QueryKind::SplitSearch,
        QueryKind::Traversal,
    ];

    /// Stable slab index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in event/JSON schemas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Neighbors => "neighbors",
            QueryKind::EdgeScan => "edge_scan",
            QueryKind::EdgeBinary => "edge_binary",
            QueryKind::SplitSearch => "split",
            QueryKind::Traversal => "traversal",
        }
    }
}

/// Degree class of a query's subject row. Social-network degree skew means
/// hub rows behave nothing like the long tail — the paper's split-row
/// algorithms exist *because* of that — so latency is attributed per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegreeClass {
    /// Degree < 32: the long tail; rows fit in one or two cache lines.
    Low,
    /// Degree 32..1024: mid-size rows.
    Mid,
    /// Degree ≥ 1024: hub rows (the imbalance graph's hubs are ~16 k).
    Hub,
}

/// Number of [`DegreeClass`] variants (slab cell dimension).
pub const NUM_DEGREE_CLASSES: usize = 3;

/// `Low`/`Mid` boundary (exclusive upper degree for `Low`).
pub const LOW_DEGREE_MAX: usize = 32;
/// `Mid`/`Hub` boundary (exclusive upper degree for `Mid`).
pub const MID_DEGREE_MAX: usize = 1024;

impl DegreeClass {
    /// All classes, in slab-index order.
    pub const ALL: [DegreeClass; NUM_DEGREE_CLASSES] =
        [DegreeClass::Low, DegreeClass::Mid, DegreeClass::Hub];

    /// Classifies a row degree.
    #[inline]
    #[must_use]
    pub fn classify(degree: usize) -> Self {
        if degree < LOW_DEGREE_MAX {
            DegreeClass::Low
        } else if degree < MID_DEGREE_MAX {
            DegreeClass::Mid
        } else {
            DegreeClass::Hub
        }
    }

    /// Stable slab index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in event/JSON schemas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DegreeClass::Low => "low",
            DegreeClass::Mid => "mid",
            DegreeClass::Hub => "hub",
        }
    }
}

/// Ring of [`Histogram`]s with epoch rotation: the sliding-window latency
/// view. Always compiled (plain atomics, unit-testable without features).
#[derive(Debug)]
pub struct WindowedHistogram {
    ring: Box<[Histogram]>,
    epoch: AtomicU64,
}

impl WindowedHistogram {
    /// A ring retaining `windows` epochs (clamped to ≥ 2 so the live window
    /// is never the one being cleared at rotation).
    #[must_use]
    pub fn new(windows: usize) -> Self {
        let w = windows.max(2);
        Self {
            ring: (0..w).map(|_| Histogram::new()).collect(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Ring capacity (number of retained epochs, including the live one).
    #[must_use]
    pub fn windows(&self) -> usize {
        self.ring.len()
    }

    /// The live (currently recording) epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Relaxed)
    }

    /// Records one observation into the live window.
    #[inline]
    pub fn record(&self, v: u64) {
        let e = self.epoch.load(Relaxed);
        self.ring[(e % self.ring.len() as u64) as usize].record(v);
    }

    /// Completes the live window and opens the next: clears the oldest
    /// retained histogram for reuse, then advances the epoch. Returns the
    /// epoch just completed (readable via [`Self::window`] for another
    /// `windows - 1` rotations). Single-rotator: call from one coordinator
    /// thread only.
    pub fn rotate(&self) -> u64 {
        let e = self.epoch.load(Relaxed);
        let next = ((e + 1) % self.ring.len() as u64) as usize;
        self.ring[next].reset();
        self.epoch.store(e + 1, Relaxed);
        e
    }

    /// The histogram for `epoch`, if still retained: the live epoch or one
    /// of the `windows - 1` most recently completed ones.
    #[must_use]
    pub fn window(&self, epoch: u64) -> Option<&Histogram> {
        let live = self.epoch.load(Relaxed);
        if epoch > live || live - epoch >= self.ring.len() as u64 {
            return None;
        }
        Some(&self.ring[(epoch % self.ring.len() as u64) as usize])
    }

    /// The live window's histogram.
    #[must_use]
    pub fn live(&self) -> &Histogram {
        &self.ring[(self.epoch() % self.ring.len() as u64) as usize]
    }

    /// Merges every retained window (completed + live) into `dst`: the
    /// sliding-window aggregate over the last `windows` epochs.
    pub fn merge_retained_into(&self, dst: &Histogram) {
        for h in &self.ring {
            h.merge_into(dst);
        }
    }
}

/// One `(overall, windowed)` histogram pair: lifetime totals plus the
/// sliding-window view of the same observations.
#[derive(Debug)]
struct SlabCell {
    overall: Histogram,
    windowed: WindowedHistogram,
}

impl SlabCell {
    fn new(windows: usize) -> Self {
        Self {
            overall: Histogram::new(),
            windowed: WindowedHistogram::new(windows),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.overall.record(v);
        self.windowed.record(v);
    }
}

/// One worker's slab: a `(QueryKind, DegreeClass)` grid of cells, padded to
/// its own cache-line neighborhood so concurrent recorders never share a
/// line across shards (pelikan's per-worker metrics shape).
#[derive(Debug)]
#[repr(align(128))]
struct ShardSlab {
    cells: [[SlabCell; NUM_DEGREE_CLASSES]; NUM_QUERY_KINDS],
}

impl ShardSlab {
    fn new(windows: usize) -> Self {
        Self {
            cells: std::array::from_fn(|_| std::array::from_fn(|_| SlabCell::new(windows))),
        }
    }
}

/// Per-window summary of one non-empty `(kind, class)` cell, merged across
/// shards.
#[derive(Debug, Clone)]
pub struct WindowCell {
    /// Query kind.
    pub kind: QueryKind,
    /// Degree class.
    pub class: DegreeClass,
    /// Merged-across-shards summary for the window.
    pub summary: HistogramSummary,
}

/// Sharded per-worker query-latency slabs. Value type — the closed-loop
/// driver owns one per run (client-observed latencies work without any
/// feature); the gated global facade below owns another for the
/// instrumented query path.
#[derive(Debug)]
pub struct QuerySlabs {
    shards: Box<[ShardSlab]>,
}

impl QuerySlabs {
    /// `shards` slabs (clamped to ≥ 1), each retaining `windows` epochs.
    #[must_use]
    pub fn new(shards: usize, windows: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| ShardSlab::new(windows))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The live epoch (all cells rotate in lockstep, so any cell's epoch is
    /// the slab set's epoch).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shards[0].cells[0][0].windowed.epoch()
    }

    /// Records one latency observation from `shard` (reduced modulo the
    /// shard count, so callers can pass a raw worker/client index).
    #[inline]
    pub fn record(&self, shard: usize, kind: QueryKind, class: DegreeClass, ns: u64) {
        self.shards[shard % self.shards.len()].cells[kind.index()][class.index()].record(ns);
    }

    /// Rotates every cell's window in lockstep; returns the completed
    /// epoch. Single-rotator, like [`WindowedHistogram::rotate`].
    pub fn rotate(&self) -> u64 {
        let mut completed = 0;
        for shard in self.shards.iter() {
            for row in &shard.cells {
                for cell in row {
                    completed = cell.windowed.rotate();
                }
            }
        }
        completed
    }

    /// Merges window `epoch` of every shard's `(kind, class)` cell into
    /// `dst`. `None` for `kind`/`class` merges across that whole dimension.
    pub fn merge_window_into(
        &self,
        epoch: u64,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
        dst: &Histogram,
    ) {
        self.for_cells(kind, class, |cell| {
            if let Some(h) = cell.windowed.window(epoch) {
                h.merge_into(dst);
            }
        });
    }

    /// Merges the lifetime (overall) histograms of the selected cells into
    /// `dst`. `None` for `kind`/`class` merges across that whole dimension.
    pub fn merge_overall_into(
        &self,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
        dst: &Histogram,
    ) {
        self.for_cells(kind, class, |cell| cell.overall.merge_into(dst));
    }

    fn for_cells(
        &self,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
        mut f: impl FnMut(&SlabCell),
    ) {
        for shard in self.shards.iter() {
            for k in QueryKind::ALL {
                if kind.is_some_and(|want| want != k) {
                    continue;
                }
                for c in DegreeClass::ALL {
                    if class.is_some_and(|want| want != c) {
                        continue;
                    }
                    f(&shard.cells[k.index()][c.index()]);
                }
            }
        }
    }

    /// Merged-across-shards summary of window `epoch` for the selected
    /// cells.
    #[must_use]
    pub fn window_summary(
        &self,
        epoch: u64,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
    ) -> HistogramSummary {
        let scratch = Histogram::new();
        self.merge_window_into(epoch, kind, class, &scratch);
        scratch.summary()
    }

    /// Merged-across-shards lifetime summary for the selected cells.
    #[must_use]
    pub fn overall_summary(
        &self,
        kind: Option<QueryKind>,
        class: Option<DegreeClass>,
    ) -> HistogramSummary {
        let scratch = Histogram::new();
        self.merge_overall_into(kind, class, &scratch);
        scratch.summary()
    }

    /// Every non-empty `(kind, class)` cell of window `epoch`, merged across
    /// shards, in slab-index order.
    #[must_use]
    pub fn window_cells(&self, epoch: u64) -> Vec<WindowCell> {
        let mut out = Vec::new();
        for kind in QueryKind::ALL {
            for class in DegreeClass::ALL {
                let summary = self.window_summary(epoch, Some(kind), Some(class));
                if summary.count > 0 {
                    out.push(WindowCell {
                        kind,
                        class,
                        summary,
                    });
                }
            }
        }
        out
    }

    /// Snapshot of window `epoch` as [`MetricsSnapshot`] window series: one
    /// [`WindowSeries`] per non-empty `(kind, class)` cell, named through
    /// [`window_series_name`] — the same one-definition naming the trace
    /// exporter uses, so every exporter agrees on `query.win.<kind>.<class>`.
    #[must_use]
    pub fn snapshot(&self, epoch: u64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for cell in self.window_cells(epoch) {
            snap.windows.push(WindowSeries {
                name: window_series_name(cell.kind, cell.class),
                kind: cell.kind.name(),
                class: cell.class.name(),
                window: epoch,
                summary: cell.summary,
            });
        }
        snap
    }
}

/// The canonical series name for one `(kind, class)` cell of the windowed
/// serving grid: `query.win.<kind>.<class>`. The *single* definition of
/// this naming — the Chrome-trace counter events
/// ([`crate::export::chrome_trace_with_counters`]), [`QuerySlabs::snapshot`],
/// and (through it) the exposition and JSON stats renderers all call here,
/// so the name cannot drift between exporters.
#[must_use]
pub fn window_series_name(kind: QueryKind, class: DegreeClass) -> String {
    format!("query.win.{}.{}", kind.name(), class.name())
}

/// One completed window of one `(kind, class)` cell from the process-global
/// slabs, as drained by [`drain_window_log`] and exported as a
/// `query.win.<kind>.<class>` trace counter event. Always compiled.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// The completed epoch.
    pub window: u64,
    /// Window open time (ns on the span clock; `0` for the first window,
    /// meaning "process tracing epoch").
    pub start_ns: u64,
    /// Window close (rotation) time, ns on the span clock.
    pub end_ns: u64,
    /// Query kind.
    pub kind: QueryKind,
    /// Degree class.
    pub class: DegreeClass,
    /// Merged-across-shards summary for the window.
    pub summary: HistogramSummary,
}

impl WindowRecord {
    /// The record's canonical `query.win.<kind>.<class>` series name
    /// (see [`window_series_name`]).
    #[must_use]
    pub fn series_name(&self) -> String {
        window_series_name(self.kind, self.class)
    }
}

/// Shards in the process-global slab set. Worker `tid`s map to
/// `1 + index`, reduced modulo this, and off-pool threads share shard 0 —
/// good enough isolation for the shim pool's widths while bounding memory.
#[cfg(feature = "enabled")]
const GLOBAL_SHARDS: usize = 8;
/// Retained epochs per cell in the process-global slab set.
#[cfg(feature = "enabled")]
const GLOBAL_WINDOWS: usize = 4;

#[cfg(feature = "enabled")]
static GLOBAL_SLABS: OnceLock<QuerySlabs> = OnceLock::new();

#[cfg(feature = "enabled")]
static WINDOW_LOG: Mutex<Vec<WindowRecord>> = Mutex::new(Vec::new());

/// Span-clock time of the last [`rotate_window`] (0 = none yet), so each
/// drained window knows when it opened.
#[cfg(feature = "enabled")]
static LAST_ROTATE_NS: AtomicU64 = AtomicU64::new(0);

/// Wall-clock length of the most recently completed window, nanoseconds
/// (0 = no window completed yet). Lets [`serving_snapshot`] report a
/// `query.win.duration_ns` gauge so scrapers can turn per-window counts
/// into qps without knowing the reporter's `--window-ms`.
#[cfg(feature = "enabled")]
static LAST_WINDOW_DUR_NS: AtomicU64 = AtomicU64::new(0);

#[cfg(feature = "enabled")]
fn global_slabs() -> &'static QuerySlabs {
    GLOBAL_SLABS.get_or_init(|| QuerySlabs::new(GLOBAL_SHARDS, GLOBAL_WINDOWS))
}

/// In-flight per-query timer from [`query_start`]. Zero-sized when the
/// `enabled` feature is off.
pub struct QueryStart {
    #[cfg(feature = "enabled")]
    armed: Option<u64>,
}

impl QueryStart {
    /// Completes the query: classifies `degree()` (only evaluated when a
    /// sample will actually be recorded) and records the elapsed
    /// nanoseconds into the global slabs.
    #[inline(always)]
    pub fn finish(self, kind: QueryKind, degree: impl FnOnce() -> usize) {
        #[cfg(feature = "enabled")]
        if let Some(start_ns) = self.armed {
            let ns = crate::span::now_ns().saturating_sub(start_ns);
            let shard = rayon::current_thread_index().map_or(0, |i| i + 1);
            global_slabs().record(shard, kind, DegreeClass::classify(degree()), ns);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (kind, degree);
        }
    }
}

/// Starts timing one query against the process-global slabs. Compiles to a
/// ZST without the `enabled` feature; one relaxed load when compiled in but
/// runtime recording is off.
#[inline(always)]
#[must_use]
pub fn query_start() -> QueryStart {
    #[cfg(feature = "enabled")]
    {
        QueryStart {
            armed: crate::is_enabled().then(crate::span::now_ns),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        QueryStart {}
    }
}

/// Rotates the process-global slabs (single-rotator) and appends one
/// [`WindowRecord`] per non-empty `(kind, class)` cell of the completed
/// window to the window log. Returns the completed epoch, or `None` when
/// nothing was ever recorded (or the feature is off).
pub fn rotate_window() -> Option<u64> {
    #[cfg(feature = "enabled")]
    {
        let slabs = GLOBAL_SLABS.get()?;
        let end_ns = crate::span::now_ns();
        let start_ns = LAST_ROTATE_NS.swap(end_ns, Relaxed);
        LAST_WINDOW_DUR_NS.store(end_ns.saturating_sub(start_ns), Relaxed);
        let completed = slabs.rotate();
        let cells = slabs.window_cells(completed);
        let mut log = WINDOW_LOG.lock().unwrap_or_else(PoisonError::into_inner);
        for cell in cells {
            log.push(WindowRecord {
                window: completed,
                start_ns,
                end_ns,
                kind: cell.kind,
                class: cell.class,
                summary: cell.summary,
            });
        }
        Some(completed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        None
    }
}

/// Snapshot of the process-global serving slabs for live introspection
/// (the admin plane's scrape path): the most recently *completed* window's
/// `(kind, class)` grid as [`WindowSeries`] entries (the live, still-filling
/// window when nothing has rotated yet), plus `query.win.epoch` (live
/// epoch) and `query.win.duration_ns` (length of the last completed window)
/// gauges. Read-only — never rotates, so it is safe to call from any
/// thread while a reporter owns rotation (a scrape that races a rotation
/// sees the one-sample boundary smear documented in the module header, no
/// worse). Empty when the feature is off or nothing was ever recorded.
#[must_use]
pub fn serving_snapshot() -> MetricsSnapshot {
    #[cfg(feature = "enabled")]
    {
        let Some(slabs) = GLOBAL_SLABS.get() else {
            return MetricsSnapshot::default();
        };
        let live = slabs.epoch();
        let shown = live.saturating_sub(1);
        let mut snap = slabs.snapshot(shown);
        snap.gauges
            .push(("query.win.epoch".to_string(), live as i64));
        snap.gauges.push((
            "query.win.duration_ns".to_string(),
            LAST_WINDOW_DUR_NS.load(Relaxed) as i64,
        ));
        snap
    }
    #[cfg(not(feature = "enabled"))]
    {
        MetricsSnapshot::default()
    }
}

/// Takes every [`WindowRecord`] accumulated by [`rotate_window`] since the
/// last drain, in rotation order. Empty without the `enabled` feature.
#[must_use]
pub fn drain_window_log() -> Vec<WindowRecord> {
    #[cfg(feature = "enabled")]
    {
        std::mem::take(&mut *WINDOW_LOG.lock().unwrap_or_else(PoisonError::into_inner))
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_classes_partition_the_degree_axis() {
        assert_eq!(DegreeClass::classify(0), DegreeClass::Low);
        assert_eq!(DegreeClass::classify(LOW_DEGREE_MAX - 1), DegreeClass::Low);
        assert_eq!(DegreeClass::classify(LOW_DEGREE_MAX), DegreeClass::Mid);
        assert_eq!(DegreeClass::classify(MID_DEGREE_MAX - 1), DegreeClass::Mid);
        assert_eq!(DegreeClass::classify(MID_DEGREE_MAX), DegreeClass::Hub);
        assert_eq!(DegreeClass::classify(usize::MAX), DegreeClass::Hub);
    }

    #[test]
    fn kind_and_class_indices_are_dense_and_stable() {
        for (i, k) in QueryKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, c) in DegreeClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let names: Vec<_> = QueryKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "neighbors",
                "edge_scan",
                "edge_binary",
                "split",
                "traversal"
            ]
        );
    }

    #[test]
    fn windowed_histogram_rotation_retains_and_expires() {
        let w = WindowedHistogram::new(3);
        w.record(10);
        w.record(20);
        assert_eq!(w.live().count(), 2);

        let completed = w.rotate();
        assert_eq!(completed, 0);
        assert_eq!(w.epoch(), 1);
        assert_eq!(w.window(0).unwrap().count(), 2);
        assert_eq!(w.live().count(), 0);

        w.record(30);
        w.rotate(); // completes epoch 1 (count 1)
        w.rotate(); // completes epoch 2 (empty); epoch 0 now expires
        assert!(w.window(0).is_none(), "epoch 0 fell out of the ring");
        assert_eq!(w.window(1).unwrap().count(), 1);
        assert_eq!(w.window(2).unwrap().count(), 0);
        assert!(w.window(4).is_none(), "future epoch");
    }

    #[test]
    fn windowed_histogram_retained_merge_is_sliding_aggregate() {
        let w = WindowedHistogram::new(2);
        w.record(100);
        w.rotate();
        w.record(200);
        let dst = Histogram::new();
        w.merge_retained_into(&dst);
        assert_eq!(dst.count(), 2);
        assert_eq!(dst.max(), 200);
    }

    #[test]
    fn slabs_merge_across_shards_matches_single_slab() {
        let sharded = QuerySlabs::new(4, 2);
        let single = QuerySlabs::new(1, 2);
        let samples = [
            (0usize, QueryKind::Neighbors, DegreeClass::Low, 50u64),
            (1, QueryKind::Neighbors, DegreeClass::Low, 5_000),
            (2, QueryKind::EdgeScan, DegreeClass::Hub, 900),
            (7, QueryKind::Neighbors, DegreeClass::Low, 70), // 7 % 4 == 3
        ];
        for &(shard, kind, class, ns) in &samples {
            sharded.record(shard, kind, class, ns);
            single.record(0, kind, class, ns);
        }
        let a = sharded.window_summary(0, Some(QueryKind::Neighbors), Some(DegreeClass::Low));
        let b = single.window_summary(0, Some(QueryKind::Neighbors), Some(DegreeClass::Low));
        assert_eq!(a, b);
        assert_eq!(a.count, 3);
        // Merging across every dimension sees all four samples.
        assert_eq!(sharded.window_summary(0, None, None).count, 4);
        assert_eq!(sharded.overall_summary(None, None).count, 4);
    }

    #[test]
    fn window_series_names_are_canonical_and_snapshot_uses_them() {
        assert_eq!(
            window_series_name(QueryKind::EdgeBinary, DegreeClass::Hub),
            "query.win.edge_binary.hub"
        );
        let slabs = QuerySlabs::new(2, 3);
        slabs.record(0, QueryKind::Neighbors, DegreeClass::Low, 100);
        slabs.record(1, QueryKind::SplitSearch, DegreeClass::Hub, 9_000);
        let completed = slabs.rotate();
        let snap = slabs.snapshot(completed);
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
        let names: Vec<_> = snap.windows.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            ["query.win.neighbors.low", "query.win.split.hub"],
            "slab-index order, one definition of the naming"
        );
        // Labels mirror the name's components without re-deriving them.
        assert_eq!(snap.windows[0].kind, "neighbors");
        assert_eq!(snap.windows[0].class, "low");
        assert_eq!(snap.windows[1].window, completed);
        assert_eq!(snap.windows[1].summary.count, 1);
        // An empty epoch snapshots to an empty series list.
        assert!(slabs.snapshot(slabs.epoch()).windows.is_empty());
    }

    #[test]
    fn slab_rotation_is_lockstep_and_window_cells_skip_empty() {
        let slabs = QuerySlabs::new(2, 3);
        slabs.record(0, QueryKind::Neighbors, DegreeClass::Low, 10);
        slabs.record(1, QueryKind::SplitSearch, DegreeClass::Hub, 10_000);
        let completed = slabs.rotate();
        assert_eq!(completed, 0);
        assert_eq!(slabs.epoch(), 1);
        let cells = slabs.window_cells(completed);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].kind, QueryKind::Neighbors);
        assert_eq!(cells[0].class, DegreeClass::Low);
        assert_eq!(cells[1].kind, QueryKind::SplitSearch);
        assert_eq!(cells[1].class, DegreeClass::Hub);
        // Overall view survives rotation.
        assert_eq!(slabs.overall_summary(None, None).count, 2);
        // The new live window is empty.
        assert!(slabs.window_cells(slabs.epoch()).is_empty());
    }
}
