//! Prometheus-style text exposition of a [`MetricsSnapshot`], plus the
//! small in-tree parser the `parcsr watch` client and the round-trip tests
//! consume.
//!
//! This module is pure string work over an already-taken snapshot, so it is
//! compiled unconditionally (like [`crate::analyze`]) — offline tools such
//! as `cargo xtask expo-check` validate scrapes without the `enabled`
//! feature. Only *taking* a live snapshot is feature-gated.
//!
//! # Format grammar
//!
//! The output is the Prometheus text format, restricted to the subset the
//! admin plane actually emits (documented in DESIGN.md):
//!
//! ```text
//! exposition  = *family "# EOF" LF
//! family      = help-line type-line *sample
//! help-line   = "# HELP " name " " escaped-text LF
//! type-line   = "# TYPE " name " " ("counter" / "gauge" / "summary") LF
//! sample      = name [labels] " " value LF
//! labels      = "{" label *("," label) "}"
//! label       = label-name "=" DQUOTE escaped-text DQUOTE
//! name        = [a-zA-Z_:][a-zA-Z0-9_:]*
//! label-name  = [a-zA-Z_][a-zA-Z0-9_]*
//! value       = decimal integer or float (as produced by Rust `Display`)
//! ```
//!
//! `escaped-text` escapes `\` as `\\`, `"` as `\"` (label values only), and
//! newline as `\n`. Metric names are the dotted registry names prefixed
//! with `parcsr_` and sanitized (every char outside `[a-zA-Z0-9_:]` becomes
//! `_`); when two dotted names collide after sanitization the later one
//! gets a `_2` / `_3` … suffix so exposition names stay unique. Histograms
//! render as `summary` families: `{quantile="0.5|0.95|0.99"}` samples plus
//! `_sum` / `_count` / `_max` series (the `_max` series is an in-house
//! extension — exact maxima matter for SLO work — and our parser and
//! `expo-check` treat it as part of the summary family). The windowed
//! kind×degree-class grid renders as one labeled family,
//! `parcsr_query_win_ns{kind="…",class="…"}`, rather than one family per
//! cell, so scrapers can aggregate across the grid. A constant
//! `parcsr_up 1` gauge makes the exposition non-empty even before any
//! metric records, and the final line is always `# EOF`.

use crate::json::Json;
use crate::metrics::{HistogramSummary, MetricsSnapshot};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The quantiles every summary family exposes, with their label values.
const QUANTILES: [&str; 3] = ["0.5", "0.95", "0.99"];

/// Derived series names a summary family claims alongside its base name.
const SUMMARY_SUFFIXES: [&str; 3] = ["_sum", "_count", "_max"];

/// Maps a dotted registry name (`query.win.split.hub`) to an exposition
/// metric name: `parcsr_` prefix, every char outside `[a-zA-Z0-9_:]`
/// replaced with `_`.
#[must_use]
pub fn sanitize_name(dotted: &str) -> String {
    let mut name = String::with_capacity(dotted.len() + 7);
    name.push_str("parcsr_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            name.push(c);
        } else {
            name.push('_');
        }
    }
    name
}

/// Escapes a label value for inclusion between double quotes: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
#[must_use]
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: `\` → `\\`, newline → `\n` (quotes are fine in HELP).
#[must_use]
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Claims a unique exposition name: if `base` (or any `base + suffix`
/// derived series) is already taken, tries `base_2`, `base_3`, … Inserts
/// the claimed name and its derived series into `used`.
fn claim(used: &mut BTreeSet<String>, base: &str, suffixes: &[&str]) -> String {
    let mut candidate = base.to_string();
    let mut n = 1usize;
    loop {
        let free = !used.contains(&candidate)
            && suffixes
                .iter()
                .all(|s| !used.contains(&format!("{candidate}{s}")));
        if free {
            used.insert(candidate.clone());
            for s in suffixes {
                used.insert(format!("{candidate}{s}"));
            }
            return candidate;
        }
        n += 1;
        candidate = format!("{base}_{n}");
    }
}

fn push_family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn push_summary_samples(out: &mut String, name: &str, label_prefix: &str, s: &HistogramSummary) {
    for (q, v) in QUANTILES.iter().zip([s.p50, s.p95, s.p99]) {
        if label_prefix.is_empty() {
            let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
        } else {
            let _ = writeln!(out, "{name}{{{label_prefix},quantile=\"{q}\"}} {v}");
        }
    }
    let labels = if label_prefix.is_empty() {
        String::new()
    } else {
        format!("{{{label_prefix}}}")
    };
    let _ = writeln!(out, "{name}_sum{labels} {}", s.sum);
    let _ = writeln!(out, "{name}_count{labels} {}", s.count);
    let _ = writeln!(out, "{name}_max{labels} {}", s.max);
}

/// Renders a snapshot in the text format described in the module docs.
/// Always emits `parcsr_up 1` and a trailing `# EOF` line, so the output
/// is non-empty and self-terminating even for an empty snapshot.
#[must_use]
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut used: BTreeSet<String> = BTreeSet::new();

    let up = claim(&mut used, "parcsr_up", &[]);
    push_family(
        &mut out,
        &up,
        "admin plane liveness (constant 1 while the process serves)",
        "gauge",
    );
    let _ = writeln!(out, "{up} 1");

    for (dotted, value) in &snap.counters {
        let name = claim(&mut used, &sanitize_name(dotted), &[]);
        push_family(&mut out, &name, dotted, "counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (dotted, value) in &snap.gauges {
        let name = claim(&mut used, &sanitize_name(dotted), &[]);
        push_family(&mut out, &name, dotted, "gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (dotted, summary) in &snap.histograms {
        let name = claim(&mut used, &sanitize_name(dotted), &SUMMARY_SUFFIXES);
        push_family(&mut out, &name, dotted, "summary");
        push_summary_samples(&mut out, &name, "", summary);
    }
    if !snap.windows.is_empty() {
        let name = claim(&mut used, "parcsr_query_win_ns", &SUMMARY_SUFFIXES);
        push_family(
            &mut out,
            &name,
            "windowed query latency (ns) by kind and degree class, last completed window",
            "summary",
        );
        for w in &snap.windows {
            let labels = format!(
                "kind=\"{}\",class=\"{}\"",
                escape_label(w.kind),
                escape_label(w.class)
            );
            push_summary_samples(&mut out, &name, &labels, &w.summary);
        }
    }

    out.push_str("# EOF\n");
    out
}

/// Renders the rotated-window history ring (the admin plane's `history`
/// endpoint) in the same text format as [`render`]. The document carries a
/// `parcsr_history_windows` gauge (always present, so the output is
/// non-empty even before any rotation), per-window `parcsr_history_qps` /
/// `parcsr_history_duration_ns` / `parcsr_history_queries` gauges labeled
/// by window ordinal, and one `parcsr_query_hist_ns{kind,class,window}`
/// summary family carrying every retained cell summary. The `window` label
/// keeps series unique across rotations, so a history scrape satisfies the
/// same `cargo xtask expo-check` rules as a `/metrics` scrape.
#[must_use]
pub fn render_history(windows: &[crate::serve::HistoryWindow]) -> String {
    let mut out = String::new();
    push_family(
        &mut out,
        "parcsr_history_windows",
        "rotated windows retained in the history ring",
        "gauge",
    );
    let _ = writeln!(out, "parcsr_history_windows {}", windows.len());
    if !windows.is_empty() {
        push_family(
            &mut out,
            "parcsr_history_qps",
            "completed queries per second in each retained window",
            "gauge",
        );
        for w in windows {
            let _ = writeln!(
                out,
                "parcsr_history_qps{{window=\"{}\"}} {}",
                w.window, w.qps
            );
        }
        push_family(
            &mut out,
            "parcsr_history_duration_ns",
            "wall-clock duration (ns) of each retained window",
            "gauge",
        );
        for w in windows {
            let _ = writeln!(
                out,
                "parcsr_history_duration_ns{{window=\"{}\"}} {}",
                w.window, w.dur_ns
            );
        }
        push_family(
            &mut out,
            "parcsr_history_queries",
            "queries completed in each retained window",
            "gauge",
        );
        for w in windows {
            let _ = writeln!(
                out,
                "parcsr_history_queries{{window=\"{}\"}} {}",
                w.window, w.queries
            );
        }
        if windows.iter().any(|w| !w.cells.is_empty()) {
            push_family(
                &mut out,
                "parcsr_query_hist_ns",
                "windowed query latency (ns) by kind and degree class, every retained window",
                "summary",
            );
            for w in windows {
                for cell in &w.cells {
                    let labels = format!(
                        "kind=\"{}\",class=\"{}\",window=\"{}\"",
                        escape_label(cell.kind.name()),
                        escape_label(cell.class.name()),
                        w.window
                    );
                    push_summary_samples(&mut out, "parcsr_query_hist_ns", &labels, &cell.summary);
                }
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// The metric type declared by a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonically non-decreasing value.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Quantile samples plus `_sum` / `_count` / `_max` series.
    Summary,
    /// Declared `untyped` (accepted on input; never emitted by [`render`]).
    Untyped,
}

impl FamilyKind {
    /// The keyword as it appears on the `# TYPE` line.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Summary => "summary",
            FamilyKind::Untyped => "untyped",
        }
    }
}

/// A `# TYPE` declaration with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDecl {
    /// Declared family name.
    pub name: String,
    /// Declared kind.
    pub kind: FamilyKind,
    /// 1-based line number of the declaration.
    pub line: usize,
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Series name (family name, possibly with a `_sum`-style suffix).
    pub name: String,
    /// Labels in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// 1-based line number of the sample.
    pub line: usize,
}

impl Sample {
    /// The value of the first label named `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# HELP` lines: `(name, unescaped text)` in source order.
    pub helps: Vec<(String, String)>,
    /// `# TYPE` declarations in source order.
    pub types: Vec<TypeDecl>,
    /// Samples in source order.
    pub samples: Vec<Sample>,
    /// Whether the terminating `# EOF` line was seen.
    pub saw_eof: bool,
}

fn check_name(name: &str, lineno: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first =
        matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':');
    let ok_rest = chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    if ok_first && ok_rest {
        Ok(())
    } else {
        Err(format!("line {lineno}: invalid metric name {name:?}"))
    }
}

fn unescape(text: &str, lineno: usize) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => {
                return Err(format!(
                    "line {lineno}: bad escape sequence \\{}",
                    other.map_or(String::from("<end>"), String::from)
                ))
            }
        }
    }
    Ok(out)
}

/// Splits off a leading metric/label name (returns `(name, rest)`).
fn take_name(s: &str) -> (&str, &str) {
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(s.len());
    s.split_at(end)
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let (name, mut rest) = take_name(line);
    check_name(name, lineno)?;

    let mut labels = Vec::new();
    if let Some(body) = rest.strip_prefix('{') {
        rest = body;
        loop {
            if let Some(after) = rest.strip_prefix('}') {
                rest = after;
                break;
            }
            let (lname, after) = take_name(rest);
            if lname.is_empty() || lname.contains(':') {
                return Err(format!("line {lineno}: invalid label name"));
            }
            rest = after
                .strip_prefix("=\"")
                .ok_or_else(|| format!("line {lineno}: label {lname:?} missing =\"value\""))?;

            // Scan the quoted value, honouring escapes.
            let mut value = String::new();
            let mut iter = rest.char_indices();
            let mut end = None;
            while let Some((pos, c)) = iter.next() {
                match c {
                    '"' => {
                        end = Some(pos + 1);
                        break;
                    }
                    '\\' => match iter.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        _ => return Err(format!("line {lineno}: bad escape in label value")),
                    },
                    c => value.push(c),
                }
            }
            let end = end.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
            rest = &rest[end..];
            labels.push((lname.to_string(), value));

            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with('}') {
                return Err(format!("line {lineno}: expected ',' or '}}' after label"));
            }
        }
    }

    let value_text = rest
        .strip_prefix(' ')
        .ok_or_else(|| format!("line {lineno}: expected ' ' before value"))?;
    if value_text.is_empty() || value_text.contains(' ') {
        return Err(format!("line {lineno}: expected exactly one value token"));
    }
    let value: f64 = value_text
        .parse()
        .map_err(|_| format!("line {lineno}: bad sample value {value_text:?}"))?;

    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
        line: lineno,
    })
}

/// Parses an exposition document produced by [`render`] (or scraped from
/// the admin endpoint). Strict about structure — blank lines, content after
/// `# EOF`, malformed escapes, and missing terminators are errors — because
/// the parser doubles as the validation core of `cargo xtask expo-check`.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut expo = Exposition::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if expo.saw_eof {
            return Err(format!("line {lineno}: content after # EOF"));
        }
        if line.is_empty() {
            return Err(format!("line {lineno}: blank line"));
        }
        if line == "# EOF" {
            expo.saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, text) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: HELP without text"))?;
            check_name(name, lineno)?;
            expo.helps.push((name.to_string(), unescape(text, lineno)?));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: TYPE without kind"))?;
            check_name(name, lineno)?;
            let kind = match kind {
                "counter" => FamilyKind::Counter,
                "gauge" => FamilyKind::Gauge,
                "summary" => FamilyKind::Summary,
                "untyped" => FamilyKind::Untyped,
                other => return Err(format!("line {lineno}: unknown TYPE kind {other:?}")),
            };
            expo.types.push(TypeDecl {
                name: name.to_string(),
                kind,
                line: lineno,
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        expo.samples.push(parse_sample(line, lineno)?);
    }
    if !expo.saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(expo)
}

// ---------------------------------------------------------------------------
// JSON stats document
// ---------------------------------------------------------------------------

fn json_u64(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn json_summary(s: &HistogramSummary) -> Json {
    Json::Object(vec![
        ("count".to_string(), json_u64(s.count)),
        ("sum".to_string(), json_u64(s.sum)),
        ("max".to_string(), json_u64(s.max)),
        ("p50".to_string(), json_u64(s.p50)),
        ("p95".to_string(), json_u64(s.p95)),
        ("p99".to_string(), json_u64(s.p99)),
    ])
}

/// Builds the JSON stats document (`parcsr.stats.v1`) the admin plane's
/// `stats` endpoint serves: same [`MetricsSnapshot`], dotted names kept
/// verbatim (no exposition sanitization).
#[must_use]
pub fn snapshot_json(snap: &MetricsSnapshot) -> Json {
    Json::Object(vec![
        (
            "schema".to_string(),
            Json::Str("parcsr.stats.v1".to_string()),
        ),
        (
            "counters".to_string(),
            Json::Object(
                snap.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), json_u64(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges".to_string(),
            Json::Object(
                snap.gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::Int(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Json::Object(
                snap.histograms
                    .iter()
                    .map(|(n, s)| (n.clone(), json_summary(s)))
                    .collect(),
            ),
        ),
        (
            "windows".to_string(),
            Json::Array(
                snap.windows
                    .iter()
                    .map(|w| {
                        Json::Object(vec![
                            ("series".to_string(), Json::Str(w.name.clone())),
                            ("kind".to_string(), Json::Str(w.kind.to_string())),
                            ("class".to_string(), Json::Str(w.class.to_string())),
                            ("window".to_string(), json_u64(w.window)),
                            ("latency_ns".to_string(), json_summary(&w.summary)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::WindowSeries;

    fn summary(count: u64, sum: u64, max: u64) -> HistogramSummary {
        HistogramSummary {
            count,
            sum,
            max,
            p50: max / 2,
            p95: max,
            p99: max,
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("queries.total".to_string(), 41));
        snap.gauges.push(("query.win.epoch".to_string(), 7));
        snap.histograms
            .push(("query.has_edge_ns".to_string(), summary(10, 1000, 400)));
        snap.windows.push(WindowSeries {
            name: "query.win.neighbors.hub".to_string(),
            kind: "neighbors",
            class: "hub",
            window: 6,
            summary: summary(5, 500, 200),
        });
        snap
    }

    #[test]
    fn render_emits_expected_series() {
        let text = render(&sample_snapshot());
        assert!(text.starts_with("# HELP parcsr_up "));
        assert!(text.contains("\nparcsr_up 1\n"));
        assert!(text.contains("# TYPE parcsr_queries_total counter\n"));
        assert!(text.contains("\nparcsr_queries_total 41\n"));
        assert!(text.contains("# TYPE parcsr_query_win_epoch gauge\n"));
        assert!(text.contains("\nparcsr_query_win_epoch 7\n"));
        assert!(text.contains("# TYPE parcsr_query_has_edge_ns summary\n"));
        assert!(text.contains("\nparcsr_query_has_edge_ns{quantile=\"0.99\"} 400\n"));
        assert!(text.contains("\nparcsr_query_has_edge_ns_sum 1000\n"));
        assert!(text.contains("\nparcsr_query_has_edge_ns_max 400\n"));
        assert!(text.contains(
            "\nparcsr_query_win_ns{kind=\"neighbors\",class=\"hub\",quantile=\"0.5\"} 100\n"
        ));
        assert!(text.contains("\nparcsr_query_win_ns_count{kind=\"neighbors\",class=\"hub\"} 5\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn sanitize_prefixes_and_replaces() {
        assert_eq!(
            sanitize_name("query.win.split.hub"),
            "parcsr_query_win_split_hub"
        );
        assert_eq!(sanitize_name("weird name-1"), "parcsr_weird_name_1");
        assert_eq!(sanitize_name(""), "parcsr_");
    }

    #[test]
    fn colliding_sanitized_names_get_disambiguated() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("a.b".to_string(), 1));
        snap.counters.push(("a_b".to_string(), 2));
        snap.counters.push(("a-b".to_string(), 3));
        let text = render(&snap);
        assert!(text.contains("\nparcsr_a_b 1\n"));
        assert!(text.contains("\nparcsr_a_b_2 2\n"));
        assert!(text.contains("\nparcsr_a_b_3 3\n"));
    }

    #[test]
    fn label_escaping_round_trips() {
        let raw = "he said \"hi\\there\"\nbye";
        let escaped = escape_label(raw);
        let line = format!("m{{k=\"{escaped}\"}} 1");
        let sample = parse_sample(&line, 1).unwrap();
        assert_eq!(sample.label("k"), Some(raw));
    }

    #[test]
    fn parse_accepts_render_output() {
        let snap = sample_snapshot();
        let expo = parse(&render(&snap)).unwrap();
        assert!(expo.saw_eof);
        // up + counter + gauge + 6 histogram series + 6 window series
        assert_eq!(expo.samples.len(), 1 + 1 + 1 + 6 + 6);
        // HELP and TYPE are paired per family, declared before their samples.
        assert_eq!(expo.helps.len(), expo.types.len());
        for s in &expo.samples {
            let family = expo
                .types
                .iter()
                .find(|t| {
                    t.name == s.name
                        || SUMMARY_SUFFIXES
                            .iter()
                            .any(|suf| s.name == format!("{}{suf}", t.name))
                })
                .expect("sample has a declared family");
            assert!(family.line < s.line, "TYPE declared before sample");
        }
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for (text, why) in [
            ("parcsr_up 1\n", "missing EOF"),
            ("# EOF\nparcsr_up 1\n", "content after EOF"),
            ("\n# EOF\n", "blank line"),
            (
                "# TYPE parcsr_up widget\nparcsr_up 1\n# EOF\n",
                "unknown kind",
            ),
            ("# HELP parcsr_up\n# EOF\n", "HELP without text"),
            ("9leading_digit 1\n# EOF\n", "bad name"),
            ("m{k=\"unterminated} 1\n# EOF\n", "unterminated label"),
            ("m{k=\"bad\\q\"} 1\n# EOF\n", "bad escape"),
            ("m 1 2\n# EOF\n", "trailing token"),
            ("m{k=\"v\"}1\n# EOF\n", "missing space"),
            ("m notanumber\n# EOF\n", "bad value"),
        ] {
            assert!(parse(text).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn parse_tolerates_free_comments_and_untyped() {
        let text = "# scraped at window 12\n# TYPE x untyped\nx 3\n# EOF\n";
        let expo = parse(text).unwrap();
        assert_eq!(expo.types[0].kind, FamilyKind::Untyped);
        assert_eq!(expo.samples[0].value, 3.0);
    }

    #[test]
    fn render_history_empty_ring_is_still_a_valid_document() {
        let text = render_history(&[]);
        assert!(text.contains("\nparcsr_history_windows 0\n"));
        let expo = parse(&text).unwrap();
        assert_eq!(expo.samples.len(), 1);
        assert!(expo.saw_eof);
    }

    #[test]
    fn render_history_labels_every_series_with_its_window() {
        use crate::serve::{DegreeClass, HistoryWindow, QueryKind, WindowCell};
        let window = |epoch: u64| HistoryWindow {
            window: epoch,
            end_ns: epoch * 1_000_000,
            dur_ns: 1_000_000,
            queries: 5,
            qps: 5_000.0,
            cells: vec![WindowCell {
                kind: QueryKind::Neighbors,
                class: DegreeClass::Hub,
                summary: summary(5, 500, 200),
            }],
        };
        let text = render_history(&[window(3), window(4)]);
        assert!(text.contains("\nparcsr_history_windows 2\n"));
        assert!(text.contains("\nparcsr_history_qps{window=\"3\"} 5000\n"));
        assert!(text.contains("\nparcsr_history_queries{window=\"4\"} 5\n"));
        assert!(text.contains(
            "\nparcsr_query_hist_ns{kind=\"neighbors\",class=\"hub\",window=\"3\",quantile=\"0.99\"} 200\n"
        ));
        assert!(text.contains(
            "\nparcsr_query_hist_ns_count{kind=\"neighbors\",class=\"hub\",window=\"4\"} 5\n"
        ));
        let expo = parse(&text).unwrap();
        // windows gauge + 3 gauges x 2 windows + 6 summary series x 2 cells.
        assert_eq!(expo.samples.len(), 1 + 6 + 12);
        // Each (name, labels) pair is unique thanks to the window label.
        let mut seen = BTreeSet::new();
        for s in &expo.samples {
            let mut key = format!("{}|", s.name);
            let mut labels = s.labels.clone();
            labels.sort();
            for (k, v) in labels {
                key.push_str(&format!("{k}={v},"));
            }
            assert!(seen.insert(key), "duplicate series in history exposition");
        }
    }

    #[test]
    fn stats_json_has_schema_and_sections() {
        let doc = snapshot_json(&sample_snapshot());
        let text = doc.pretty();
        assert!(text.contains("\"schema\": \"parcsr.stats.v1\""));
        assert!(text.contains("\"queries.total\": 41"));
        assert!(text.contains("\"query.win.neighbors.hub\""));
        assert!(text.contains("\"latency_ns\""));
        // Round-trips through the in-tree JSON parser.
        assert!(crate::json::Json::parse(&text).is_ok());
    }
}
