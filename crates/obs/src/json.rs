//! Minimal JSON tree: emission and parsing, no external dependencies.
//!
//! This started life as `crates/bench/src/json.rs` (the hand-rolled
//! replacement for `serde_json` in the offline workspace) and moved here so
//! the trace exporter, the bench harness, and `cargo xtask check-trace` all
//! share one implementation; `parcsr-bench` re-exports it. Emission is
//! byte-compatible with `serde_json::to_string_pretty` for the same layout
//! (2-space indent, insertion-ordered keys). Parsing is a small
//! recursive-descent reader used to validate the Chrome trace files this
//! workspace writes — full JSON, with a nesting-depth cap instead of
//! unbounded recursion.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Float (emitted via Rust's shortest-roundtrip formatting).
    Float(f64),
    /// String (escaped on emission).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-prints with 2-space indentation and a trailing newline-free
    /// final line, matching `serde_json::to_string_pretty`.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // serde_json always keeps a decimal point on floats.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must be a single value with only trailing
    /// whitespace after it). Returns a readable error message on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The elements if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value of field `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The string if this is a string value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts both `Int` and `Float`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer value (exact `Int` only).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deep documents we never produce; bound recursion instead of trusting the
/// input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest plain run in one step; escapes are rare.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Slicing at byte offsets is safe here: the loop above stops
                // only on ASCII bytes, which never split a UTF-8 sequence.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 in string at byte {start}"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let b = self
            .peek()
            .ok_or_else(|| "unterminated escape".to_string())?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let first = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: require a low surrogate escape next.
                    if !self.eat_literal("\\u") {
                        return Err(format!("lone high surrogate at byte {}", self.pos));
                    }
                    let second = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(format!("invalid low surrogate at byte {}", self.pos));
                    }
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    char::from_u32(code)
                } else {
                    char::from_u32(first)
                };
                out.push(c.ok_or_else(|| format!("invalid \\u escape at byte {}", self.pos))?);
            }
            _ => {
                return Err(format!(
                    "invalid escape '\\{}' at byte {}",
                    char::from(b),
                    self.pos
                ))
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated \\u escape".to_string())?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(format!("invalid hex digit at byte {}", self.pos)),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // ASCII-only range, always valid UTF-8.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = Json::Object(vec![
            ("name".into(), Json::Str("a\"b\\c\nd".into())),
            ("ts".into(), Json::Float(1.25)),
            ("n".into(), Json::Int(-7)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "xs".into(),
                Json::Array(vec![Json::Int(1), Json::Int(2), Json::Array(vec![])]),
            ),
            ("empty".into(), Json::Object(vec![])),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_accepts_compact_and_whitespace_forms() {
        let v = Json::parse(" {\"a\":[1,2.5,{\"b\":null}],\"c\":false} ").unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let items = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_i64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
        assert_eq!(
            Json::parse(r#""\u0041\uD83D\uDE00""#).unwrap(),
            Json::Str("A😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "[1] trailing",
            "nan",
            "--1",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(
            Json::parse("9007199254740993").unwrap().as_i64(),
            Some(9007199254740993)
        );
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-0.5").unwrap().as_f64(), Some(-0.5));
    }
}
