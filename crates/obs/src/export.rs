//! Exporters: Chrome trace JSON and the human-readable summary table.
//!
//! The trace writer emits the Chrome trace-event "JSON array format" — a
//! list of complete (`"ph": "X"`) events with microsecond timestamps — which
//! loads directly in `chrome://tracing` and Perfetto. One trace row per
//! worker: `tid 0` is the coordinator, `tid 1..=p` are the pool workers.
//! Span events are sorted by `(tid, ts, depth)`, so each thread's events
//! appear in chronological order with parents before the children they
//! enclose, and carry the typed [`SpanArgs`](crate::SpanArgs) payload (plus
//! `depth` and, when sampled, the `sample` period) in their `args` object.
//!
//! After the span events come counter (`"ph": "C"`) events: a
//! `mem.live_bytes` / `mem.stage_peak_bytes` series sampled at the end of
//! each top-level coordinator span (when memory accounting ran), a final
//! `mem.peak_bytes` point, and one terminal point per metric — counters,
//! gauges, and the query-latency histograms (`count`/`p50`/`p95`/`p99`) —
//! so latency and memory land in the same timeline as the spans. When
//! serving telemetry ran ([`crate::serve`]), each completed window adds a
//! `query.win.<kind>.<class>` point (args: `window`, `count`, `p50`, `p95`,
//! `p99`) at its rotation timestamp plus one `query.win.qps` point per
//! window with the summed query count and achieved qps.
//! `cargo xtask check-trace` validates both event kinds.
//!
//! The summary exporter renders per-stage and per-(stage, worker) wall-clock
//! aggregates, a memory section when accounting ran, and the metrics
//! snapshot (counters, gauges, histogram percentiles) as fixed-width text
//! for terminals and log files.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use crate::json::Json;
use crate::mem::MemSnapshot;
use crate::metrics::MetricsSnapshot;
use crate::serve::{ExemplarRecord, PhaseRecord, WindowRecord};
use crate::span::SpanRecord;

fn span_args_json(r: &SpanRecord) -> Json {
    let mut args = vec![("depth".into(), Json::Int(i64::from(r.depth)))];
    if r.sample > 1 {
        args.push(("sample".into(), Json::Int(i64::from(r.sample))));
    }
    if let Some(edges) = r.args.edges {
        args.push(("edges".into(), Json::Int(edges as i64)));
    }
    if let Some(chunk) = r.args.chunk {
        args.push(("chunk".into(), Json::Int(chunk as i64)));
    }
    if let Some(chunk_len) = r.args.chunk_len {
        args.push(("chunk_len".into(), Json::Int(chunk_len as i64)));
    }
    if let Some(bits) = r.args.bits {
        args.push(("bits".into(), Json::Int(i64::from(bits))));
    }
    if let Some(chunks) = r.args.chunks {
        args.push(("chunks".into(), Json::Int(chunks as i64)));
    }
    Json::Object(args)
}

/// Builds the Chrome trace-event JSON tree (array format) for `spans`:
/// complete (`"X"`) events only. See [`chrome_trace_with_counters`] for the
/// full export including counter events.
#[must_use]
pub fn chrome_trace_json(spans: &[SpanRecord]) -> Json {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|r| (r.tid, r.start_ns, r.depth));
    Json::Array(
        sorted
            .iter()
            .map(|r| {
                Json::Object(vec![
                    ("name".into(), Json::Str(r.name.to_string())),
                    ("cat".into(), Json::Str("parcsr".to_string())),
                    ("ph".into(), Json::Str("X".to_string())),
                    ("ts".into(), Json::Float(r.start_ns as f64 / 1_000.0)),
                    ("dur".into(), Json::Float(r.dur_ns as f64 / 1_000.0)),
                    ("pid".into(), Json::Int(1)),
                    ("tid".into(), Json::Int(i64::from(r.tid))),
                    ("args".into(), span_args_json(r)),
                ])
            })
            .collect(),
    )
}

fn counter_event(name: &str, ts_us: f64, args: Vec<(String, Json)>) -> Json {
    Json::Object(vec![
        ("name".into(), Json::Str(name.to_string())),
        ("cat".into(), Json::Str("parcsr".to_string())),
        ("ph".into(), Json::Str("C".to_string())),
        ("ts".into(), Json::Float(ts_us)),
        ("pid".into(), Json::Int(1)),
        ("tid".into(), Json::Int(0)),
        ("args".into(), Json::Object(args)),
    ])
}

/// Builds the full Chrome trace: the span events of [`chrome_trace_json`]
/// followed by counter (`"C"`) events for memory (a live-bytes series
/// sampled at each top-level coordinator span end, a per-stage peak series,
/// and the process peak) and for every metric in `metrics` — counters,
/// gauges, and the query-latency histograms. Pass `mem = None` when memory
/// accounting did not run; the memory series are then omitted. `windows`
/// (from [`crate::serve::drain_window_log`], rotation order) adds the
/// per-window serving-telemetry series described in the module docs;
/// `phases` ([`crate::serve::drain_phase_log`]) adds one
/// `query.phase.<phase>.<kind>.<class>` point per phase of each non-empty
/// cell (args: `window`, `count`, `sum`, `p50`, `p95`, `p99`), and
/// `exemplars` ([`crate::serve::drain_exemplar_log`]) one
/// `query.exemplar.<kind>.<class>` point per captured tail query (args:
/// `window`, `source`, `total`, `queue`, `exec`, `reply`). Pass `&[]` for
/// any log that has no entries.
#[must_use]
pub fn chrome_trace_with_counters(
    spans: &[SpanRecord],
    metrics: &MetricsSnapshot,
    mem: Option<MemSnapshot>,
    windows: &[WindowRecord],
    phases: &[PhaseRecord],
    exemplars: &[ExemplarRecord],
) -> Json {
    let Json::Array(mut events) = chrome_trace_json(spans) else {
        unreachable!("chrome_trace_json returns an array");
    };
    let end_us = spans.iter().map(SpanRecord::end_ns).max().unwrap_or(0) as f64 / 1_000.0;

    if let Some(snap) = mem {
        let mut tops: Vec<&SpanRecord> = spans
            .iter()
            .filter(|r| r.depth == 0 && r.tid == 0)
            .collect();
        tops.sort_by_key(|r| r.end_ns());
        for r in &tops {
            let ts = r.end_ns() as f64 / 1_000.0;
            events.push(counter_event(
                "mem.live_bytes",
                ts,
                vec![("live_bytes".into(), Json::Int(r.mem_live as i64))],
            ));
            events.push(counter_event(
                "mem.stage_peak_bytes",
                ts,
                vec![("peak_bytes".into(), Json::Int(r.mem_peak as i64))],
            ));
        }
        events.push(counter_event(
            "mem.peak_bytes",
            end_us,
            vec![("peak_bytes".into(), Json::Int(snap.peak_bytes as i64))],
        ));
    }

    for (name, v) in &metrics.counters {
        events.push(counter_event(
            name,
            end_us,
            vec![("value".into(), Json::Int(*v as i64))],
        ));
    }
    for (name, v) in &metrics.gauges {
        events.push(counter_event(
            name,
            end_us,
            vec![("value".into(), Json::Int(*v))],
        ));
    }
    for (name, h) in &metrics.histograms {
        events.push(counter_event(
            name,
            end_us,
            vec![
                ("count".into(), Json::Int(h.count as i64)),
                ("p50".into(), Json::Int(h.p50 as i64)),
                ("p95".into(), Json::Int(h.p95 as i64)),
                ("p99".into(), Json::Int(h.p99 as i64)),
            ],
        ));
    }

    // Serving-telemetry windows: one point per (window, kind, class) cell at
    // the window's rotation timestamp, then one qps point per window. The
    // log is in rotation order, so each counter name's series is
    // time-ordered (a property `check-trace` enforces).
    let mut i = 0;
    while i < windows.len() {
        let mut queries = 0u64;
        let mut j = i;
        while j < windows.len() && windows[j].window == windows[i].window {
            let w = &windows[j];
            let ts_us = w.end_ns as f64 / 1_000.0;
            events.push(counter_event(
                &w.series_name(),
                ts_us,
                vec![
                    ("window".into(), Json::Int(w.window as i64)),
                    ("count".into(), Json::Int(w.summary.count as i64)),
                    ("sum".into(), Json::Int(w.summary.sum as i64)),
                    ("p50".into(), Json::Int(w.summary.p50 as i64)),
                    ("p95".into(), Json::Int(w.summary.p95 as i64)),
                    ("p99".into(), Json::Int(w.summary.p99 as i64)),
                ],
            ));
            queries += w.summary.count;
            j += 1;
        }
        let w = &windows[i];
        let dur_ns = w.end_ns.saturating_sub(w.start_ns);
        let qps = if dur_ns > 0 {
            queries as f64 * 1e9 / dur_ns as f64
        } else {
            0.0
        };
        events.push(counter_event(
            "query.win.qps",
            w.end_ns as f64 / 1_000.0,
            vec![
                ("window".into(), Json::Int(w.window as i64)),
                ("queries".into(), Json::Int(queries as i64)),
                ("qps".into(), Json::Float(qps)),
            ],
        ));
        i = j;
    }

    // Per-phase window series: the queue/exec/reply decomposition of each
    // `query.win.*` cell, same rotation order, so each phase series is
    // time-ordered and its window ordinals are monotone. `check-trace`
    // additionally verifies that for each (window, cell) the three phase
    // sums stay within tolerance of the end-to-end `sum` above.
    for p in phases {
        events.push(counter_event(
            &p.series_name(),
            p.end_ns as f64 / 1_000.0,
            vec![
                ("window".into(), Json::Int(p.window as i64)),
                ("count".into(), Json::Int(p.summary.count as i64)),
                ("sum".into(), Json::Int(p.summary.sum as i64)),
                ("p50".into(), Json::Int(p.summary.p50 as i64)),
                ("p95".into(), Json::Int(p.summary.p95 as i64)),
                ("p99".into(), Json::Int(p.summary.p99 as i64)),
            ],
        ));
    }

    // Tail exemplars: one point per captured slow query at its window's
    // rotation timestamp, carrying the full phase breakdown.
    for e in exemplars {
        events.push(counter_event(
            &e.series_name(),
            e.end_ns as f64 / 1_000.0,
            vec![
                ("window".into(), Json::Int(e.window as i64)),
                ("source".into(), Json::Int(e.exemplar.source as i64)),
                ("total".into(), Json::Int(e.exemplar.ns.total_ns as i64)),
                ("queue".into(), Json::Int(e.exemplar.ns.queue_ns as i64)),
                ("exec".into(), Json::Int(e.exemplar.ns.exec_ns as i64)),
                ("reply".into(), Json::Int(e.exemplar.ns.reply_ns as i64)),
            ],
        ));
    }
    Json::Array(events)
}

/// Writes the full Chrome trace (spans + counter events, see
/// [`chrome_trace_with_counters`]) to `path`.
pub fn write_chrome_trace(
    path: &Path,
    spans: &[SpanRecord],
    metrics: &MetricsSnapshot,
    mem: Option<MemSnapshot>,
    windows: &[WindowRecord],
    phases: &[PhaseRecord],
    exemplars: &[ExemplarRecord],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(
        chrome_trace_with_counters(spans, metrics, mem, windows, phases, exemplars)
            .pretty()
            .as_bytes(),
    )?;
    file.write_all(b"\n")
}

/// Per-stage wall-clock aggregate used by the summary table and the bench
/// JSON breakdown. When spans were sampled (period `N > 1`), `calls` and
/// `total_ms` are scaled back up by each record's period — unbiased
/// estimates of the unsampled values — while `kept` counts the records
/// actually present.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAgg {
    /// Span name.
    pub name: &'static str,
    /// Estimated number of spans with this name (kept records weighted by
    /// their sampling period).
    pub calls: u64,
    /// Estimated summed duration, milliseconds (durations weighted by the
    /// sampling period).
    pub total_ms: f64,
    /// Number of records actually kept by the sampler (`== calls` when
    /// unsampled).
    pub kept: u64,
    /// Distinct worker ids that ran this stage.
    pub workers: usize,
    /// Largest per-span peak of live heap bytes observed in this stage; `0`
    /// when memory accounting was off.
    pub mem_peak_bytes: u64,
}

/// Aggregates spans by name, insertion-ordered by first appearance (which
/// for a pipeline run is pipeline order). Pass `top_level_only = true` to
/// keep only `depth == 0` coordinator spans — the per-stage breakdown whose
/// durations sum to the end-to-end construction time. Sampled records
/// (`sample = N`) each stand for `N` same-name spans on their thread and are
/// scaled accordingly (Horvitz–Thompson estimate), so stage shares stay
/// unbiased under sampling.
#[must_use]
pub fn aggregate_stages(spans: &[SpanRecord], top_level_only: bool) -> Vec<StageAgg> {
    struct Acc {
        calls: u64,
        total_ns: u64,
        kept: u64,
        mem_peak: u64,
        tids: Vec<u32>,
    }
    let mut order: Vec<&'static str> = Vec::new();
    let mut by_name: BTreeMap<&'static str, Acc> = BTreeMap::new();
    for r in spans {
        if top_level_only && !(r.depth == 0 && r.tid == 0) {
            continue;
        }
        let weight = u64::from(r.sample.max(1));
        let entry = by_name.entry(r.name).or_insert_with(|| {
            order.push(r.name);
            Acc {
                calls: 0,
                total_ns: 0,
                kept: 0,
                mem_peak: 0,
                tids: Vec::new(),
            }
        });
        entry.calls += weight;
        entry.total_ns += r.dur_ns * weight;
        entry.kept += 1;
        entry.mem_peak = entry.mem_peak.max(r.mem_peak);
        if !entry.tids.contains(&r.tid) {
            entry.tids.push(r.tid);
        }
    }
    order
        .iter()
        .map(|name| {
            let acc = &by_name[name];
            StageAgg {
                name,
                calls: acc.calls,
                total_ms: acc.total_ns as f64 / 1e6,
                kept: acc.kept,
                workers: acc.tids.len(),
                mem_peak_bytes: acc.mem_peak,
            }
        })
        .collect()
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Renders the per-stage / per-worker summary table, the memory section
/// (when accounting ran), and the metrics snapshot as fixed-width text.
/// Returns a note instead of tables when nothing was recorded.
#[must_use]
pub fn summary_table(
    spans: &[SpanRecord],
    metrics: &MetricsSnapshot,
    mem: Option<MemSnapshot>,
) -> String {
    let mut out = String::new();
    if spans.is_empty() && metrics.is_empty() && mem.is_none() {
        out.push_str("obs: nothing recorded");
        if !crate::compiled() {
            out.push_str(" (parcsr-obs compiled without the `enabled` feature)");
        }
        out.push('\n');
        return out;
    }

    if !spans.is_empty() {
        let sampled = spans.iter().any(|r| r.sample > 1);
        out.push_str("== stages (all spans, by name) ==\n");
        out.push_str(&format!(
            "{:<24} {:>8} {:>8} {:>12} {:>12} {:>8}\n",
            "stage", "calls", "kept", "total_ms", "mean_us", "workers"
        ));
        for agg in aggregate_stages(spans, false) {
            let mean_us = agg.total_ms * 1e3 / agg.calls as f64;
            out.push_str(&format!(
                "{:<24} {:>8} {:>8} {:>12.3} {:>12.2} {:>8}\n",
                agg.name, agg.calls, agg.kept, agg.total_ms, mean_us, agg.workers
            ));
        }
        if sampled {
            out.push_str("(sampled trace: calls and total_ms are scaled-up estimates)\n");
        }

        out.push_str("\n== per worker (stage x tid) ==\n");
        out.push_str(&format!(
            "{:<24} {:>6} {:>8} {:>12}\n",
            "stage", "tid", "calls", "total_ms"
        ));
        let mut per_worker: BTreeMap<(&'static str, u32), (u64, u64)> = BTreeMap::new();
        let mut order: Vec<(&'static str, u32)> = Vec::new();
        for r in spans {
            let weight = u64::from(r.sample.max(1));
            let key = (r.name, r.tid);
            let entry = per_worker.entry(key).or_insert_with(|| {
                order.push(key);
                (0, 0)
            });
            entry.0 += weight;
            entry.1 += r.dur_ns * weight;
        }
        for key in order {
            let (calls, total_ns) = per_worker[&key];
            out.push_str(&format!(
                "{:<24} {:>6} {:>8} {:>12.3}\n",
                key.0,
                key.1,
                calls,
                total_ns as f64 / 1e6
            ));
        }
    }

    if let Some(snap) = mem {
        out.push_str("\n== mem ==\n");
        out.push_str(&format!(
            "live {:>14}   peak {:>14}\n",
            fmt_bytes(snap.live_bytes),
            fmt_bytes(snap.peak_bytes)
        ));
        let tops = aggregate_stages(spans, true);
        if tops.iter().any(|a| a.mem_peak_bytes > 0) {
            out.push_str(&format!("{:<24} {:>14}\n", "stage", "peak_bytes"));
            for agg in &tops {
                out.push_str(&format!(
                    "{:<24} {:>14}\n",
                    agg.name,
                    fmt_bytes(agg.mem_peak_bytes)
                ));
            }
        }
    }

    if !metrics.is_empty() {
        out.push_str("\n== metrics ==\n");
        for (name, v) in &metrics.counters {
            out.push_str(&format!("counter   {name:<28} {v}\n"));
        }
        for (name, v) in &metrics.gauges {
            out.push_str(&format!("gauge     {name:<28} {v}\n"));
        }
        for (name, h) in &metrics.histograms {
            out.push_str(&format!(
                "histogram {name:<28} count={} p50={} p95={} p99={} max={}\n",
                h.count, h.p50, h.p95, h.p99, h.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanArgs;

    fn span(name: &'static str, start: u64, dur: u64, tid: u32, depth: u16) -> SpanRecord {
        SpanRecord {
            name,
            start_ns: start,
            dur_ns: dur,
            tid,
            depth,
            sample: 1,
            args: SpanArgs::new(),
            mem_peak: 0,
            mem_live: 0,
        }
    }

    #[test]
    fn chrome_trace_shape_and_order() {
        let spans = vec![
            span("b", 5_000, 1_000, 1, 0),
            span("a", 1_000, 8_000, 0, 0),
            span("a.child", 2_000, 2_000, 0, 1),
        ];
        let json = chrome_trace_json(&spans);
        let events = json.as_array().unwrap();
        assert_eq!(events.len(), 3);
        // Sorted by (tid, ts): both tid-0 events precede the tid-1 event.
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("a.child"));
        assert_eq!(events[2].get("name").unwrap().as_str(), Some("b"));
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("tid").unwrap().as_i64().is_some());
        }
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(8.0));
    }

    #[test]
    fn chrome_trace_emits_span_args_and_sample() {
        let mut packed = span("pack.chunk", 0, 1_000, 1, 0);
        packed.args = SpanArgs::new().edges(512).chunk(3).chunk_len(128).bits(7);
        packed.sample = 8;
        let plain = span("scan", 2_000, 1_000, 0, 0);
        let json = chrome_trace_json(&[packed, plain]);
        let events = json.as_array().unwrap();
        let args0 = events[0].get("args").unwrap();
        assert_eq!(args0.get("depth").unwrap().as_i64(), Some(0));
        assert!(args0.get("sample").is_none());
        assert!(args0.get("edges").is_none());
        let args1 = events[1].get("args").unwrap();
        assert_eq!(args1.get("sample").unwrap().as_i64(), Some(8));
        assert_eq!(args1.get("edges").unwrap().as_i64(), Some(512));
        assert_eq!(args1.get("chunk").unwrap().as_i64(), Some(3));
        assert_eq!(args1.get("chunk_len").unwrap().as_i64(), Some(128));
        assert_eq!(args1.get("bits").unwrap().as_i64(), Some(7));
    }

    #[test]
    fn chrome_trace_counter_events() {
        let mut a = span("degree", 0, 4_000, 0, 0);
        a.mem_live = 100;
        a.mem_peak = 900;
        let mut b = span("scan", 4_000, 2_000, 0, 0);
        b.mem_live = 200;
        b.mem_peak = 700;
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.push(("pool.installs".into(), 3));
        metrics.histograms.push((
            "query.has_edge_ns".into(),
            crate::metrics::HistogramSummary {
                count: 10,
                sum: 1000,
                max: 200,
                p50: 90,
                p95: 180,
                p99: 199,
            },
        ));
        let mem = Some(MemSnapshot {
            live_bytes: 150,
            peak_bytes: 1000,
        });
        let json = chrome_trace_with_counters(&[a, b], &metrics, mem, &[], &[], &[]);
        let events = json.as_array().unwrap();
        // 2 spans + 2×(live,stage_peak) + peak + counter + histogram = 9.
        assert_eq!(events.len(), 9);
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 7);
        // The live-bytes series is time-ordered and carries the span values.
        let live: Vec<_> = counters
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("mem.live_bytes"))
            .collect();
        assert_eq!(live.len(), 2);
        assert_eq!(
            live[0]
                .get("args")
                .unwrap()
                .get("live_bytes")
                .unwrap()
                .as_i64(),
            Some(100)
        );
        assert!(live[0].get("ts").unwrap().as_f64() <= live[1].get("ts").unwrap().as_f64());
        // Histogram point carries the percentiles.
        let hist = counters
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("query.has_edge_ns"))
            .unwrap();
        assert_eq!(
            hist.get("args").unwrap().get("p95").unwrap().as_i64(),
            Some(180)
        );
        // No mem snapshot → no mem series at all.
        let json = chrome_trace_with_counters(
            &[span("degree", 0, 1, 0, 0)],
            &metrics,
            None,
            &[],
            &[],
            &[],
        );
        let events = json.as_array().unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("name").unwrap().as_str() != Some("mem.live_bytes")));
    }

    #[test]
    fn chrome_trace_window_counter_events() {
        use crate::metrics::HistogramSummary;
        use crate::serve::{DegreeClass, QueryKind, WindowRecord};
        let sum = |count: u64, p99: u64| HistogramSummary {
            count,
            sum: count * 100,
            max: p99,
            p50: p99 / 2,
            p95: p99,
            p99,
        };
        let windows = vec![
            WindowRecord {
                window: 0,
                start_ns: 0,
                end_ns: 1_000_000_000,
                kind: QueryKind::Neighbors,
                class: DegreeClass::Low,
                summary: sum(300, 8_000),
            },
            WindowRecord {
                window: 0,
                start_ns: 0,
                end_ns: 1_000_000_000,
                kind: QueryKind::EdgeScan,
                class: DegreeClass::Hub,
                summary: sum(100, 90_000),
            },
            WindowRecord {
                window: 1,
                start_ns: 1_000_000_000,
                end_ns: 2_000_000_000,
                kind: QueryKind::Neighbors,
                class: DegreeClass::Low,
                summary: sum(500, 7_000),
            },
        ];
        let json = chrome_trace_with_counters(
            &[span("serve", 0, 2_000_000_000, 0, 0)],
            &MetricsSnapshot::default(),
            None,
            &windows,
            &[],
            &[],
        );
        let events = json.as_array().unwrap();
        // 1 span + 3 window cells + 2 qps points.
        assert_eq!(events.len(), 6);
        let cell = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("query.win.edge_scan.hub"))
            .unwrap();
        let args = cell.get("args").unwrap();
        assert_eq!(args.get("window").unwrap().as_i64(), Some(0));
        assert_eq!(args.get("count").unwrap().as_i64(), Some(100));
        assert_eq!(args.get("sum").unwrap().as_i64(), Some(100 * 100));
        assert_eq!(args.get("p99").unwrap().as_i64(), Some(90_000));
        let qps: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("query.win.qps"))
            .collect();
        assert_eq!(qps.len(), 2);
        // Window 0: 400 queries over 1 s → 400 qps.
        let a0 = qps[0].get("args").unwrap();
        assert_eq!(a0.get("queries").unwrap().as_i64(), Some(400));
        assert!((a0.get("qps").unwrap().as_f64().unwrap() - 400.0).abs() < 1e-6);
        // Same-name series is time-ordered; window arg is non-decreasing.
        assert!(qps[0].get("ts").unwrap().as_f64() <= qps[1].get("ts").unwrap().as_f64());
        assert_eq!(
            qps[1].get("args").unwrap().get("window").unwrap().as_i64(),
            Some(1)
        );
        // The repeated per-cell series is time-ordered too.
        let neigh: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("query.win.neighbors.low"))
            .collect();
        assert_eq!(neigh.len(), 2);
        assert!(neigh[0].get("ts").unwrap().as_f64() <= neigh[1].get("ts").unwrap().as_f64());
    }

    #[test]
    fn chrome_trace_phase_and_exemplar_events() {
        use crate::metrics::HistogramSummary;
        use crate::serve::{
            DegreeClass, Exemplar, ExemplarRecord, PhaseNanos, PhaseRecord, QueryKind, QueryPhase,
        };
        let summary = |count: u64, sum: u64| HistogramSummary {
            count,
            sum,
            max: sum,
            p50: sum / 2,
            p95: sum,
            p99: sum,
        };
        let phases: Vec<PhaseRecord> = [
            (QueryPhase::Queue, 4_000u64),
            (QueryPhase::Exec, 90_000),
            (QueryPhase::Reply, 1_000),
        ]
        .into_iter()
        .map(|(phase, sum)| PhaseRecord {
            window: 0,
            end_ns: 1_000_000_000,
            phase,
            kind: QueryKind::SplitSearch,
            class: DegreeClass::Hub,
            summary: summary(10, sum),
        })
        .collect();
        let exemplars = vec![ExemplarRecord {
            window: 0,
            end_ns: 1_000_000_000,
            exemplar: Exemplar {
                kind: QueryKind::SplitSearch,
                class: DegreeClass::Hub,
                source: 42,
                ns: PhaseNanos {
                    total_ns: 95_000,
                    queue_ns: 4_000,
                    exec_ns: 90_000,
                    reply_ns: 1_000,
                },
            },
        }];
        let json = chrome_trace_with_counters(
            &[span("serve", 0, 1_000_000_000, 0, 0)],
            &MetricsSnapshot::default(),
            None,
            &[],
            &phases,
            &exemplars,
        );
        let events = json.as_array().unwrap();
        // 1 span + 3 phase points + 1 exemplar point.
        assert_eq!(events.len(), 5);
        let queue = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("query.phase.queue.split.hub"))
            .unwrap();
        let args = queue.get("args").unwrap();
        assert_eq!(args.get("window").unwrap().as_i64(), Some(0));
        assert_eq!(args.get("count").unwrap().as_i64(), Some(10));
        assert_eq!(args.get("sum").unwrap().as_i64(), Some(4_000));
        let ex = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("query.exemplar.split.hub"))
            .unwrap();
        let args = ex.get("args").unwrap();
        assert_eq!(args.get("source").unwrap().as_i64(), Some(42));
        assert_eq!(args.get("total").unwrap().as_i64(), Some(95_000));
        assert_eq!(args.get("queue").unwrap().as_i64(), Some(4_000));
        assert_eq!(args.get("exec").unwrap().as_i64(), Some(90_000));
        assert_eq!(args.get("reply").unwrap().as_i64(), Some(1_000));
    }

    #[test]
    fn aggregate_top_level_keeps_coordinator_roots_only() {
        let spans = vec![
            span("degree", 0, 4_000_000, 0, 0),
            span("degree.chunk", 100, 1_000_000, 1, 0),
            span("scan", 4_000_000, 2_000_000, 0, 0),
            span("scan.fixup", 4_100_000, 500_000, 0, 1),
        ];
        let top = aggregate_stages(&spans, true);
        assert_eq!(
            top.iter().map(|a| a.name).collect::<Vec<_>>(),
            ["degree", "scan"]
        );
        assert!((top[0].total_ms - 4.0).abs() < 1e-9);
        let all = aggregate_stages(&spans, false);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn aggregate_scales_sampled_records_back_up() {
        // 3 kept records at period 4 stand for 12 calls; durations scale too.
        let mut spans = vec![
            span("bitpack.chunk", 0, 1_000, 1, 0),
            span("bitpack.chunk", 2_000, 3_000, 1, 0),
            span("bitpack.chunk", 6_000, 2_000, 2, 0),
        ];
        for s in &mut spans {
            s.sample = 4;
        }
        spans[0].mem_peak = 500;
        spans[2].mem_peak = 900;
        let agg = aggregate_stages(&spans, false);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].calls, 12);
        assert_eq!(agg[0].kept, 3);
        assert!((agg[0].total_ms - 0.024).abs() < 1e-9); // (1+3+2)µs × 4
        assert_eq!(agg[0].workers, 2);
        assert_eq!(agg[0].mem_peak_bytes, 900);
    }

    #[test]
    fn summary_table_renders_all_sections() {
        let mut s = span("degree", 0, 1_500_000, 0, 0);
        s.mem_peak = 4096;
        let spans = vec![s];
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.push(("pool.installs".into(), 3));
        let mem = Some(MemSnapshot {
            live_bytes: 2048,
            peak_bytes: 4096,
        });
        let text = summary_table(&spans, &metrics, mem);
        assert!(text.contains("degree"));
        assert!(text.contains("pool.installs"));
        assert!(text.contains("== per worker"));
        assert!(text.contains("== mem =="));
        assert!(text.contains("4.0 KiB"));
        let empty = summary_table(&[], &MetricsSnapshot::default(), None);
        assert!(empty.contains("nothing recorded"));
    }
}
