//! Exporters: Chrome trace JSON and the human-readable summary table.
//!
//! The trace writer emits the Chrome trace-event "JSON array format" — a
//! list of complete (`"ph": "X"`) events with microsecond timestamps — which
//! loads directly in `chrome://tracing` and Perfetto. One trace row per
//! worker: `tid 0` is the coordinator, `tid 1..=p` are the pool workers.
//! Events are sorted by `(tid, ts, depth)`, so each thread's events appear
//! in chronological order with parents before the children they enclose.
//!
//! The summary exporter renders per-stage and per-(stage, worker) wall-clock
//! aggregates plus the metrics snapshot (counters, gauges, histogram
//! percentiles) as fixed-width text for terminals and log files.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;

/// Builds the Chrome trace-event JSON tree (array format) for `spans`.
#[must_use]
pub fn chrome_trace_json(spans: &[SpanRecord]) -> Json {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|r| (r.tid, r.start_ns, r.depth));
    Json::Array(
        sorted
            .iter()
            .map(|r| {
                Json::Object(vec![
                    ("name".into(), Json::Str(r.name.to_string())),
                    ("cat".into(), Json::Str("parcsr".to_string())),
                    ("ph".into(), Json::Str("X".to_string())),
                    ("ts".into(), Json::Float(r.start_ns as f64 / 1_000.0)),
                    ("dur".into(), Json::Float(r.dur_ns as f64 / 1_000.0)),
                    ("pid".into(), Json::Int(1)),
                    ("tid".into(), Json::Int(i64::from(r.tid))),
                    (
                        "args".into(),
                        Json::Object(vec![("depth".into(), Json::Int(i64::from(r.depth)))]),
                    ),
                ])
            })
            .collect(),
    )
}

/// Writes `spans` as a Chrome trace file at `path` (see [`chrome_trace_json`]).
pub fn write_chrome_trace(path: &Path, spans: &[SpanRecord]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_json(spans).pretty().as_bytes())?;
    file.write_all(b"\n")
}

/// Per-stage wall-clock aggregate used by the summary table and the bench
/// JSON breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAgg {
    /// Span name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub calls: u64,
    /// Summed duration, milliseconds.
    pub total_ms: f64,
    /// Distinct worker ids that ran this stage.
    pub workers: usize,
}

/// Aggregates spans by name, insertion-ordered by first appearance (which
/// for a pipeline run is pipeline order). Pass `top_level_only = true` to
/// keep only `depth == 0` coordinator spans — the per-stage breakdown whose
/// durations sum to the end-to-end construction time.
#[must_use]
pub fn aggregate_stages(spans: &[SpanRecord], top_level_only: bool) -> Vec<StageAgg> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut by_name: BTreeMap<&'static str, (u64, u64, Vec<u32>)> = BTreeMap::new();
    for r in spans {
        if top_level_only && !(r.depth == 0 && r.tid == 0) {
            continue;
        }
        let entry = by_name.entry(r.name).or_insert_with(|| {
            order.push(r.name);
            (0, 0, Vec::new())
        });
        entry.0 += 1;
        entry.1 += r.dur_ns;
        if !entry.2.contains(&r.tid) {
            entry.2.push(r.tid);
        }
    }
    order
        .iter()
        .map(|name| {
            let (calls, total_ns, workers) = &by_name[name];
            StageAgg {
                name,
                calls: *calls,
                total_ms: *total_ns as f64 / 1e6,
                workers: workers.len(),
            }
        })
        .collect()
}

/// Renders the per-stage / per-worker summary table plus the metrics
/// snapshot as fixed-width text. Returns a note instead of tables when
/// nothing was recorded.
#[must_use]
pub fn summary_table(spans: &[SpanRecord], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if spans.is_empty() && metrics.is_empty() {
        out.push_str("obs: nothing recorded");
        if !crate::compiled() {
            out.push_str(" (parcsr-obs compiled without the `enabled` feature)");
        }
        out.push('\n');
        return out;
    }

    if !spans.is_empty() {
        out.push_str("== stages (all spans, by name) ==\n");
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>12} {:>8}\n",
            "stage", "calls", "total_ms", "mean_us", "workers"
        ));
        for agg in aggregate_stages(spans, false) {
            let mean_us = agg.total_ms * 1e3 / agg.calls as f64;
            out.push_str(&format!(
                "{:<24} {:>8} {:>12.3} {:>12.2} {:>8}\n",
                agg.name, agg.calls, agg.total_ms, mean_us, agg.workers
            ));
        }

        out.push_str("\n== per worker (stage x tid) ==\n");
        out.push_str(&format!(
            "{:<24} {:>6} {:>8} {:>12}\n",
            "stage", "tid", "calls", "total_ms"
        ));
        let mut per_worker: BTreeMap<(&'static str, u32), (u64, u64)> = BTreeMap::new();
        let mut order: Vec<(&'static str, u32)> = Vec::new();
        for r in spans {
            let key = (r.name, r.tid);
            let entry = per_worker.entry(key).or_insert_with(|| {
                order.push(key);
                (0, 0)
            });
            entry.0 += 1;
            entry.1 += r.dur_ns;
        }
        for key in order {
            let (calls, total_ns) = per_worker[&key];
            out.push_str(&format!(
                "{:<24} {:>6} {:>8} {:>12.3}\n",
                key.0,
                key.1,
                calls,
                total_ns as f64 / 1e6
            ));
        }
    }

    if !metrics.is_empty() {
        out.push_str("\n== metrics ==\n");
        for (name, v) in &metrics.counters {
            out.push_str(&format!("counter   {name:<28} {v}\n"));
        }
        for (name, v) in &metrics.gauges {
            out.push_str(&format!("gauge     {name:<28} {v}\n"));
        }
        for (name, h) in &metrics.histograms {
            out.push_str(&format!(
                "histogram {name:<28} count={} p50={} p95={} p99={} max={}\n",
                h.count, h.p50, h.p95, h.p99, h.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start: u64, dur: u64, tid: u32, depth: u16) -> SpanRecord {
        SpanRecord {
            name,
            start_ns: start,
            dur_ns: dur,
            tid,
            depth,
        }
    }

    #[test]
    fn chrome_trace_shape_and_order() {
        let spans = vec![
            span("b", 5_000, 1_000, 1, 0),
            span("a", 1_000, 8_000, 0, 0),
            span("a.child", 2_000, 2_000, 0, 1),
        ];
        let json = chrome_trace_json(&spans);
        let events = json.as_array().unwrap();
        assert_eq!(events.len(), 3);
        // Sorted by (tid, ts): both tid-0 events precede the tid-1 event.
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("a.child"));
        assert_eq!(events[2].get("name").unwrap().as_str(), Some("b"));
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("tid").unwrap().as_i64().is_some());
        }
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(8.0));
    }

    #[test]
    fn aggregate_top_level_keeps_coordinator_roots_only() {
        let spans = vec![
            span("degree", 0, 4_000_000, 0, 0),
            span("degree.chunk", 100, 1_000_000, 1, 0),
            span("scan", 4_000_000, 2_000_000, 0, 0),
            span("scan.fixup", 4_100_000, 500_000, 0, 1),
        ];
        let top = aggregate_stages(&spans, true);
        assert_eq!(
            top.iter().map(|a| a.name).collect::<Vec<_>>(),
            ["degree", "scan"]
        );
        assert!((top[0].total_ms - 4.0).abs() < 1e-9);
        let all = aggregate_stages(&spans, false);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn summary_table_renders_all_sections() {
        let spans = vec![span("degree", 0, 1_500_000, 0, 0)];
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.push(("pool.installs".into(), 3));
        let text = summary_table(&spans, &metrics);
        assert!(text.contains("degree"));
        assert!(text.contains("pool.installs"));
        assert!(text.contains("== per worker"));
        let empty = summary_table(&[], &MetricsSnapshot::default());
        assert!(empty.contains("nothing recorded"));
    }
}
