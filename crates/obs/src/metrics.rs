//! Metrics: atomic counters, gauges, and log-bucketed latency histograms.
//!
//! The value types ([`Counter`], [`Gauge`], [`Histogram`]) are always
//! compiled and fully functional — they are plain atomics, `const`
//! constructible, and unit-testable without any feature. What the `enabled`
//! cargo feature gates is the *facade* instrumented crates use: the
//! name-registry handles ([`counter`], [`gauge`], [`histogram`]) and the
//! [`time_histogram`] query timer become zero-sized no-ops when the feature
//! is off, so disabled builds pay nothing at the call sites.
//!
//! The histogram is HDR-style log-bucketed: values `< 32` get exact
//! single-value buckets; above that each power-of-two octave is split into
//! 32 linear sub-buckets, bounding the relative quantization error at
//! `1/32` (~3.1%) while covering the full `u64` range in 1920 buckets
//! (15 KiB of relaxed atomics per histogram).

// ORDERING: Relaxed throughout — counters, gauges, and histogram buckets
// are independent statistical cells, snapshotted after the workload's
// join; no reader depends on cross-cell ordering.
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// Monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            v: AtomicU64::new(0),
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.v.load(Relaxed)
    }

    /// Resets to zero (tests and per-run collection).
    pub fn reset(&self) {
        self.v.store(0, Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// Last-write-wins instantaneous value (e.g. current pool width).
#[derive(Debug)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            v: AtomicI64::new(0),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.v.load(Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Sub-bucket precision: each power-of-two octave splits into `2^SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 5;
/// Number of sub-buckets per octave (32).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB as usize;

/// Bucket index for `v`. Monotone in `v`; exact for `v < 32`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let offset = ((v >> (msb - SUB_BITS)) - SUB) as usize;
    group * SUB as usize + offset
}

/// Smallest value mapping to bucket `i` (the bucket's inclusive lower
/// boundary). Inverse of [`bucket_index`] on boundaries:
/// `bucket_index(bucket_floor(i)) == i`.
#[must_use]
pub fn bucket_floor(i: usize) -> u64 {
    let sub = SUB as usize;
    if i < sub {
        return i as u64;
    }
    let group = i / sub;
    let offset = (i % sub) as u64;
    (SUB + offset) << (group - 1)
}

/// Largest value mapping to bucket `i` (the bucket's inclusive upper
/// boundary); quantile queries report this, like HDR's
/// `highest_equivalent_value`.
#[must_use]
pub fn bucket_ceil(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_floor(i + 1) - 1
}

/// Log-bucketed latency histogram with percentile extraction. All updates
/// are relaxed atomics; concurrent recording is lossless (up to the `1/32`
/// bucket quantization).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            counts: [ZERO; NUM_BUCKETS],
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `v` (for latencies: nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Relaxed);
        self.total.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Relaxed)
    }

    /// Sum of recorded observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest recorded observation (exact, not quantized). Zero when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Value at quantile `q ∈ [0, 1]` — the upper boundary of the bucket
    /// holding the `ceil(q·count)`-th smallest observation, so the true
    /// value is ≤ the reported one and within `1/32` of it. Zero when empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Relaxed);
            if seen >= rank {
                return bucket_ceil(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds this histogram's contents into `dst`, bucket by bucket. Used to
    /// merge per-shard and per-window histograms into combined views
    /// (see [`crate::serve`]); merging preserves counts, sums, and the exact
    /// maximum, and percentiles of the merged histogram are computed from
    /// the summed buckets — identical to having recorded every observation
    /// into `dst` directly (bucketing is deterministic).
    pub fn merge_into(&self, dst: &Histogram) {
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Relaxed);
            if n > 0 {
                dst.counts[i].fetch_add(n, Relaxed);
            }
        }
        dst.total.fetch_add(self.total.load(Relaxed), Relaxed);
        dst.sum.fetch_add(self.sum.load(Relaxed), Relaxed);
        dst.max.fetch_max(self.max.load(Relaxed), Relaxed);
    }

    /// Resets all buckets (tests and per-run collection).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
        self.total.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.max.store(0, Relaxed);
    }

    /// Point-in-time summary with the percentiles the query path reports.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum(),
            max: self.max(),
            p50: self.value_at_quantile(0.50),
            p95: self.value_at_quantile(0.95),
            p99: self.value_at_quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Snapshot of one histogram (all values in the recorded unit, ns for the
/// query-path histograms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Exact maximum.
    pub max: u64,
    /// 50th percentile (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// Well-known histograms for the packed query path. Always present (they are
/// plain statics) but only written through the gated facade.
pub mod wellknown {
    use super::Histogram;

    /// Per-call latency of `BitPackedCsr::has_edge`, nanoseconds.
    pub static HAS_EDGE_NS: Histogram = Histogram::new();
    /// Per-row latency of a full `BitPackedCsr::row_iter` walk, nanoseconds.
    pub static ROW_ITER_NS: Histogram = Histogram::new();
}

#[cfg(feature = "enabled")]
mod registry {
    use super::{Counter, Gauge, Histogram};
    use std::sync::{Mutex, PoisonError};

    pub(super) enum Metric {
        Counter(&'static Counter),
        Gauge(&'static Gauge),
        Histogram(&'static Histogram),
    }

    static REGISTRY: Mutex<Vec<(&'static str, Metric)>> = Mutex::new(Vec::new());

    fn lookup<T>(
        name: &'static str,
        pick: impl Fn(&Metric) -> Option<&'static T>,
        make: impl FnOnce() -> Metric,
    ) -> &'static T {
        let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(found) = reg
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, m)| pick(m))
        {
            return found;
        }
        reg.push((name, make()));
        match pick(&reg[reg.len() - 1].1) {
            Some(found) => found,
            // Unreachable: `make` produced the variant `pick` accepts.
            None => unreachable!("freshly registered metric has the requested kind"),
        }
    }

    pub(super) fn counter(name: &'static str) -> &'static Counter {
        lookup(
            name,
            |m| match m {
                Metric::Counter(c) => Some(*c),
                _ => None,
            },
            || Metric::Counter(Box::leak(Box::new(Counter::new()))),
        )
    }

    pub(super) fn gauge(name: &'static str) -> &'static Gauge {
        lookup(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(*g),
                _ => None,
            },
            || Metric::Gauge(Box::leak(Box::new(Gauge::new()))),
        )
    }

    pub(super) fn histogram(name: &'static str) -> &'static Histogram {
        lookup(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(*h),
                _ => None,
            },
            || Metric::Histogram(Box::leak(Box::new(Histogram::new()))),
        )
    }

    pub(super) fn visit(
        mut on_counter: impl FnMut(&'static str, u64),
        mut on_gauge: impl FnMut(&'static str, i64),
        mut on_histogram: impl FnMut(&'static str, &'static Histogram),
    ) {
        let reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        for (name, metric) in reg.iter() {
            match metric {
                Metric::Counter(c) => on_counter(name, c.get()),
                Metric::Gauge(g) => on_gauge(name, g.get()),
                Metric::Histogram(h) => on_histogram(name, h),
            }
        }
    }
}

/// Handle to a named counter. Zero-sized no-op when the `enabled` feature is
/// off; otherwise a pointer into the global registry.
#[derive(Clone, Copy)]
pub struct CounterHandle {
    #[cfg(feature = "enabled")]
    inner: &'static Counter,
}

impl CounterHandle {
    /// Adds `n` if recording is on.
    #[inline(always)]
    pub fn add(self, n: u64) {
        #[cfg(feature = "enabled")]
        if crate::is_enabled() {
            self.inner.add(n);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds 1 if recording is on.
    #[inline(always)]
    pub fn inc(self) {
        self.add(1);
    }
}

/// Handle to a named gauge; see [`CounterHandle`].
#[derive(Clone, Copy)]
pub struct GaugeHandle {
    #[cfg(feature = "enabled")]
    inner: &'static Gauge,
}

impl GaugeHandle {
    /// Sets the value if recording is on.
    #[inline(always)]
    pub fn set(self, v: i64) {
        #[cfg(feature = "enabled")]
        if crate::is_enabled() {
            self.inner.set(v);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }
}

/// Handle to a named histogram; see [`CounterHandle`].
#[derive(Clone, Copy)]
pub struct HistogramHandle {
    #[cfg(feature = "enabled")]
    inner: &'static Histogram,
}

impl HistogramHandle {
    /// Records `v` if recording is on.
    #[inline(always)]
    pub fn record(self, v: u64) {
        #[cfg(feature = "enabled")]
        if crate::is_enabled() {
            self.inner.record(v);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }
}

/// Looks up (registering on first use) the counter named `name`. The lookup
/// takes a lock — cache the handle or call from cold paths only.
#[inline(always)]
#[must_use]
pub fn counter(name: &'static str) -> CounterHandle {
    #[cfg(feature = "enabled")]
    {
        CounterHandle {
            inner: registry::counter(name),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        CounterHandle {}
    }
}

/// Looks up (registering on first use) the gauge named `name`.
#[inline(always)]
#[must_use]
pub fn gauge(name: &'static str) -> GaugeHandle {
    #[cfg(feature = "enabled")]
    {
        GaugeHandle {
            inner: registry::gauge(name),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        GaugeHandle {}
    }
}

/// Looks up (registering on first use) the histogram named `name`.
#[inline(always)]
#[must_use]
pub fn histogram(name: &'static str) -> HistogramHandle {
    #[cfg(feature = "enabled")]
    {
        HistogramHandle {
            inner: registry::histogram(name),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        HistogramHandle {}
    }
}

/// RAII timer recording its elapsed nanoseconds into a histogram on drop.
/// Zero-sized when the `enabled` feature is off.
pub struct QueryTimer {
    #[cfg(feature = "enabled")]
    armed: Option<(u64, &'static Histogram)>,
}

impl Drop for QueryTimer {
    #[inline(always)]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((start_ns, hist)) = self.armed.take() {
            hist.record(crate::span::now_ns().saturating_sub(start_ns));
        }
    }
}

/// Starts timing into `hist` (typically one of [`wellknown`]'s statics);
/// the elapsed nanoseconds are recorded when the returned guard drops.
/// Compiles to nothing when the `enabled` feature is off; one relaxed load
/// when compiled in but runtime recording is off.
#[inline(always)]
pub fn time_histogram(hist: &'static Histogram) -> QueryTimer {
    #[cfg(feature = "enabled")]
    {
        QueryTimer {
            armed: crate::is_enabled().then(|| (crate::span::now_ns(), hist)),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = hist;
        QueryTimer {}
    }
}

/// One windowed serving cell in a [`MetricsSnapshot`]: a
/// `(kind, class)` latency summary for one completed window of the
/// serving slabs ([`crate::serve::QuerySlabs`]). The `name` is the
/// canonical `query.win.<kind>.<class>` series name produced by
/// [`crate::serve::window_series_name`] — the single definition shared by
/// the trace exporter, the exposition renderer, and the JSON stats
/// endpoint — while `kind`/`class` carry the label values so renderers
/// that prefer labeled families (Prometheus exposition) never re-derive
/// them by splitting the name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSeries {
    /// Canonical dotted series name (`query.win.<kind>.<class>`).
    pub name: String,
    /// Query-kind label value (e.g. `neighbors`).
    pub kind: &'static str,
    /// Degree-class label value (`low`/`mid`/`hub`).
    pub class: &'static str,
    /// The completed window ordinal the summary covers.
    pub window: u64,
    /// Merged-across-shards latency summary for the window, nanoseconds.
    pub summary: HistogramSummary,
}

/// Point-in-time snapshot of every registered metric plus the non-empty
/// [`wellknown`] histograms, and — when merged from
/// [`crate::serve`] — the windowed serving grid. Empty when the `enabled`
/// feature is off. This is the one merge path every exporter shares: the
/// Chrome-trace counter events, the Prometheus-style exposition, and the
/// admin JSON stats endpoint all consume this shape.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for each counter, registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for each gauge, registration order.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for each histogram, registration order.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Windowed serving cells (kind × degree-class), slab-index order.
    pub windows: Vec<WindowSeries>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.windows.is_empty()
    }

    /// Appends every entry of `other`, preserving both orders. Used to
    /// combine the registry snapshot with the serving-slab snapshot into
    /// the one document the admin plane serves.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.windows.extend(other.windows);
    }
}

/// Takes a [`MetricsSnapshot`] of the registry and the query-path
/// histograms.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    #[cfg_attr(not(feature = "enabled"), allow(unused_mut))]
    let mut snap = MetricsSnapshot::default();
    #[cfg(feature = "enabled")]
    {
        for (name, hist) in [
            ("query.has_edge_ns", &wellknown::HAS_EDGE_NS),
            ("query.row_iter_ns", &wellknown::ROW_ITER_NS),
        ] {
            if hist.count() > 0 {
                snap.histograms.push((name.to_string(), hist.summary()));
            }
        }
        registry::visit(
            |name, v| snap.counters.push((name.to_string(), v)),
            |name, v| snap.gauges.push((name.to_string(), v)),
            |name, h| snap.histograms.push((name.to_string(), h.summary())),
        );
    }
    snap
}
