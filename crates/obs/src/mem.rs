//! Memory accounting: a counting global allocator and per-stage peak
//! attribution.
//!
//! Bit packing exists precisely to trade CPU for bytes, so the size story
//! has to be measured next to the time story. This module provides a
//! [`CountingAlloc`] that wraps the system allocator and keeps three relaxed
//! atomics: **live** bytes (allocated minus freed), the process-wide
//! monotone **peak**, and a resettable **watermark** used by top-level
//! coordinator spans to attribute peak memory to individual pipeline stages
//! (scatter buffers, per-chunk bit buffers, …).
//!
//! # Cost model
//!
//! Nothing here is registered automatically. The bench and CLI *binaries*
//! register the allocator with `#[global_allocator]`, and only when built
//! with their `obs` feature — library users and default builds keep the
//! plain system allocator and pay zero. When registered, every
//! alloc/dealloc pays three relaxed atomic RMW operations (a few ns,
//! invisible next to the allocator call itself); whether the numbers are
//! *reported* is a separate runtime switch ([`set_enabled`], wired to
//! `--mem-metrics`). Accounting tracks requested layout sizes, not
//! allocator-internal overhead, so the numbers are deterministic across
//! machines for a deterministic run.
//!
//! # Mid-span sampling
//!
//! The process-wide watermark gives *top-level coordinator* spans exact
//! peaks, but nested and worker spans fall back to `max(live at entry, live
//! at exit)` — an allocate-and-free spike inside such a span is invisible.
//! [`set_sample_period`] (`--mem-sample N` on the binaries) arms an
//! allocation-count trigger: every `N`-th allocation *on each thread* folds
//! the current live size into a per-thread high-water mark. The span layer
//! brackets each nested/worker span with [`span_mark_save`] /
//! [`span_mark_restore`], so the span's recorded peak becomes
//! `max(entry, exit, sampled mark)` and intra-span spikes are caught to
//! within the sampling resolution. Marks propagate outward on restore, so
//! an inner span's spike also raises every enclosing span's peak. The
//! trigger only observes allocations made by the span's own thread —
//! cross-thread attribution stays the watermark's job. With `N = 0` (the
//! default) the trigger is disarmed and costs one relaxed load per
//! allocation.
//!
//! Without the `enabled` cargo feature the whole module collapses to inert
//! stubs and the allocator type does not exist, so the default workspace
//! build contains no `unsafe` from this file.

/// Point-in-time memory accounting snapshot (bytes of live heap and the
/// process-wide peak).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Currently live heap bytes (allocated minus freed).
    pub live_bytes: u64,
    /// Peak live heap bytes since process start (monotone).
    pub peak_bytes: u64,
}

/// Turns memory reporting on or off. A no-op unless the `enabled` feature
/// is compiled in; reporting additionally requires a registered
/// [`CountingAlloc`] to have observed an allocation.
pub fn set_enabled(on: bool) {
    // ORDERING: Relaxed — an independent on/off flag; readers need eventual
    // visibility only, and no other memory is published through it.
    #[cfg(feature = "enabled")]
    imp::MEM_ON.store(on, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// True when memory accounting is compiled in, switched on, and a counting
/// allocator is actually registered in this process.
#[inline(always)]
#[must_use]
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        // ORDERING: Relaxed — advisory flag and monotone peak counter;
        // eventual visibility is enough for a reporting gate.
        use std::sync::atomic::Ordering::Relaxed;
        imp::MEM_ON.load(Relaxed) && imp::PEAK.load(Relaxed) > 0
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Takes a [`MemSnapshot`], or `None` when accounting is not
/// [`active`] — callers render the memory section only when there is
/// real data behind it.
#[must_use]
pub fn snapshot() -> Option<MemSnapshot> {
    if !active() {
        return None;
    }
    Some(MemSnapshot {
        live_bytes: live_bytes(),
        peak_bytes: peak_bytes(),
    })
}

/// Currently live heap bytes (0 without the feature).
#[must_use]
pub fn live_bytes() -> u64 {
    #[cfg(feature = "enabled")]
    {
        // ORDERING: Relaxed — statistical counter read for reporting; no
        // memory is synchronized through it.
        imp::LIVE.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Peak live heap bytes since process start (0 without the feature).
#[must_use]
pub fn peak_bytes() -> u64 {
    #[cfg(feature = "enabled")]
    {
        // ORDERING: Relaxed — monotone peak gauge; advisory reporting only.
        imp::PEAK.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Peak live heap bytes since the last [`reset_watermark`] (0 without the
/// feature). The span layer reads this at the end of a top-level stage.
#[must_use]
pub fn watermark_bytes() -> u64 {
    #[cfg(feature = "enabled")]
    {
        // ORDERING: Relaxed — stage watermark gauge; advisory reporting only.
        imp::WATER.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Resets the stage watermark to the current live size. Called by the span
/// layer at the start of each top-level coordinator span; top-level stages
/// are sequential, so the store/`fetch_max` race with concurrent worker
/// allocations can misattribute at most one in-flight allocation.
pub fn reset_watermark() {
    #[cfg(feature = "enabled")]
    {
        // ORDERING: Relaxed — the store/fetch_max race with concurrent
        // worker allocations is tolerated (see the doc comment): at most one
        // in-flight allocation is misattributed.
        use std::sync::atomic::Ordering::Relaxed;
        imp::WATER.store(imp::LIVE.load(Relaxed), Relaxed);
    }
}

/// Sets the mid-span sampling period: every `n`-th allocation on a thread
/// updates that thread's high-water mark, so nested/worker spans report
/// true intra-span peaks instead of `max(entry, exit)`. `0` (the default)
/// disarms the trigger. Wired to `--mem-sample N` / `PARCSR_MEM_SAMPLE` on
/// the binaries; a no-op unless the `enabled` feature is compiled in.
pub fn set_sample_period(n: u64) {
    // ORDERING: Relaxed — sampling knob; eventual visibility is enough and
    // exact period boundaries do not matter.
    #[cfg(feature = "enabled")]
    imp::SAMPLE_EVERY.store(n, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = n;
}

/// The current mid-span sampling period (`0` = disarmed; always `0` without
/// the feature).
#[must_use]
pub fn sample_period() -> u64 {
    #[cfg(feature = "enabled")]
    {
        // ORDERING: Relaxed — sampling knob read; a racy period change only
        // shifts which allocation trips the next sample.
        imp::SAMPLE_EVERY.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Opens a sampled-peak bracket for a span on the current thread: resets the
/// thread's high-water mark to the current live size and returns the
/// previous mark for [`span_mark_restore`]. Called by the span layer at the
/// start of each kept nested/worker span when sampling is armed. Returns `0`
/// without the feature.
#[must_use]
pub fn span_mark_save() -> u64 {
    #[cfg(feature = "enabled")]
    {
        imp::mark_save()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Closes a sampled-peak bracket: returns the high-water mark observed since
/// the matching [`span_mark_save`] and folds it into `saved` (the enclosing
/// span's mark) so spikes propagate outward. Returns `0` without the
/// feature.
#[must_use]
pub fn span_mark_restore(saved: u64) -> u64 {
    #[cfg(feature = "enabled")]
    {
        imp::mark_restore(saved)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = saved;
        0
    }
}

/// Publishes the current accounting as `mem.live_bytes` / `mem.peak_bytes`
/// gauges so the metrics snapshot (and its exporters) carry the memory view
/// without a special case. A no-op when accounting is not [`active`].
pub fn publish_gauges() {
    if let Some(snap) = snapshot() {
        crate::metrics::gauge("mem.live_bytes").set(snap.live_bytes as i64);
        crate::metrics::gauge("mem.peak_bytes").set(snap.peak_bytes as i64);
    }
}

#[cfg(feature = "enabled")]
pub use imp::CountingAlloc;

#[cfg(feature = "enabled")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    // ORDERING: Relaxed throughout — allocator counters are per-cell
    // monotone or commutative updates (fetch_add/fetch_sub/fetch_max) read
    // for reporting; nothing synchronizes through them, and the watermark
    // race is documented at `reset_watermark`.
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

    /// Runtime reporting switch (`--mem-metrics`).
    pub(super) static MEM_ON: AtomicBool = AtomicBool::new(false);
    /// Live heap bytes: allocated minus freed, requested layout sizes.
    pub(super) static LIVE: AtomicU64 = AtomicU64::new(0);
    /// Monotone process-wide peak of `LIVE`. Non-zero iff a counting
    /// allocator is registered (every Rust program allocates at startup).
    pub(super) static PEAK: AtomicU64 = AtomicU64::new(0);
    /// Resettable per-stage watermark of `LIVE`.
    pub(super) static WATER: AtomicU64 = AtomicU64::new(0);
    /// Mid-span sampling period (`--mem-sample N`); `0` = disarmed.
    pub(super) static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        // Both cells are const-initialized: TLS touched from inside the
        // global allocator must not itself allocate.
        /// Allocation countdown driving the 1-in-N sampling trigger.
        static TICK: Cell<u64> = const { Cell::new(0) };
        /// Per-thread sampled high-water mark of `LIVE`, bracketed per span
        /// by `mark_save` / `mark_restore`.
        static MARK: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn mark_save() -> u64 {
        // try_with: TLS may already be torn down during thread exit.
        MARK.try_with(|m| m.replace(LIVE.load(Relaxed)))
            .unwrap_or(0)
    }

    pub(super) fn mark_restore(saved: u64) -> u64 {
        MARK.try_with(|m| {
            let observed = m.get();
            m.set(observed.max(saved));
            observed
        })
        .unwrap_or(0)
    }

    #[inline]
    fn on_alloc(bytes: u64) {
        let live = LIVE.fetch_add(bytes, Relaxed) + bytes;
        PEAK.fetch_max(live, Relaxed);
        WATER.fetch_max(live, Relaxed);
        let period = SAMPLE_EVERY.load(Relaxed);
        if period != 0 {
            // try_with (not with): this runs inside the allocator, and TLS
            // destructors may already have run on an exiting thread.
            let _ = TICK.try_with(|t| {
                let n = t.get() + 1;
                if n >= period {
                    t.set(0);
                    let _ = MARK.try_with(|m| m.set(m.get().max(live)));
                } else {
                    t.set(n);
                }
            });
        }
    }

    #[inline]
    fn on_dealloc(bytes: u64) {
        LIVE.fetch_sub(bytes, Relaxed);
    }

    /// A counting wrapper around the system allocator. Registered by the
    /// bench/CLI binaries (never by the library) via:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static A: parcsr_obs::mem::CountingAlloc = parcsr_obs::mem::CountingAlloc::new();
    /// ```
    #[derive(Debug)]
    pub struct CountingAlloc;

    impl CountingAlloc {
        /// The allocator value (`const` so it can sit in a `static`).
        #[must_use]
        pub const fn new() -> Self {
            CountingAlloc
        }
    }

    impl Default for CountingAlloc {
        fn default() -> Self {
            Self::new()
        }
    }

    // SAFETY: pure pass-through to `System`, which upholds the GlobalAlloc
    // contract; the accounting only touches atomics and never allocates, so
    // it cannot recurse or unwind into the allocator.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (non-zero
        // `layout`); forwarded unchanged to `System`.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // SAFETY: same layout obligations as our own caller's.
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        // SAFETY: caller passes a pointer previously returned by this
        // allocator with its original layout; forwarded unchanged.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: same pointer/layout obligations as our own caller's.
            unsafe { System.dealloc(ptr, layout) };
            on_dealloc(layout.size() as u64);
        }

        // SAFETY: caller upholds `GlobalAlloc::alloc_zeroed`'s contract;
        // forwarded unchanged.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            // SAFETY: same layout obligations as our own caller's.
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract (`ptr`
        // from this allocator, `layout` its current layout, `new_size`
        // valid); forwarded unchanged.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // SAFETY: same pointer/layout/size obligations as our caller's.
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }
}
