//! Span-based tracing: RAII guards, per-thread buffers, sampling, payloads,
//! merge at join.
//!
//! A span is opened with [`enter`] (or the [`span!`](crate::span!) macro) and
//! closed when its guard drops. Open spans nest: each thread tracks a depth
//! counter, and the recorded depth is the nesting level at entry. Completed
//! spans go into a plain per-thread `Vec` — no locking, no atomics on the
//! record path — and are flushed into a global sink when the thread exits.
//! The rayon shim runs workers as scoped threads that exit at the end of
//! every parallel region, so worker spans merge into the sink exactly at
//! join. The coordinator's own buffer is flushed by [`drain`].
//!
//! Worker attribution: the record's `tid` is `0` for the coordinator (any
//! thread outside a pool worker) and `1 + rayon::current_thread_index()` for
//! pool workers, so a trace at width `p` shows tids `0..=p`.
//!
//! # Sampling
//!
//! With a sampling period `N` set via [`set_trace_sample`](crate::set_trace_sample)
//! (`--trace-sample N` / `PARCSR_TRACE_SAMPLE` on the binaries), each thread
//! keeps one deterministic counter **per span name** and records only every
//! `N`-th same-name span — the 1st, `N+1`-th, `2N+1`-th, … — so `k` same-name
//! spans on one thread yield exactly `⌈k/N⌉` records. The first occurrence is
//! always kept, which means low-frequency top-level pipeline stages survive
//! any `N` while high-frequency per-chunk spans thin out. Every kept record
//! carries the period in [`SpanRecord::sample`] so
//! [`aggregate_stages`](crate::export::aggregate_stages) can scale durations
//! and call counts back up to unbiased estimates. Skipped spans still
//! maintain the nesting depth. [`drain`] resets the calling thread's
//! counters (worker threads reset naturally by exiting at region join), so
//! per-rep draining keeps sampling phase-aligned across repetitions.
//!
//! # Memory attribution
//!
//! When the counting allocator is registered and switched on (see
//! [`crate::mem`]), each recorded span carries the live heap bytes at its end
//! ([`SpanRecord::mem_live`]) and the peak live bytes observed during it
//! ([`SpanRecord::mem_peak`]). Top-level coordinator spans — the sequential
//! pipeline stages — use a resettable allocator watermark, so their peak is
//! exact even for allocations made by worker threads inside the stage;
//! nested and worker spans fall back to `max(live at entry, live at exit)`,
//! which misses intra-span spikes but costs nothing extra per allocation —
//! unless mid-span sampling is armed ([`crate::mem::set_sample_period`],
//! `--mem-sample N`), in which case every `N`-th allocation on the span's
//! thread feeds a per-thread high-water mark and the recorded peak becomes
//! `max(entry, exit, sampled mark)`, with inner spikes propagating to
//! enclosing spans.

use std::sync::OnceLock;
use std::time::Instant;

/// Typed span payload: the small fixed set of numeric arguments the pipeline
/// attaches to spans so traces explain *why* a stage was slow (how many
/// edges, which chunk, how wide the packed elements are) and not only that
/// it was. All fields are optional; an empty `SpanArgs` costs nothing to
/// carry. Exported as the Chrome-trace `args` object and validated by
/// `cargo xtask check-trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanArgs {
    /// Number of edges (or packed values) the span processed.
    pub edges: Option<u64>,
    /// Chunk index within the span's parallel region.
    pub chunk: Option<u64>,
    /// Chunk length in elements.
    pub chunk_len: Option<u64>,
    /// Bit width of the packed elements.
    pub bits: Option<u32>,
    /// Number of chunks a planner produced (planner spans, not per-chunk
    /// spans).
    pub chunks: Option<u64>,
}

impl SpanArgs {
    /// No arguments (same as `Default`, but `const`).
    #[must_use]
    pub const fn new() -> Self {
        SpanArgs {
            edges: None,
            chunk: None,
            chunk_len: None,
            bits: None,
            chunks: None,
        }
    }

    /// Sets the edge/value count.
    #[must_use]
    pub const fn edges(mut self, n: u64) -> Self {
        self.edges = Some(n);
        self
    }

    /// Sets the chunk index.
    #[must_use]
    pub const fn chunk(mut self, i: u64) -> Self {
        self.chunk = Some(i);
        self
    }

    /// Sets the chunk length.
    #[must_use]
    pub const fn chunk_len(mut self, n: u64) -> Self {
        self.chunk_len = Some(n);
        self
    }

    /// Sets the packed bit width.
    #[must_use]
    pub const fn bits(mut self, w: u32) -> Self {
        self.bits = Some(w);
        self
    }

    /// Sets the planner output size (number of chunks planned).
    #[must_use]
    pub const fn chunks(mut self, n: u64) -> Self {
        self.chunks = Some(n);
        self
    }

    /// True when no argument is set.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.edges.is_none()
            && self.chunk.is_none()
            && self.chunk_len.is_none()
            && self.bits.is_none()
            && self.chunks.is_none()
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name passed to [`enter`].
    pub name: &'static str,
    /// Start time in nanoseconds on the process-wide monotonic clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Worker id: `0` = coordinator, `1..=p` = pool worker `tid - 1`.
    pub tid: u32,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: u16,
    /// Sampling period in effect when this span was recorded (`1` =
    /// unsampled). A record with `sample = N` stands for `N` same-name spans
    /// on its thread; aggregation scales by this factor.
    pub sample: u32,
    /// Typed payload arguments (empty unless the call site attached any).
    pub args: SpanArgs,
    /// Peak live heap bytes observed during the span; `0` when memory
    /// accounting was off (see [`crate::mem`]).
    pub mem_peak: u64,
    /// Live heap bytes at span end; `0` when memory accounting was off.
    pub mem_live: u64,
}

impl SpanRecord {
    /// End time in nanoseconds (`start_ns + dur_ns`).
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Nanoseconds since the process-wide epoch (first use of the clock).
/// Monotonic: backed by [`Instant`].
#[must_use]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

#[cfg(feature = "enabled")]
mod collect {
    use super::{now_ns, SpanArgs, SpanRecord};
    use std::cell::RefCell;
    use std::sync::{Mutex, PoisonError};

    pub(super) struct ActiveSpan {
        name: &'static str,
        start_ns: u64,
        depth: u16,
        /// Sampling period at entry; `None` = this span was sampled out and
        /// only maintains the depth counter.
        sample: Option<u32>,
        args: SpanArgs,
        /// Memory accounting at entry; `None` when accounting was off.
        mem: Option<MemTrack>,
    }

    impl ActiveSpan {
        pub(super) fn set_args(&mut self, args: SpanArgs) {
            self.args = args;
        }
    }

    /// Per-span memory bookkeeping captured at entry.
    struct MemTrack {
        /// Live heap bytes when the span opened.
        live_at_begin: u64,
        /// True for top-level coordinator spans, which own the exact
        /// resettable watermark.
        top: bool,
        /// The enclosing span's sampled high-water mark, to restore at
        /// finish; `None` when mid-span sampling was disarmed at entry
        /// (or the span is top-level and uses the watermark instead).
        saved_mark: Option<u64>,
    }

    #[derive(Default)]
    struct ThreadBuf {
        records: Vec<SpanRecord>,
        depth: u16,
        /// Per-name occurrence counters driving the 1-in-N sampler. A small
        /// linear map: the workspace has a few dozen distinct stage names,
        /// and names are `&'static str`s compared by content.
        sample_counts: Vec<(&'static str, u64)>,
    }

    impl Drop for ThreadBuf {
        fn drop(&mut self) {
            // Thread exit: merge this worker's spans into the global sink.
            // For pool workers this runs at the end of the parallel region
            // (the shim scopes workers per region), i.e. at join.
            flush_records(std::mem::take(&mut self.records));
        }
    }

    thread_local! {
        static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::default());
    }

    static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

    fn flush_records(mut records: Vec<SpanRecord>) {
        if records.is_empty() {
            return;
        }
        SINK.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(&mut records);
    }

    pub(super) fn begin(name: &'static str, args: SpanArgs) -> Option<ActiveSpan> {
        if !crate::is_enabled() {
            return None;
        }
        let period = crate::trace_sample();
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            let depth = b.depth;
            b.depth = b.depth.saturating_add(1);
            let keep = if period <= 1 {
                true
            } else {
                let idx = match b.sample_counts.iter().position(|(n, _)| *n == name) {
                    Some(i) => i,
                    None => {
                        b.sample_counts.push((name, 0));
                        b.sample_counts.len() - 1
                    }
                };
                let count = &mut b.sample_counts[idx].1;
                let keep = *count % u64::from(period) == 0;
                *count += 1;
                keep
            };
            if !keep {
                return Some(ActiveSpan {
                    name,
                    start_ns: 0,
                    depth,
                    sample: None,
                    args,
                    mem: None,
                });
            }
            let mem = crate::mem::active().then(|| {
                // Top-level coordinator spans (the sequential pipeline
                // stages) own the resettable watermark; everything else uses
                // the endpoint approximation, sharpened by the sampled
                // per-thread mark when `--mem-sample` armed it.
                let top = depth == 0 && rayon::current_thread_index().is_none();
                if top {
                    crate::mem::reset_watermark();
                }
                let saved_mark =
                    (!top && crate::mem::sample_period() > 0).then(crate::mem::span_mark_save);
                MemTrack {
                    live_at_begin: crate::mem::live_bytes(),
                    top,
                    saved_mark,
                }
            });
            Some(ActiveSpan {
                name,
                start_ns: now_ns(),
                depth,
                sample: Some(period),
                args,
                mem,
            })
        })
    }

    pub(super) fn finish(active: ActiveSpan) {
        let end_ns = now_ns();
        let tid = rayon::current_thread_index().map_or(0, |i| i as u32 + 1);
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            b.depth = b.depth.saturating_sub(1);
            let Some(sample) = active.sample else {
                return; // sampled out: depth bookkeeping only
            };
            let (mem_peak, mem_live) = match active.mem {
                Some(track) => {
                    let live_now = crate::mem::live_bytes();
                    let sampled = track.saved_mark.map_or(0, crate::mem::span_mark_restore);
                    let peak = if track.top {
                        crate::mem::watermark_bytes()
                    } else {
                        track.live_at_begin.max(live_now).max(sampled)
                    };
                    (peak.max(track.live_at_begin), live_now)
                }
                None => (0, 0),
            };
            b.records.push(SpanRecord {
                name: active.name,
                start_ns: active.start_ns,
                dur_ns: end_ns.saturating_sub(active.start_ns),
                tid,
                depth: active.depth,
                sample,
                args: active.args,
                mem_peak,
                mem_live,
            });
        });
    }

    pub(super) fn drain() -> Vec<SpanRecord> {
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            let records = std::mem::take(&mut b.records);
            // Re-align the sampler: the next drained window starts its
            // 1-in-N phase fresh, so per-rep drains sample reproducibly.
            b.sample_counts.clear();
            flush_records(records);
        });
        let mut all = std::mem::take(&mut *SINK.lock().unwrap_or_else(PoisonError::into_inner));
        all.sort_by_key(|r| (r.tid, r.start_ns, r.depth));
        all
    }
}

/// RAII span guard; records a [`SpanRecord`] when dropped. Zero-sized when
/// the `enabled` feature is off.
pub struct Span {
    #[cfg(feature = "enabled")]
    active: Option<collect::ActiveSpan>,
}

impl Span {
    /// Replaces the span's payload after entry — for arguments only known
    /// once the span's work has run (a planner's output size, a computed
    /// width). A no-op when recording is off or this span was sampled out.
    pub fn set_args(&mut self, args: SpanArgs) {
        #[cfg(feature = "enabled")]
        if let Some(active) = self.active.as_mut() {
            active.set_args(args);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = args;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(active) = self.active.take() {
            collect::finish(active);
        }
    }
}

/// Opens a span named `name`; it closes when the returned guard drops.
/// `name` should be a short stable stage identifier (`"degree"`, `"scan"`,
/// `"scan.chunk"` …). Compiles to nothing when the `enabled` feature is off;
/// records nothing when runtime recording is off.
#[inline(always)]
pub fn enter(name: &'static str) -> Span {
    enter_with_args(name, SpanArgs::new())
}

/// Opens a span named `name` carrying the typed payload `args`; see
/// [`enter`]. The macro form `span!("name", edges = n, …)` builds the
/// [`SpanArgs`] for you.
#[inline(always)]
pub fn enter_with_args(name: &'static str, args: SpanArgs) -> Span {
    #[cfg(feature = "enabled")]
    {
        Span {
            active: collect::begin(name, args),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, args);
        Span {}
    }
}

/// Runs `f` under a span named `name` and returns its result. Convenient for
/// wrapping a sequential stage expression — and, unlike two bare
/// [`span!`](crate::span!) guards in one scope, two `with_span` calls in
/// sequence record two *sibling* spans, not nested ones.
#[inline(always)]
pub fn with_span<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = enter(name);
    f()
}

/// [`with_span`] with a typed payload; see [`enter_with_args`].
#[inline(always)]
pub fn with_span_args<R>(name: &'static str, args: SpanArgs, f: impl FnOnce() -> R) -> R {
    let _span = enter_with_args(name, args);
    f()
}

/// Takes all completed spans recorded so far (flushing the calling thread's
/// buffer first) and resets the sink plus the calling thread's sampling
/// counters. Spans still open, or buffered on other live threads, are not
/// included — drain after joining workers. Returns records sorted by
/// `(tid, start_ns, depth)`; always empty when the `enabled` feature is off.
#[must_use]
pub fn drain() -> Vec<SpanRecord> {
    #[cfg(feature = "enabled")]
    {
        collect::drain()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}
