//! Span-based tracing: RAII guards, per-thread buffers, merge at join.
//!
//! A span is opened with [`enter`] (or the [`span!`](crate::span!) macro) and
//! closed when its guard drops. Open spans nest: each thread tracks a depth
//! counter, and the recorded depth is the nesting level at entry. Completed
//! spans go into a plain per-thread `Vec` — no locking, no atomics on the
//! record path — and are flushed into a global sink when the thread exits.
//! The rayon shim runs workers as scoped threads that exit at the end of
//! every parallel region, so worker spans merge into the sink exactly at
//! join. The coordinator's own buffer is flushed by [`drain`].
//!
//! Worker attribution: the record's `tid` is `0` for the coordinator (any
//! thread outside a pool worker) and `1 + rayon::current_thread_index()` for
//! pool workers, so a trace at width `p` shows tids `0..=p`.

use std::sync::OnceLock;
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name passed to [`enter`].
    pub name: &'static str,
    /// Start time in nanoseconds on the process-wide monotonic clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Worker id: `0` = coordinator, `1..=p` = pool worker `tid - 1`.
    pub tid: u32,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: u16,
}

impl SpanRecord {
    /// End time in nanoseconds (`start_ns + dur_ns`).
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Nanoseconds since the process-wide epoch (first use of the clock).
/// Monotonic: backed by [`Instant`].
#[must_use]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

#[cfg(feature = "enabled")]
mod collect {
    use super::{now_ns, SpanRecord};
    use std::cell::RefCell;
    use std::sync::{Mutex, PoisonError};

    pub(super) struct ActiveSpan {
        name: &'static str,
        start_ns: u64,
        depth: u16,
    }

    #[derive(Default)]
    struct ThreadBuf {
        records: Vec<SpanRecord>,
        depth: u16,
    }

    impl Drop for ThreadBuf {
        fn drop(&mut self) {
            // Thread exit: merge this worker's spans into the global sink.
            // For pool workers this runs at the end of the parallel region
            // (the shim scopes workers per region), i.e. at join.
            flush_records(std::mem::take(&mut self.records));
        }
    }

    thread_local! {
        static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::default());
    }

    static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

    fn flush_records(mut records: Vec<SpanRecord>) {
        if records.is_empty() {
            return;
        }
        SINK.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(&mut records);
    }

    pub(super) fn begin(name: &'static str) -> Option<ActiveSpan> {
        if !crate::is_enabled() {
            return None;
        }
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            let depth = b.depth;
            b.depth = b.depth.saturating_add(1);
            Some(ActiveSpan {
                name,
                start_ns: now_ns(),
                depth,
            })
        })
    }

    pub(super) fn finish(active: ActiveSpan) {
        let end_ns = now_ns();
        let tid = rayon::current_thread_index().map_or(0, |i| i as u32 + 1);
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            b.depth = b.depth.saturating_sub(1);
            b.records.push(SpanRecord {
                name: active.name,
                start_ns: active.start_ns,
                dur_ns: end_ns.saturating_sub(active.start_ns),
                tid,
                depth: active.depth,
            });
        });
    }

    pub(super) fn drain() -> Vec<SpanRecord> {
        BUF.with(|b| {
            let records = std::mem::take(&mut b.borrow_mut().records);
            flush_records(records);
        });
        let mut all = std::mem::take(&mut *SINK.lock().unwrap_or_else(PoisonError::into_inner));
        all.sort_by_key(|r| (r.tid, r.start_ns, r.depth));
        all
    }
}

/// RAII span guard; records a [`SpanRecord`] when dropped. Zero-sized when
/// the `enabled` feature is off.
pub struct Span {
    #[cfg(feature = "enabled")]
    active: Option<collect::ActiveSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(active) = self.active.take() {
            collect::finish(active);
        }
    }
}

/// Opens a span named `name`; it closes when the returned guard drops.
/// `name` should be a short stable stage identifier (`"degree"`, `"scan"`,
/// `"scan.chunk"` …). Compiles to nothing when the `enabled` feature is off;
/// records nothing when runtime recording is off.
#[inline(always)]
pub fn enter(name: &'static str) -> Span {
    #[cfg(feature = "enabled")]
    {
        Span {
            active: collect::begin(name),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        Span {}
    }
}

/// Runs `f` under a span named `name` and returns its result. Convenient for
/// wrapping a sequential stage expression.
#[inline(always)]
pub fn with_span<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = enter(name);
    f()
}

/// Takes all completed spans recorded so far (flushing the calling thread's
/// buffer first) and resets the sink. Spans still open, or buffered on other
/// live threads, are not included — drain after joining workers. Returns
/// records sorted by `(tid, start_ns, depth)`; always empty when the
/// `enabled` feature is off.
#[must_use]
pub fn drain() -> Vec<SpanRecord> {
    #[cfg(feature = "enabled")]
    {
        collect::drain()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}
