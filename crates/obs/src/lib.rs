//! Zero-dependency observability for the parcsr pipeline (tracing, metrics,
//! per-stage profiling).
//!
//! The paper's whole evaluation is per-stage wall-clock attribution — degree
//! count, prefix sum, scatter, bit packing, TCSR merge — so the reproduction
//! needs to see *where* time goes at each processor count, not just whole
//! experiment durations. This crate provides that with no external
//! dependencies (the workspace builds offline):
//!
//! * **Spans** ([`span`]): RAII guards created with [`enter`] or the
//!   [`span!`] macro, timed on the monotonic clock, nestable, recorded into
//!   per-thread buffers that merge into a global sink when worker threads
//!   exit (the rayon shim's scoped workers exit at join, so merge-at-join is
//!   automatic). Each span carries the worker id it ran on.
//! * **Metrics** ([`metrics`]): atomic counters and gauges plus log-bucketed
//!   (HDR-style) latency histograms with p50/p95/p99 extraction, used on the
//!   query path (`has_edge`, `row_iter`).
//! * **Exporters** ([`export`]): a human-readable per-stage/per-thread
//!   summary table and a Chrome `chrome://tracing` JSON trace writer built
//!   on the hand-rolled [`json`] module (shared with `parcsr-bench`).
//!
//! # Cost model
//!
//! Instrumented crates call the entry points here unconditionally. Without
//! the `enabled` cargo feature every entry point is an empty
//! `#[inline(always)]` function and every guard is a zero-sized type, so
//! disabled builds — the default everywhere in the workspace — pay nothing,
//! on the hot query path or anywhere else. With the feature compiled in,
//! recording is additionally gated behind a runtime [`set_enabled`] switch
//! (one relaxed atomic load when off) so `--trace` / `--metrics` flags decide
//! whether anything is collected.

pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

pub use metrics::{counter, gauge, time_histogram, Counter, Gauge, Histogram, QueryTimer};
pub use span::{drain, enter, with_span, Span, SpanRecord};

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "enabled")]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation was compiled in (the `enabled` cargo feature).
#[must_use]
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

/// Turns runtime recording on or off. A no-op unless the `enabled` feature
/// was compiled in.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "enabled")]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// True when instrumentation is compiled in *and* runtime recording is on.
#[inline(always)]
#[must_use]
pub fn is_enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Opens a span that lasts until the end of the enclosing scope.
///
/// ```
/// fn stage() {
///     parcsr_obs::span!("degree_count");
///     // ... work timed under "degree_count" ...
/// }
/// ```
///
/// Two `span!` invocations in the same scope *nest* (both guards live to the
/// scope's end); for sequential stages use nested blocks or [`with_span`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _parcsr_obs_span_guard = $crate::enter($name);
    };
}
