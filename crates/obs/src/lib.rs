#![deny(unsafe_op_in_unsafe_fn)]

//! Zero-dependency observability for the parcsr pipeline (tracing, metrics,
//! memory accounting, per-stage profiling).
//!
//! The paper's whole evaluation is per-stage wall-clock attribution — degree
//! count, prefix sum, scatter, bit packing, TCSR merge — so the reproduction
//! needs to see *where* time goes at each processor count, not just whole
//! experiment durations. This crate provides that with no external
//! dependencies (the workspace builds offline):
//!
//! * **Spans** ([`span`]): RAII guards created with [`enter`] /
//!   [`enter_with_args`] or the [`span!`] macro, timed on the monotonic
//!   clock, nestable, carrying typed payloads ([`SpanArgs`]: edge counts,
//!   chunk index/size, bit width), recorded into per-thread buffers that
//!   merge into a global sink when worker threads exit (the rayon shim's
//!   scoped workers exit at join, so merge-at-join is automatic). Each span
//!   carries the worker id it ran on. A deterministic per-thread 1-in-N
//!   sampler ([`set_trace_sample`]) keeps tracing affordable in long runs;
//!   kept records carry the period so aggregation stays unbiased.
//! * **Metrics** ([`metrics`]): atomic counters and gauges plus log-bucketed
//!   (HDR-style) latency histograms with p50/p95/p99 extraction, used on the
//!   query path (`has_edge`, `row_iter`).
//! * **Memory** ([`mem`]): a counting global allocator (registered only by
//!   the bench/CLI binaries) tracking live/peak heap bytes, with per-stage
//!   peak attribution threaded through the span records.
//! * **Serving telemetry** ([`serve`]): sharded per-worker latency slabs
//!   and sliding-window histograms ([`serve::WindowedHistogram`]) with
//!   per-query accounting by query kind and degree class — the qps /
//!   percentile-per-window shape a query server reports against an SLO,
//!   fed by the instrumented batch entry points in `parcsr` and
//!   `parcsr-algos` and consumed by the `queries_closed_loop` load driver.
//! * **Exporters** ([`export`]): a human-readable per-stage/per-thread
//!   summary table (with a memory section) and a Chrome `chrome://tracing`
//!   JSON trace writer — span events with `args` payloads plus counter
//!   events for memory and the query-latency histograms — built on the
//!   hand-rolled [`json`] module (shared with `parcsr-bench`).
//! * **Analysis** ([`analyze`]): pure arithmetic over collected spans —
//!   per-stage worker-utilization/critical-path metrics and chunk-imbalance
//!   statistics. Compiled unconditionally (it holds no recording state), so
//!   offline tools like `cargo xtask trace-analyze` use it without the
//!   `enabled` feature.
//!
//! # Cost model
//!
//! Instrumented crates call the entry points here unconditionally. Without
//! the `enabled` cargo feature every entry point is an empty
//! `#[inline(always)]` function and every guard is a zero-sized type, so
//! disabled builds — the default everywhere in the workspace — pay nothing,
//! on the hot query path or anywhere else. With the feature compiled in,
//! recording is additionally gated behind a runtime [`set_enabled`] switch
//! (one relaxed atomic load when off) so `--trace` / `--metrics` /
//! `--mem-metrics` flags decide whether anything is collected, and the
//! [`set_trace_sample`] period bounds the recording cost of what is.

pub mod analyze;
pub mod expo;
pub mod export;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod serve;
pub mod span;

pub use metrics::{counter, gauge, time_histogram, Counter, Gauge, Histogram, QueryTimer};
pub use span::{
    drain, enter, enter_with_args, with_span, with_span_args, Span, SpanArgs, SpanRecord,
};

#[cfg(feature = "enabled")]
// ORDERING: Relaxed throughout — ENABLED and TRACE_SAMPLE are independent
// on/off knobs; readers need eventual visibility only, and no other
// memory is published through them.
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering::Relaxed};

#[cfg(feature = "enabled")]
static ENABLED: AtomicBool = AtomicBool::new(false);

#[cfg(feature = "enabled")]
static TRACE_SAMPLE: AtomicU32 = AtomicU32::new(1);

/// Whether instrumentation was compiled in (the `enabled` cargo feature).
#[must_use]
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

/// The full live-metrics view in one document: the registry snapshot
/// ([`metrics::snapshot`] — counters, gauges, histograms) merged with the
/// windowed serving grid ([`serve::serving_snapshot`]). This is the one
/// merge path the admin plane's exposition and JSON stats endpoints
/// consume; empty when the `enabled` feature is off.
#[must_use]
pub fn snapshot_all() -> metrics::MetricsSnapshot {
    let mut snap = metrics::snapshot();
    snap.merge(serve::serving_snapshot());
    snap
}

/// Turns runtime recording on or off. A no-op unless the `enabled` feature
/// was compiled in.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "enabled")]
    ENABLED.store(on, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// True when instrumentation is compiled in *and* runtime recording is on.
#[inline(always)]
#[must_use]
pub fn is_enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        ENABLED.load(Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Sets the span sampling period: each thread records every `n`-th
/// same-name span (deterministically, first occurrence always kept) and
/// tags records with the period so aggregation can scale back up. `n <= 1`
/// records everything (the default). A no-op unless the `enabled` feature
/// was compiled in. Wired to `--trace-sample N` / `PARCSR_TRACE_SAMPLE` on
/// the binaries.
pub fn set_trace_sample(n: u32) {
    #[cfg(feature = "enabled")]
    TRACE_SAMPLE.store(n.max(1), Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = n;
}

/// The current span sampling period (`1` = record everything).
#[inline(always)]
#[must_use]
pub fn trace_sample() -> u32 {
    #[cfg(feature = "enabled")]
    {
        TRACE_SAMPLE.load(Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        1
    }
}

/// Opens a span that lasts until the end of the enclosing scope, or runs a
/// block under a span.
///
/// Guard form — the span closes at the end of the enclosing scope:
///
/// ```
/// fn stage() {
///     parcsr_obs::span!("degree_count");
///     // ... work timed under "degree_count" ...
/// }
/// ```
///
/// **Nesting footgun:** two guard-form `span!` invocations in the same scope
/// *nest* (both guards live to the scope's end) — the second records at
/// depth 1, not as a sibling. For sequential stages use the block form,
/// which scopes each span to its block and composes sequentially:
///
/// ```
/// let a = parcsr_obs::span!("stage_a", { 40 });
/// let b = parcsr_obs::span!("stage_b", { a + 2 }); // sibling, not nested
/// assert_eq!(b, 42);
/// ```
///
/// (or [`with_span`] for an expression). Either form takes trailing
/// `key = value` payload arguments from the [`SpanArgs`] field set:
///
/// ```
/// let edge_count = 10u64;
/// parcsr_obs::span!("pack", edges = edge_count, bits = 7u32);
/// parcsr_obs::span!("pack.chunk", chunk = 0u64, { /* work */ });
/// ```
#[macro_export]
macro_rules! span {
    // Block form: span scoped to the block, usable in statement position —
    // sequential invocations record siblings. `?`/`return`/`break` inside
    // the block behave as in any ordinary block.
    ($name:expr, $body:block) => {{
        let _parcsr_obs_span_guard = $crate::enter($name);
        $body
    }};
    ($name:expr, $($key:ident = $value:expr),+ , $body:block) => {{
        let _parcsr_obs_span_guard =
            $crate::enter_with_args($name, $crate::SpanArgs::new()$(.$key($value))+);
        $body
    }};
    // Guard form: span lasts to the end of the enclosing scope.
    ($name:expr) => {
        let _parcsr_obs_span_guard = $crate::enter($name);
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        let _parcsr_obs_span_guard =
            $crate::enter_with_args($name, $crate::SpanArgs::new()$(.$key($value))+);
    };
}
