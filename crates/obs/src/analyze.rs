//! Trace analytics: worker-utilization timelines, critical-path ratios, and
//! chunk-imbalance statistics computed from drained span records.
//!
//! Recording spans (PR 3–4) answers *what ran when*; this module answers the
//! question the paper's parallel kernels actually care about: **was anyone
//! idle?** Hub rows and uneven frame sizes leave chunk boundaries imbalanced
//! — one worker straggles while the rest wait at the join — and that shows
//! up as a utilization gap long before it shows up in wall-clock noise.
//!
//! # Model
//!
//! A **stage instance** is a top-level coordinator span (`tid == 0`,
//! `depth == 0`): one execution of `degree`, `scan`, `pack`, … Within the
//! instance's `[start, end)` interval the analyzer attributes **work spans**:
//! the outermost spans of each thread fully contained in the interval
//! (worker spans at depth 0, coordinator sub-spans at depth 1 — deeper
//! nesting would double-count time already attributed to its parent). Each
//! span's duration is scaled by its sampling period (Horvitz–Thompson, as in
//! [`aggregate_stages`](crate::export::aggregate_stages)) so sampled traces
//! produce unbiased busy-time estimates.
//!
//! Per instance:
//!
//! * **lanes** — threads that recorded at least one work span. Workers that
//!   recorded nothing do not count as idle lanes (the trace cannot
//!   distinguish "idle" from "not part of this stage").
//! * **utilization** = `Σ busy / (wall × lanes)`, clamped to `(0, 1]`. A
//!   stage with no attributable work spans is *coordinator-only*: the stage
//!   itself is the single lane and utilization is 1 by definition.
//! * **critical-path ratio** = `max busy over lanes / Σ busy` — the share of
//!   total work on the slowest lane; `1/lanes` is perfectly balanced, `1.0`
//!   is fully serial.
//! * **chunk statistics** over contained spans carrying a `chunk` payload:
//!   max/mean duration, coefficient of variation, the straggler `(tid,
//!   chunk)`, and the Pearson correlation of duration against the
//!   `chunk_len` / `edges` payloads (a high correlation says the imbalance
//!   is *size*-driven and a size-aware splitter would fix it; a low one says
//!   it is content-driven). Per-chunk durations are used unscaled — sampling
//!   thins the observations but does not bias an individual duration.
//!
//! This module is plain arithmetic over already-collected records, so it is
//! compiled unconditionally — `cargo xtask trace-analyze` links it without
//! the `enabled` feature. With the feature off, [`crate::drain`] returns no
//! records and [`analyze`] of the empty slice is an empty analysis.

use crate::json::Json;
use crate::span::SpanRecord;

/// One span in analyzer form: owned name plus the payload fields the
/// analyzer consumes. Built from live [`SpanRecord`]s via `From`, or from a
/// parsed Chrome trace by external readers (`cargo xtask trace-analyze`).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedSpan {
    /// Span name (`"degree"`, `"degree.chunk"`, …).
    pub name: String,
    /// Start time in nanoseconds on the trace's monotonic clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Worker id: `0` = coordinator, `1..=p` = pool workers.
    pub tid: u32,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: u16,
    /// Sampling period the record was kept under (`1` = unsampled); busy
    /// time is scaled by this factor.
    pub sample: u32,
    /// Chunk index payload, when the span carried one.
    pub chunk: Option<u64>,
    /// Chunk length payload (elements), when carried.
    pub chunk_len: Option<u64>,
    /// Edge-count payload, when carried.
    pub edges: Option<u64>,
}

impl AnalyzedSpan {
    /// End time in nanoseconds.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

impl From<&SpanRecord> for AnalyzedSpan {
    fn from(r: &SpanRecord) -> Self {
        AnalyzedSpan {
            name: r.name.to_string(),
            start_ns: r.start_ns,
            dur_ns: r.dur_ns,
            tid: r.tid,
            depth: r.depth,
            sample: r.sample.max(1),
            chunk: r.args.chunk,
            chunk_len: r.args.chunk_len,
            edges: r.args.edges,
        }
    }
}

/// Busy-time accounting for one lane (thread) of one stage instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerBusy {
    /// Worker id (`0` = coordinator).
    pub tid: u32,
    /// Sample-scaled busy nanoseconds attributed to this lane.
    pub busy_ns: u64,
    /// Work spans actually recorded on this lane (unscaled).
    pub spans: u64,
    /// Merged busy intervals `(start_ns, end_ns)`, ascending and disjoint;
    /// drives the [`timeline`](Self::timeline) bar.
    pub intervals: Vec<(u64, u64)>,
}

impl WorkerBusy {
    /// Renders a `cols`-character busy/idle bar over `[start_ns, end_ns)`:
    /// `#` where the lane had a recorded span, `.` where it was idle.
    #[must_use]
    pub fn timeline(&self, start_ns: u64, end_ns: u64, cols: usize) -> String {
        if cols == 0 || end_ns <= start_ns {
            return String::new();
        }
        let span = (end_ns - start_ns) as f64;
        let mut cells = vec![b'.'; cols];
        for &(a, b) in &self.intervals {
            let (a, b) = (a.max(start_ns), b.min(end_ns));
            if b <= a {
                continue;
            }
            let lo = ((a - start_ns) as f64 / span * cols as f64).floor() as usize;
            let hi = (((b - start_ns) as f64 / span * cols as f64).ceil() as usize).min(cols);
            for cell in &mut cells[lo.min(cols - 1)..hi] {
                *cell = b'#';
            }
        }
        String::from_utf8(cells).expect("bar is ASCII")
    }
}

/// One observation of a per-chunk span inside a stage instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkObs {
    /// Name of the chunk span (`"degree.chunk"`, `"pack.encode.chunk"`, …).
    pub name: String,
    /// Worker the chunk ran on.
    pub tid: u32,
    /// Chunk index payload.
    pub chunk: u64,
    /// Observed (unscaled) duration in nanoseconds.
    pub dur_ns: u64,
    /// Sampling period the observation was kept under.
    pub sample: u32,
    /// `chunk_len` payload, when carried.
    pub chunk_len: Option<u64>,
    /// `edges` payload, when carried.
    pub edges: Option<u64>,
}

/// Imbalance statistics over a set of chunk observations.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkStats {
    /// Chunk spans actually observed (after sampling).
    pub observed: usize,
    /// Estimated true chunk count (`Σ sample` over observations).
    pub estimated: u64,
    /// Mean observed chunk duration in nanoseconds.
    pub mean_ns: f64,
    /// Maximum observed chunk duration in nanoseconds.
    pub max_ns: u64,
    /// Coefficient of variation of chunk durations (population std-dev over
    /// mean); 0 is perfectly even, ≳0.5 is heavily skewed.
    pub cv: f64,
    /// Worker id of the slowest observed chunk.
    pub straggler_tid: u32,
    /// Chunk index of the slowest observed chunk.
    pub straggler_chunk: u64,
    /// Pearson correlation of duration vs the `chunk_len` payload; `None`
    /// with fewer than two carrying observations or zero variance.
    pub corr_chunk_len: Option<f64>,
    /// Pearson correlation of duration vs the `edges` payload.
    pub corr_edges: Option<f64>,
}

/// Computes [`ChunkStats`] over a set of observations; `None` when empty.
#[must_use]
pub fn chunk_stats(obs: &[ChunkObs]) -> Option<ChunkStats> {
    if obs.is_empty() {
        return None;
    }
    let n = obs.len() as f64;
    let mean = obs.iter().map(|o| o.dur_ns as f64).sum::<f64>() / n;
    let var = obs
        .iter()
        .map(|o| {
            let d = o.dur_ns as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    let straggler = obs
        .iter()
        .max_by_key(|o| o.dur_ns)
        .expect("obs is non-empty");
    let pairs_with = |f: fn(&ChunkObs) -> Option<u64>| -> Vec<(f64, f64)> {
        obs.iter()
            .filter_map(|o| f(o).map(|x| (o.dur_ns as f64, x as f64)))
            .collect()
    };
    Some(ChunkStats {
        observed: obs.len(),
        estimated: obs.iter().map(|o| u64::from(o.sample)).sum(),
        mean_ns: mean,
        max_ns: straggler.dur_ns,
        cv,
        straggler_tid: straggler.tid,
        straggler_chunk: straggler.chunk,
        corr_chunk_len: pearson(&pairs_with(|o| o.chunk_len)),
        corr_edges: pearson(&pairs_with(|o| o.edges)),
    })
}

/// Pearson correlation coefficient of `(x, y)` pairs; `None` with fewer
/// than two pairs or when either side has zero variance.
#[must_use]
pub fn pearson(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for (x, y) in pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Analysis of one execution of one top-level stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageInstance {
    /// Stage name.
    pub name: String,
    /// Instance start in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration of the instance in nanoseconds.
    pub dur_ns: u64,
    /// Per-lane busy accounting, ascending by `tid`.
    pub workers: Vec<WorkerBusy>,
    /// Total sample-scaled busy nanoseconds over all lanes.
    pub busy_ns: u64,
    /// Busy nanoseconds of the busiest lane.
    pub critical_path_ns: u64,
    /// `busy / (wall × lanes)`, clamped to `(0, 1]`.
    pub utilization: f64,
    /// `critical_path / busy` — share of all work on the slowest lane.
    pub critical_path_ratio: f64,
    /// True when no work spans were attributable and the stage itself was
    /// counted as the only (coordinator) lane.
    pub coordinator_only: bool,
    /// Chunk-span observations contained in the instance (any depth).
    pub chunks: Vec<ChunkObs>,
}

/// Aggregated analysis of all instances of one stage name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Stage name.
    pub name: String,
    /// Number of instances (e.g. one per benchmark repetition).
    pub instances: usize,
    /// Summed wall-clock nanoseconds over instances.
    pub wall_ns: u64,
    /// Summed busy nanoseconds over instances.
    pub busy_ns: u64,
    /// Capacity-weighted utilization: `Σ busy / Σ (wall × lanes)`.
    pub utilization: f64,
    /// Worst single-instance utilization.
    pub min_utilization: f64,
    /// `Σ critical_path / Σ busy` over instances.
    pub critical_path_ratio: f64,
    /// Most lanes seen in any instance.
    pub max_workers: usize,
    /// Pooled chunk statistics over all instances; `None` when the stage
    /// recorded no chunk spans.
    pub chunks: Option<ChunkStats>,
}

/// A full trace analysis: per-instance detail plus per-stage-name summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceAnalysis {
    /// Every top-level stage instance, ascending by start time.
    pub instances: Vec<StageInstance>,
    /// Per-stage-name summaries, in first-seen order.
    pub stages: Vec<StageSummary>,
}

impl TraceAnalysis {
    /// The summary for `name`, if that stage appears in the trace.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// JSON rendering (the `--json` output of `cargo xtask trace-analyze`
    /// and the experiment artifacts).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "stages".into(),
                Json::Array(self.stages.iter().map(StageSummary::to_json).collect()),
            ),
            (
                "instances".into(),
                Json::Array(self.instances.iter().map(StageInstance::to_json).collect()),
            ),
        ])
    }
}

fn ms(ns: u64) -> Json {
    Json::Float(ns as f64 / 1e6)
}

fn opt_float(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Float)
}

impl ChunkStats {
    /// JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("observed".into(), Json::Int(self.observed as i64)),
            ("estimated".into(), Json::Int(self.estimated as i64)),
            ("mean_ms".into(), Json::Float(self.mean_ns / 1e6)),
            ("max_ms".into(), ms(self.max_ns)),
            ("cv".into(), Json::Float(self.cv)),
            (
                "straggler_tid".into(),
                Json::Int(i64::from(self.straggler_tid)),
            ),
            (
                "straggler_chunk".into(),
                Json::Int(self.straggler_chunk as i64),
            ),
            ("corr_chunk_len".into(), opt_float(self.corr_chunk_len)),
            ("corr_edges".into(), opt_float(self.corr_edges)),
        ])
    }
}

impl StageSummary {
    /// JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("instances".into(), Json::Int(self.instances as i64)),
            ("wall_ms".into(), ms(self.wall_ns)),
            ("busy_ms".into(), ms(self.busy_ns)),
            ("utilization".into(), Json::Float(self.utilization)),
            ("min_utilization".into(), Json::Float(self.min_utilization)),
            (
                "critical_path_ratio".into(),
                Json::Float(self.critical_path_ratio),
            ),
            ("max_workers".into(), Json::Int(self.max_workers as i64)),
            (
                "chunks".into(),
                self.chunks.as_ref().map_or(Json::Null, ChunkStats::to_json),
            ),
        ])
    }
}

impl StageInstance {
    /// JSON rendering (omits the raw chunk observations; the pooled stats
    /// live on the summary).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("start_ms".into(), ms(self.start_ns)),
            ("wall_ms".into(), ms(self.dur_ns)),
            ("utilization".into(), Json::Float(self.utilization)),
            (
                "critical_path_ratio".into(),
                Json::Float(self.critical_path_ratio),
            ),
            ("coordinator_only".into(), Json::Bool(self.coordinator_only)),
            (
                "workers".into(),
                Json::Array(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::Object(vec![
                                ("tid".into(), Json::Int(i64::from(w.tid))),
                                ("busy_ms".into(), ms(w.busy_ns)),
                                ("spans".into(), Json::Int(w.spans as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Analyzes live span records (see [`analyze`]).
#[must_use]
pub fn analyze_records(records: &[SpanRecord]) -> TraceAnalysis {
    let spans: Vec<AnalyzedSpan> = records.iter().map(AnalyzedSpan::from).collect();
    analyze(&spans)
}

/// Analyzes a set of spans: finds every top-level stage instance, attributes
/// contained work spans to lanes, and summarizes per stage name. See the
/// module docs for the model.
#[must_use]
pub fn analyze(spans: &[AnalyzedSpan]) -> TraceAnalysis {
    let mut tops: Vec<&AnalyzedSpan> = spans
        .iter()
        .filter(|s| s.depth == 0 && s.tid == 0)
        .collect();
    tops.sort_by_key(|s| (s.start_ns, s.end_ns()));
    let instances: Vec<StageInstance> = tops
        .into_iter()
        .map(|top| analyze_instance(top, spans))
        .collect();
    let stages = summarize(&instances);
    TraceAnalysis { instances, stages }
}

fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        if let Some(last) = out.last_mut() {
            if a <= last.1 {
                last.1 = last.1.max(b);
                continue;
            }
        }
        out.push((a, b));
    }
    out
}

fn analyze_instance(top: &AnalyzedSpan, spans: &[AnalyzedSpan]) -> StageInstance {
    let (s, e) = (top.start_ns, top.end_ns());
    let mut workers: Vec<WorkerBusy> = Vec::new();
    let mut chunks: Vec<ChunkObs> = Vec::new();
    for r in spans {
        // Top-level coordinator records are other stage instances (or `top`
        // itself), never work spans of this one.
        if (r.depth == 0 && r.tid == 0) || r.start_ns < s || r.end_ns() > e {
            continue;
        }
        if let Some(chunk) = r.chunk {
            chunks.push(ChunkObs {
                name: r.name.clone(),
                tid: r.tid,
                chunk,
                dur_ns: r.dur_ns,
                sample: r.sample.max(1),
                chunk_len: r.chunk_len,
                edges: r.edges,
            });
        }
        // Only the outermost span of each thread contributes busy time;
        // anything deeper is already inside its parent's interval.
        let outermost = if r.tid == 0 {
            r.depth == 1
        } else {
            r.depth == 0
        };
        if !outermost {
            continue;
        }
        let w = match workers.iter_mut().find(|w| w.tid == r.tid) {
            Some(w) => w,
            None => {
                workers.push(WorkerBusy {
                    tid: r.tid,
                    busy_ns: 0,
                    spans: 0,
                    intervals: Vec::new(),
                });
                workers.last_mut().expect("just pushed")
            }
        };
        w.busy_ns += r.dur_ns * u64::from(r.sample.max(1));
        w.spans += 1;
        w.intervals.push((r.start_ns, r.end_ns()));
    }
    workers.sort_by_key(|w| w.tid);
    for w in &mut workers {
        w.intervals = merge_intervals(std::mem::take(&mut w.intervals));
    }

    let wall = top.dur_ns;
    let busy: u64 = workers.iter().map(|w| w.busy_ns).sum();
    let coordinator_only = busy == 0;
    let (workers, busy) = if coordinator_only {
        // No attributable work spans (e.g. `scatter`, `sort`): the stage ran
        // entirely on the coordinator, which is then the single, fully-busy
        // lane by definition.
        (
            vec![WorkerBusy {
                tid: top.tid,
                busy_ns: wall,
                spans: 1,
                intervals: vec![(s, e)],
            }],
            wall,
        )
    } else {
        (workers, busy)
    };
    let lanes = workers.len() as u64;
    let capacity = u128::from(wall) * u128::from(lanes);
    let utilization = if capacity == 0 {
        1.0 // zero-duration stage: degenerate, defined as fully utilized
    } else {
        (busy as f64 / capacity as f64).min(1.0)
    };
    let critical_path_ns = workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
    let critical_path_ratio = if busy > 0 {
        critical_path_ns as f64 / busy as f64
    } else {
        1.0
    };
    StageInstance {
        name: top.name.clone(),
        start_ns: s,
        dur_ns: wall,
        workers,
        busy_ns: busy,
        critical_path_ns,
        utilization,
        critical_path_ratio,
        coordinator_only,
        chunks,
    }
}

fn summarize(instances: &[StageInstance]) -> Vec<StageSummary> {
    let mut names: Vec<&str> = Vec::new();
    for i in instances {
        if !names.contains(&i.name.as_str()) {
            names.push(&i.name);
        }
    }
    names
        .into_iter()
        .map(|name| {
            let group: Vec<&StageInstance> = instances.iter().filter(|i| i.name == name).collect();
            let wall_ns: u64 = group.iter().map(|i| i.dur_ns).sum();
            let busy_ns: u64 = group.iter().map(|i| i.busy_ns).sum();
            let capacity: u128 = group
                .iter()
                .map(|i| u128::from(i.dur_ns) * i.workers.len() as u128)
                .sum();
            let utilization = if capacity == 0 {
                1.0
            } else {
                (busy_ns as f64 / capacity as f64).min(1.0)
            };
            let min_utilization = group
                .iter()
                .map(|i| i.utilization)
                .fold(f64::INFINITY, f64::min);
            let crit: u64 = group.iter().map(|i| i.critical_path_ns).sum();
            let critical_path_ratio = if busy_ns > 0 {
                crit as f64 / busy_ns as f64
            } else {
                1.0
            };
            let all_chunks: Vec<ChunkObs> = group
                .iter()
                .flat_map(|i| i.chunks.iter().cloned())
                .collect();
            StageSummary {
                name: name.to_string(),
                instances: group.len(),
                wall_ns,
                busy_ns,
                utilization,
                min_utilization,
                critical_path_ratio,
                max_workers: group.iter().map(|i| i.workers.len()).max().unwrap_or(0),
                chunks: chunk_stats(&all_chunks),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, tid: u32, depth: u16, start: u64, dur: u64) -> AnalyzedSpan {
        AnalyzedSpan {
            name: name.to_string(),
            start_ns: start,
            dur_ns: dur,
            tid,
            depth,
            sample: 1,
            chunk: None,
            chunk_len: None,
            edges: None,
        }
    }

    fn chunk_span(
        name: &str,
        tid: u32,
        start: u64,
        dur: u64,
        chunk: u64,
        chunk_len: u64,
    ) -> AnalyzedSpan {
        AnalyzedSpan {
            chunk: Some(chunk),
            chunk_len: Some(chunk_len),
            ..span(name, tid, 0, start, dur)
        }
    }

    #[test]
    fn single_worker_is_fully_utilized() {
        let spans = vec![
            span("degree", 0, 0, 0, 100),
            span("degree.work", 1, 0, 0, 100),
        ];
        let a = analyze(&spans);
        assert_eq!(a.instances.len(), 1);
        let i = &a.instances[0];
        assert!((i.utilization - 1.0).abs() < 1e-12, "{}", i.utilization);
        assert!((i.critical_path_ratio - 1.0).abs() < 1e-12);
        assert!(!i.coordinator_only);
        assert_eq!(i.workers.len(), 1);
        assert_eq!(i.busy_ns, 100);
    }

    #[test]
    fn one_straggler_among_p_workers_is_one_over_p() {
        // Worker 1 is busy the whole stage; workers 2..=4 record
        // zero-duration spans (they participated but did ~no work).
        let spans = vec![
            span("scan", 0, 0, 0, 1000),
            span("w", 1, 0, 0, 1000),
            span("w", 2, 0, 10, 0),
            span("w", 3, 0, 10, 0),
            span("w", 4, 0, 10, 0),
        ];
        let a = analyze(&spans);
        let i = &a.instances[0];
        assert_eq!(i.workers.len(), 4);
        assert!((i.utilization - 0.25).abs() < 1e-12, "{}", i.utilization);
        assert!((i.critical_path_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_workers_reach_high_utilization() {
        let mut spans = vec![span("scan", 0, 0, 0, 100)];
        for tid in 1..=4 {
            spans.push(span("w", tid, 0, 0, 95));
        }
        let i = &analyze(&spans).instances[0];
        assert!((i.utilization - 0.95).abs() < 1e-12);
        assert!((i.critical_path_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stage_has_no_division_by_zero() {
        // No children at all, and even a zero-duration instance.
        let spans = vec![span("scatter", 0, 0, 0, 50), span("sort", 0, 0, 60, 0)];
        let a = analyze(&spans);
        assert_eq!(a.instances.len(), 2);
        for i in &a.instances {
            assert!(i.coordinator_only);
            assert!(i.utilization > 0.0 && i.utilization <= 1.0);
            assert!(i.critical_path_ratio.is_finite());
        }
        assert!((a.instances[0].utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_empty_analysis() {
        let a = analyze(&[]);
        assert!(a.instances.is_empty() && a.stages.is_empty());
        assert_eq!(a, TraceAnalysis::default());
    }

    #[test]
    fn sampling_scales_busy_time_up() {
        let mut w = span("w", 1, 0, 0, 10);
        w.sample = 4; // stands for 4 same-name spans
        let spans = vec![span("pack", 0, 0, 0, 80), w];
        let i = &analyze(&spans).instances[0];
        assert_eq!(i.busy_ns, 40);
        assert!((i.utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nested_spans_do_not_double_count() {
        let spans = vec![
            span("pack", 0, 0, 0, 100),
            span("pack.encode", 0, 1, 0, 100), // coordinator sub-span: counts
            span("inner", 0, 2, 10, 50),       // nested deeper: ignored
            span("w", 1, 0, 0, 100),
            span("w.inner", 1, 1, 5, 20), // nested on the worker: ignored
        ];
        let i = &analyze(&spans).instances[0];
        assert_eq!(i.busy_ns, 200);
        assert_eq!(i.workers.len(), 2);
        assert!((i.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spans_outside_the_instance_are_not_attributed() {
        let spans = vec![
            span("degree", 0, 0, 0, 100),
            span("scan", 0, 0, 200, 100),
            span("w", 1, 0, 210, 50), // inside scan, not degree
        ];
        let a = analyze(&spans);
        assert!(a.instances[0].coordinator_only);
        assert!(!a.instances[1].coordinator_only);
        assert_eq!(a.instances[1].busy_ns, 50);
    }

    #[test]
    fn chunk_stats_pin_mean_max_cv_and_straggler() {
        let obs = vec![
            ChunkObs {
                name: "x.chunk".into(),
                tid: 1,
                chunk: 0,
                dur_ns: 10,
                sample: 1,
                chunk_len: Some(1),
                edges: Some(3),
            },
            ChunkObs {
                name: "x.chunk".into(),
                tid: 2,
                chunk: 1,
                dur_ns: 20,
                sample: 1,
                chunk_len: Some(2),
                edges: Some(2),
            },
            ChunkObs {
                name: "x.chunk".into(),
                tid: 3,
                chunk: 2,
                dur_ns: 30,
                sample: 1,
                chunk_len: Some(3),
                edges: Some(1),
            },
        ];
        let st = chunk_stats(&obs).unwrap();
        assert_eq!(st.observed, 3);
        assert_eq!(st.estimated, 3);
        assert!((st.mean_ns - 20.0).abs() < 1e-12);
        assert_eq!(st.max_ns, 30);
        // Population std-dev of {10,20,30} is sqrt(200/3) ≈ 8.165.
        assert!((st.cv - (200.0f64 / 3.0).sqrt() / 20.0).abs() < 1e-12);
        assert_eq!((st.straggler_tid, st.straggler_chunk), (3, 2));
        // Duration rises with chunk_len and falls with edges.
        assert!((st.corr_chunk_len.unwrap() - 1.0).abs() < 1e-12);
        assert!((st.corr_edges.unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_stats_edge_cases() {
        assert!(chunk_stats(&[]).is_none());
        let one = vec![ChunkObs {
            name: "x".into(),
            tid: 1,
            chunk: 0,
            dur_ns: 5,
            sample: 2,
            chunk_len: None,
            edges: None,
        }];
        let st = chunk_stats(&one).unwrap();
        assert_eq!(st.estimated, 2);
        assert_eq!(st.cv, 0.0);
        assert!(st.corr_chunk_len.is_none() && st.corr_edges.is_none());
        // Zero variance on one side: correlation undefined, not NaN.
        assert!(pearson(&[(1.0, 5.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn chunks_are_collected_into_instances_and_summaries() {
        let spans = vec![
            span("degree", 0, 0, 0, 100),
            chunk_span("degree.chunk", 1, 0, 60, 0, 50),
            chunk_span("degree.chunk", 2, 0, 40, 1, 50),
            span("degree", 0, 0, 200, 100),
            chunk_span("degree.chunk", 1, 200, 55, 0, 50),
            chunk_span("degree.chunk", 2, 200, 45, 1, 50),
        ];
        let a = analyze(&spans);
        assert_eq!(a.instances.len(), 2);
        assert_eq!(a.instances[0].chunks.len(), 2);
        let s = a.stage("degree").unwrap();
        assert_eq!(s.instances, 2);
        let st = s.chunks.as_ref().unwrap();
        assert_eq!(st.observed, 4);
        assert_eq!((st.straggler_tid, st.straggler_chunk), (1, 0));
        assert!((st.mean_ns - 50.0).abs() < 1e-12);
    }

    #[test]
    fn summary_weights_utilization_by_capacity() {
        // Instance A: wall 100, 2 lanes, busy 100 (util 0.5).
        // Instance B: wall 300, 2 lanes, busy 600 (util 1.0).
        // Capacity-weighted: 700 / 800 = 0.875; min is 0.5.
        let spans = vec![
            span("pack", 0, 0, 0, 100),
            span("w", 1, 0, 0, 60),
            span("w", 2, 0, 0, 40),
            span("pack", 0, 0, 1000, 300),
            span("w", 1, 0, 1000, 300),
            span("w", 2, 0, 1000, 300),
        ];
        let s = analyze(&spans).stage("pack").unwrap().clone();
        assert!((s.utilization - 0.875).abs() < 1e-12, "{}", s.utilization);
        assert!((s.min_utilization - 0.5).abs() < 1e-12);
        assert_eq!(s.max_workers, 2);
    }

    #[test]
    fn timeline_bar_marks_busy_cells() {
        let w = WorkerBusy {
            tid: 1,
            busy_ns: 50,
            spans: 1,
            intervals: vec![(0, 25), (75, 100)],
        };
        let bar = w.timeline(0, 100, 20);
        assert_eq!(bar.len(), 20);
        assert!(bar.starts_with("#####"));
        assert!(bar.ends_with("#####"));
        assert!(bar.contains(".........."));
        assert_eq!(w.timeline(0, 0, 20), "");
        assert_eq!(w.timeline(0, 100, 0), "");
    }

    #[test]
    fn to_json_roundtrips_through_the_parser() {
        let spans = vec![
            span("degree", 0, 0, 0, 100),
            chunk_span("degree.chunk", 1, 0, 60, 0, 50),
        ];
        let text = analyze(&spans).to_json().pretty();
        let doc = Json::parse(&text).unwrap();
        let stages = doc.get("stages").and_then(Json::as_array).unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].get("name").and_then(Json::as_str), Some("degree"));
        assert!(stages[0].get("utilization").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(stages[0].get("chunks").unwrap().get("cv").is_some());
    }
}
