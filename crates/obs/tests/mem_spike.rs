//! Regression test for mid-span memory sampling: an allocate-and-free spike
//! inside a *nested* span is invisible to the endpoint approximation
//! (`max(live at entry, live at exit)`) but must be caught once
//! `mem::set_sample_period` arms the allocation-count trigger.
//!
//! Runs in its own integration-test binary because it registers the
//! counting global allocator and asserts on process-wide accounting — other
//! tests allocating concurrently would make the numbers nondeterministic,
//! so this file holds exactly one `#[test]`.
#![cfg(feature = "enabled")]

use parcsr_obs::{self as obs, mem};

#[global_allocator]
static ALLOC: mem::CountingAlloc = mem::CountingAlloc::new();

/// Allocates `bytes`, touches it, frees it, all inside the current span.
fn spike(bytes: usize) {
    let v = vec![1u8; bytes];
    std::hint::black_box(&v[bytes / 2]);
    drop(v);
}

/// Runs `outer` (top-level) → `mid` → `inner`, with the spike inside
/// `inner`, and returns the recorded `(inner, mid)` peaks.
fn run_nested_spike(bytes: usize) -> (u64, u64) {
    {
        let _outer = obs::enter("spike.outer");
        let _mid = obs::enter("spike.mid");
        obs::span!("spike.inner", {
            spike(bytes);
        });
    }
    let records = obs::drain();
    let peak_of = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("span `{name}` missing from {records:?}"))
            .mem_peak
    };
    (peak_of("spike.inner"), peak_of("spike.mid"))
}

#[test]
fn sampled_mark_catches_intra_span_spike() {
    obs::set_enabled(true);
    mem::set_enabled(true);
    let _ = obs::drain();
    assert!(mem::active(), "counting allocator should be registered");

    const SPIKE: usize = 32 << 20; // far above the test harness baseline

    // Without sampling, the endpoint approximation misses the freed spike.
    mem::set_sample_period(0);
    let baseline = mem::live_bytes();
    let (inner, mid) = run_nested_spike(SPIKE);
    assert!(
        inner < baseline + (SPIKE / 2) as u64,
        "endpoint approximation should miss the spike: peak {inner}, baseline {baseline}"
    );
    assert!(mid < baseline + (SPIKE / 2) as u64);

    // With a period of 1 every allocation updates the mark: both the inner
    // span and (via mark propagation on restore) the enclosing nested span
    // must report a peak that includes the spike.
    mem::set_sample_period(1);
    let (inner, mid) = run_nested_spike(SPIKE);
    mem::set_sample_period(0);
    assert!(
        inner >= SPIKE as u64,
        "sampled peak should catch the spike: got {inner}"
    );
    assert!(
        mid >= SPIKE as u64,
        "spike should propagate to the enclosing span: got {mid}"
    );

    // A coarse period still catches a spike made of many allocations: 64
    // one-MB allocations held together, sampled every 16th.
    mem::set_sample_period(16);
    let before = mem::live_bytes();
    {
        let _outer = obs::enter("spike.outer");
        obs::span!("spike.inner", {
            let held: Vec<Vec<u8>> = (0..64).map(|_| vec![1u8; 1 << 20]).collect();
            std::hint::black_box(&held);
        });
    }
    mem::set_sample_period(0);
    let records = obs::drain();
    let inner = records
        .iter()
        .find(|r| r.name == "spike.inner")
        .expect("inner span recorded")
        .mem_peak;
    // At worst the trigger lags 15 allocations (15 MB) behind the true peak.
    assert!(
        inner >= before + (48 << 20),
        "coarse sampling should still see most of the ramp: got {inner}, before {before}"
    );
}
