//! Property tests for the exposition layer: arbitrary snapshots — with
//! hostile metric names and label values — must render to a document the
//! in-tree parser accepts, and every value and label must survive the
//! round trip. Runs without the `enabled` feature: [`parcsr_obs::expo`] is
//! pure string work over an already-built [`MetricsSnapshot`].

use parcsr_obs::expo::{self, FamilyKind};
use parcsr_obs::metrics::{HistogramSummary, MetricsSnapshot, WindowSeries};
use proptest::prelude::*;

/// Name fragments chosen to stress sanitization: dots, dashes, spaces,
/// quotes, backslashes, unicode, empties, and near-collisions that only
/// differ in the character sanitization folds to `_`.
const NAME_PARTS: [&str; 10] = [
    "query",
    "win",
    "a.b",
    "a_b",
    "a-b",
    "",
    "has edge",
    "p99\"q",
    "back\\slash",
    "naïve",
];

/// Label values chosen to stress escaping, including the three escaped
/// characters and sequences that look like escapes.
const LABEL_VALUES: [&str; 8] = [
    "hub",
    "low",
    "",
    "he said \"hi\"",
    "a\\b",
    "line\nbreak",
    "\\n",
    "trailing\\",
];

fn dotted_name(parts: &[usize]) -> String {
    parts
        .iter()
        .map(|&i| NAME_PARTS[i % NAME_PARTS.len()])
        .collect::<Vec<_>>()
        .join(".")
}

fn arb_summary() -> impl Strategy<Value = HistogramSummary> {
    (0u64..1 << 40, 0u64..1 << 50, 0u64..1 << 40).prop_map(|(count, sum, max)| HistogramSummary {
        count,
        sum,
        max,
        p50: max / 2,
        p95: max.saturating_sub(max / 16),
        p99: max,
    })
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    let name = prop::collection::vec(0usize..NAME_PARTS.len(), 1..4);
    let counters = prop::collection::vec((name.clone(), 0u64..1 << 50), 0..6);
    let gauges = prop::collection::vec(
        (
            prop::collection::vec(0usize..NAME_PARTS.len(), 1..4),
            -(1i64 << 50)..1 << 50,
        ),
        0..6,
    );
    let hists = prop::collection::vec(
        (
            prop::collection::vec(0usize..NAME_PARTS.len(), 1..4),
            arb_summary(),
        ),
        0..4,
    );
    let windows = prop::collection::vec(
        (
            0usize..LABEL_VALUES.len(),
            0usize..LABEL_VALUES.len(),
            0u64..1000,
            arb_summary(),
        ),
        0..5,
    );
    (counters, gauges, hists, windows).prop_map(|(counters, gauges, hists, windows)| {
        let mut snap = MetricsSnapshot::default();
        for (parts, v) in counters {
            snap.counters.push((dotted_name(&parts), v));
        }
        for (parts, v) in gauges {
            snap.gauges.push((dotted_name(&parts), v));
        }
        for (parts, s) in hists {
            snap.histograms.push((dotted_name(&parts), s));
        }
        // (kind, class) cells are unique in a real `QuerySlabs::snapshot`
        // (one cell per grid slot); duplicates are an upstream bug that
        // expo-check flags, not something render() merges away.
        let mut cells_seen = std::collections::BTreeSet::new();
        for (k, c, window, s) in windows {
            if !cells_seen.insert((k, c)) {
                continue;
            }
            snap.windows.push(WindowSeries {
                name: format!("query.win.{k}.{c}"),
                kind: LABEL_VALUES[k],
                class: LABEL_VALUES[c],
                window,
                summary: s,
            });
        }
        snap
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The core round-trip: render → parse never fails, the document is
    /// EOF-terminated, and the sample count matches the snapshot exactly
    /// (1 liveness gauge, 1 per counter/gauge, 6 per summary family
    /// member: 3 quantiles + sum/count/max).
    #[test]
    fn render_parse_round_trip(snap in arb_snapshot()) {
        let text = expo::render(&snap);
        let expo = expo::parse(&text).unwrap();
        prop_assert!(expo.saw_eof);

        let expected = 1
            + snap.counters.len()
            + snap.gauges.len()
            + 6 * snap.histograms.len()
            + 6 * snap.windows.len();
        prop_assert_eq!(expo.samples.len(), expected);

        // Exposition names are unique per (name, label set).
        let mut keys: Vec<(String, Vec<(String, String)>)> = expo
            .samples
            .iter()
            .map(|s| {
                let mut labels = s.labels.clone();
                labels.sort();
                (s.name.clone(), labels)
            })
            .collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate (name, labels) series");

        // Values survive the trip: counter values as a multiset (names are
        // sanitized, values are not; all fit f64 exactly under 2^53).
        let mut want: Vec<f64> = snap.counters.iter().map(|&(_, v)| v as f64).collect();
        let counter_families: Vec<&str> = expo
            .types
            .iter()
            .filter(|t| t.kind == FamilyKind::Counter)
            .map(|t| t.name.as_str())
            .collect();
        let mut got: Vec<f64> = expo
            .samples
            .iter()
            .filter(|s| counter_families.contains(&s.name.as_str()))
            .map(|s| s.value)
            .collect();
        want.sort_by(f64::total_cmp);
        got.sort_by(f64::total_cmp);
        prop_assert_eq!(got, want);

        // Label escaping round-trips: the (kind, class) pairs recovered
        // from quantile samples equal the input pairs, raw bytes intact.
        let mut want_cells: Vec<(String, String)> = snap
            .windows
            .iter()
            .map(|w| (w.kind.to_string(), w.class.to_string()))
            .collect();
        let mut got_cells: Vec<(String, String)> = expo
            .samples
            .iter()
            .filter(|s| s.name == "parcsr_query_win_ns" && s.label("quantile") == Some("0.5"))
            .map(|s| {
                (
                    s.label("kind").unwrap_or("").to_string(),
                    s.label("class").unwrap_or("").to_string(),
                )
            })
            .collect();
        want_cells.sort();
        got_cells.sort();
        prop_assert_eq!(got_cells, want_cells);

        // Every sample belongs to a family declared earlier in the text.
        for s in &expo.samples {
            let family = expo.types.iter().find(|t| {
                t.name == s.name
                    || ["_sum", "_count", "_max"]
                        .iter()
                        .any(|suf| s.name == format!("{}{suf}", t.name))
            });
            prop_assert!(family.is_some(), "undeclared family for {}", s.name);
            prop_assert!(family.unwrap().line < s.line);
        }
    }

    /// The JSON stats document built from the same snapshot always parses
    /// with the in-tree JSON parser (names and labels go in verbatim, so
    /// string escaping is exercised by the same hostile inputs).
    #[test]
    fn stats_json_always_parses(snap in arb_snapshot()) {
        let doc = expo::snapshot_json(&snap);
        let text = doc.pretty();
        prop_assert!(parcsr_obs::json::Json::parse(&text).is_ok(), "unparseable: {text}");
    }
}
