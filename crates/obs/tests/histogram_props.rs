//! Property tests for the log-bucketed histogram's bucket geometry and
//! percentile extraction. These run without the `enabled` feature: the
//! histogram value type is always compiled and functional — only the global
//! recording facade is feature-gated.

use parcsr_obs::metrics::{bucket_ceil, bucket_floor, bucket_index, Histogram, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn value_lands_inside_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_floor(i) <= v);
        prop_assert!(v <= bucket_ceil(i));
    }

    #[test]
    fn boundaries_map_to_their_own_bucket(i in 0usize..NUM_BUCKETS) {
        prop_assert_eq!(bucket_index(bucket_floor(i)), i);
        prop_assert_eq!(bucket_index(bucket_ceil(i)), i);
    }

    #[test]
    fn bucket_relative_error_is_bounded(v in 1u64..u64::MAX) {
        // Bucket width over lower bound never exceeds 1/32 (5 sub-bucket
        // bits), so quantile answers are within ~3.1% of the true value.
        let i = bucket_index(v);
        let width = bucket_ceil(i).saturating_sub(bucket_floor(i)) as u128 + 1;
        let floor = bucket_floor(i).max(1) as u128;
        prop_assert!(width == 1 || width * 32 <= floor,
            "bucket {} spans [{}, {}]", i, bucket_floor(i), bucket_ceil(i));
    }

    #[test]
    fn quantiles_bracket_recorded_values(values in prop::collection::vec(0u64..1_000_000_000, 1..500)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.max(), hi);
        let p50 = h.value_at_quantile(0.50);
        let p95 = h.value_at_quantile(0.95);
        let p99 = h.value_at_quantile(0.99);
        prop_assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        for q in [p50, p95, p99] {
            // Reported quantiles are bucket upper bounds clamped to the
            // exact max, so they sit within the recorded range.
            prop_assert!(q >= lo && q <= hi, "q={q} lo={lo} hi={hi}");
        }
        prop_assert_eq!(h.value_at_quantile(1.0), hi);
    }

    #[test]
    fn single_value_quantile_is_within_bucket_error(v in 0u64..u64::MAX / 2) {
        let h = Histogram::new();
        h.record(v);
        let got = h.value_at_quantile(0.5);
        // One observation: every quantile reports its bucket, clamped to
        // the exact max.
        prop_assert_eq!(got, v);
    }
}

#[test]
fn empty_histogram_reports_zero() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.value_at_quantile(0.99), 0);
    let s = h.summary();
    assert_eq!((s.count, s.p50, s.p99, s.max), (0, 0, 0, 0));
}

#[test]
fn reset_clears_everything() {
    let h = Histogram::new();
    for v in [1u64, 100, 10_000] {
        h.record(v);
    }
    assert_eq!(h.count(), 3);
    h.reset();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.value_at_quantile(0.5), 0);
}

#[test]
fn small_values_are_exact() {
    // Values below 32 get single-value buckets.
    for v in 0..32u64 {
        assert_eq!(bucket_index(v), v as usize);
        assert_eq!(bucket_floor(v as usize), v);
        assert_eq!(bucket_ceil(v as usize), v);
    }
}
