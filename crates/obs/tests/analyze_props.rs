//! Property tests for the trace analyzer's math. These run without the
//! `enabled` feature: `parcsr_obs::analyze` is plain arithmetic over
//! already-collected spans and is always compiled.

use parcsr_obs::analyze::{analyze, AnalyzedSpan};
use proptest::prelude::*;

/// A random stage instance: wall `[0, wall)` plus worker spans described as
/// `(tid, start offset, duration, sample)`, clipped into the stage.
fn build_spans(wall: u64, workers: &[(u32, u64, u64, u32)]) -> Vec<AnalyzedSpan> {
    let mut spans = vec![AnalyzedSpan {
        name: "stage".to_string(),
        start_ns: 0,
        dur_ns: wall,
        tid: 0,
        depth: 0,
        sample: 1,
        chunk: None,
        chunk_len: None,
        edges: None,
    }];
    for &(tid, start, dur, sample) in workers {
        let start = start.min(wall);
        let dur = dur.min(wall - start);
        spans.push(AnalyzedSpan {
            name: "stage.work".to_string(),
            start_ns: start,
            dur_ns: dur,
            tid: 1 + tid % 8,
            depth: 0,
            sample: sample.max(1),
            chunk: Some(u64::from(tid)),
            chunk_len: Some(dur),
            edges: None,
        });
    }
    spans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn utilization_in_unit_interval_and_critical_path_bounded(
        wall in 1u64..1_000_000,
        workers in prop::collection::vec(
            (0u32..8, 0u64..1_000_000, 0u64..1_000_000, 1u32..16), 0..24),
    ) {
        let spans = build_spans(wall, &workers);
        let a = analyze(&spans);
        prop_assert_eq!(a.instances.len(), 1);
        let i = &a.instances[0];

        // Utilization is a fraction of available capacity.
        prop_assert!(i.utilization > 0.0 && i.utilization <= 1.0,
            "utilization {} out of (0, 1]", i.utilization);
        // The critical path is one lane's work: never more than the total.
        prop_assert!(i.critical_path_ns <= i.busy_ns,
            "critical path {} exceeds total work {}", i.critical_path_ns, i.busy_ns);
        prop_assert!(i.critical_path_ratio > 0.0 && i.critical_path_ratio <= 1.0);

        // Busy time equals the sample-scaled sum of attributed durations.
        let expected: u64 = spans.iter().skip(1)
            .map(|s| s.dur_ns * u64::from(s.sample))
            .sum();
        if expected > 0 {
            prop_assert_eq!(i.busy_ns, expected);
        }

        // The summary agrees with the single instance.
        let s = a.stage("stage").unwrap();
        prop_assert!((s.utilization - i.utilization).abs() < 1e-12);
        prop_assert!((s.min_utilization - i.utilization).abs() < 1e-12);
        prop_assert_eq!(s.max_workers, i.workers.len());
    }

    #[test]
    fn chunk_cv_is_finite_and_straggler_is_the_max(
        wall in 1u64..1_000_000,
        workers in prop::collection::vec(
            (0u32..8, 0u64..1_000_000, 1u64..1_000_000, 1u32..4), 1..24),
    ) {
        let spans = build_spans(wall, &workers);
        let a = analyze(&spans);
        let i = &a.instances[0];
        if let Some(st) = a.stage("stage").unwrap().chunks.as_ref() {
            prop_assert!(st.cv.is_finite() && st.cv >= 0.0);
            let max = i.chunks.iter().map(|c| c.dur_ns).max().unwrap();
            prop_assert_eq!(st.max_ns, max);
            prop_assert!(st.mean_ns <= max as f64 + 1e-9);
            prop_assert!(st.observed == i.chunks.len());
            if let Some(c) = st.corr_chunk_len {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
            }
        }
    }
}
