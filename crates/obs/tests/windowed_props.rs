//! Property tests for the serving-telemetry layer: sharded slab recording
//! must be indistinguishable from a single slab after the snapshot merge,
//! window rotation must never lose an in-window sample, and percentile
//! summaries must stay internally ordered under arbitrary merges. Like the
//! histogram props, these run without the `enabled` feature — the slab and
//! windowed-histogram value types are always compiled; only the global
//! facade is gated.

use parcsr_obs::metrics::Histogram;
use parcsr_obs::serve::{DegreeClass, QueryKind, QuerySlabs, WindowedHistogram};
use proptest::prelude::*;

/// One recorded observation: shard picked by the caller, a `(kind, class)`
/// cell, a latency value.
fn arb_samples(max: usize) -> impl Strategy<Value = Vec<(usize, usize, usize, u64)>> {
    prop::collection::vec(
        (0usize..64, 0usize..5, 0usize..3, 0u64..10_000_000_000),
        1..max,
    )
}

fn record_all(slabs: &QuerySlabs, samples: &[(usize, usize, usize, u64)], spread: bool) {
    for &(shard, k, c, ns) in samples {
        let shard = if spread { shard } else { 0 };
        slabs.record(shard, QueryKind::ALL[k], DegreeClass::ALL[c], ns);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The foundation of the snapshot design: log-bucketed recording is
    /// deterministic, so merging per-shard histograms at snapshot time is
    /// bit-identical to having recorded everything into one slab.
    #[test]
    fn sharded_merge_equals_single_slab(
        samples in arb_samples(400),
        shards in 1usize..9,
    ) {
        let sharded = QuerySlabs::new(shards, 3);
        let single = QuerySlabs::new(1, 3);
        record_all(&sharded, &samples, true);
        record_all(&single, &samples, false);

        // Every cell, every rollup, and the total must agree exactly.
        for kind in QueryKind::ALL {
            for class in DegreeClass::ALL {
                prop_assert_eq!(
                    sharded.overall_summary(Some(kind), Some(class)),
                    single.overall_summary(Some(kind), Some(class)),
                    "cell ({:?}, {:?})", kind, class
                );
            }
            prop_assert_eq!(
                sharded.overall_summary(Some(kind), None),
                single.overall_summary(Some(kind), None)
            );
        }
        for class in DegreeClass::ALL {
            prop_assert_eq!(
                sharded.overall_summary(None, Some(class)),
                single.overall_summary(None, Some(class))
            );
        }
        prop_assert_eq!(
            sharded.overall_summary(None, None),
            single.overall_summary(None, None)
        );
    }

    /// Rotation bookkeeping: splitting a sample stream across up to
    /// `windows - 1` rotations loses nothing — every batch is retrievable
    /// from its completed window, and retained + live together hold every
    /// recorded value.
    #[test]
    fn rotation_loses_no_in_window_samples(
        batches in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000_000, 1..40),
            1..4,
        ),
        windows in 2usize..6,
        tail in prop::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        // At most windows - 1 completed batches stay retrievable; cap the
        // rotation count so nothing is *expected* to expire.
        let batches = &batches[..batches.len().min(windows - 1)];
        let h = WindowedHistogram::new(windows);
        let mut epochs = Vec::new();
        for batch in batches {
            for &v in batch {
                h.record(v);
            }
            epochs.push(h.rotate());
        }
        for &v in &tail {
            h.record(v);
        }

        // Each completed window holds exactly its batch.
        for (batch, &epoch) in batches.iter().zip(&epochs) {
            let win = h.window(epoch).expect("window still retained");
            prop_assert_eq!(win.count(), batch.len() as u64);
            prop_assert_eq!(win.sum(), batch.iter().sum::<u64>());
        }
        // The live window holds exactly the tail.
        prop_assert_eq!(h.live().count(), tail.len() as u64);

        // The retained set (completed windows + live) covers every sample
        // ever recorded — nothing has expired at <= windows - 1 rotations.
        let merged = Histogram::new();
        h.merge_retained_into(&merged);
        let total: usize = batches.iter().map(Vec::len).sum::<usize>() + tail.len();
        prop_assert_eq!(merged.count(), total as u64);
    }

    /// Percentile extraction stays internally ordered no matter how many
    /// histograms were merged into the snapshot, and merging is lossless in
    /// count/sum/max.
    #[test]
    fn percentiles_stay_monotone_across_merges(
        parts in prop::collection::vec(
            prop::collection::vec(0u64..10_000_000_000, 1..60),
            1..6,
        ),
    ) {
        let merged = Histogram::new();
        let direct = Histogram::new();
        for part in &parts {
            let h = Histogram::new();
            for &v in part {
                h.record(v);
                direct.record(v);
            }
            h.merge_into(&merged);
        }
        let s = merged.summary();
        prop_assert!(s.p50 <= s.p95, "{s:?}");
        prop_assert!(s.p95 <= s.p99, "{s:?}");
        prop_assert!(s.p99 <= s.max, "{s:?}");
        // Merge ≡ direct recording, field for field.
        prop_assert_eq!(s, direct.summary());
    }
}
