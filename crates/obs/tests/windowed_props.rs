//! Property tests for the serving-telemetry layer: sharded slab recording
//! must be indistinguishable from a single slab after the snapshot merge,
//! window rotation must never lose an in-window sample, and percentile
//! summaries must stay internally ordered under arbitrary merges. Like the
//! histogram props, these run without the `enabled` feature — the slab and
//! windowed-histogram value types are always compiled; only the global
//! facade is gated.

use parcsr_obs::metrics::Histogram;
use parcsr_obs::serve::{
    DegreeClass, HistoryRing, HistoryWindow, QueryKind, QuerySlabs, WindowedHistogram,
};
use proptest::prelude::*;

/// One recorded observation: shard picked by the caller, a `(kind, class)`
/// cell, a latency value.
fn arb_samples(max: usize) -> impl Strategy<Value = Vec<(usize, usize, usize, u64)>> {
    prop::collection::vec(
        (0usize..64, 0usize..5, 0usize..3, 0u64..10_000_000_000),
        1..max,
    )
}

fn record_all(slabs: &QuerySlabs, samples: &[(usize, usize, usize, u64)], spread: bool) {
    for &(shard, k, c, ns) in samples {
        let shard = if spread { shard } else { 0 };
        slabs.record(shard, QueryKind::ALL[k], DegreeClass::ALL[c], ns);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The foundation of the snapshot design: log-bucketed recording is
    /// deterministic, so merging per-shard histograms at snapshot time is
    /// bit-identical to having recorded everything into one slab.
    #[test]
    fn sharded_merge_equals_single_slab(
        samples in arb_samples(400),
        shards in 1usize..9,
    ) {
        let sharded = QuerySlabs::new(shards, 3);
        let single = QuerySlabs::new(1, 3);
        record_all(&sharded, &samples, true);
        record_all(&single, &samples, false);

        // Every cell, every rollup, and the total must agree exactly.
        for kind in QueryKind::ALL {
            for class in DegreeClass::ALL {
                prop_assert_eq!(
                    sharded.overall_summary(Some(kind), Some(class)),
                    single.overall_summary(Some(kind), Some(class)),
                    "cell ({:?}, {:?})", kind, class
                );
            }
            prop_assert_eq!(
                sharded.overall_summary(Some(kind), None),
                single.overall_summary(Some(kind), None)
            );
        }
        for class in DegreeClass::ALL {
            prop_assert_eq!(
                sharded.overall_summary(None, Some(class)),
                single.overall_summary(None, Some(class))
            );
        }
        prop_assert_eq!(
            sharded.overall_summary(None, None),
            single.overall_summary(None, None)
        );
    }

    /// Rotation bookkeeping: splitting a sample stream across up to
    /// `windows - 1` rotations loses nothing — every batch is retrievable
    /// from its completed window, and retained + live together hold every
    /// recorded value.
    #[test]
    fn rotation_loses_no_in_window_samples(
        batches in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000_000, 1..40),
            1..4,
        ),
        windows in 2usize..6,
        tail in prop::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        // At most windows - 1 completed batches stay retrievable; cap the
        // rotation count so nothing is *expected* to expire.
        let batches = &batches[..batches.len().min(windows - 1)];
        let h = WindowedHistogram::new(windows);
        let mut epochs = Vec::new();
        for batch in batches {
            for &v in batch {
                h.record(v);
            }
            epochs.push(h.rotate());
        }
        for &v in &tail {
            h.record(v);
        }

        // Each completed window holds exactly its batch.
        for (batch, &epoch) in batches.iter().zip(&epochs) {
            let win = h.window(epoch).expect("window still retained");
            prop_assert_eq!(win.count(), batch.len() as u64);
            prop_assert_eq!(win.sum(), batch.iter().sum::<u64>());
        }
        // The live window holds exactly the tail.
        prop_assert_eq!(h.live().count(), tail.len() as u64);

        // The retained set (completed windows + live) covers every sample
        // ever recorded — nothing has expired at <= windows - 1 rotations.
        let merged = Histogram::new();
        h.merge_retained_into(&merged);
        let total: usize = batches.iter().map(Vec::len).sum::<usize>() + tail.len();
        prop_assert_eq!(merged.count(), total as u64);
    }

    /// Epoch wrap-around: rotating more times than the ring holds evicts
    /// oldest-first and only oldest — every epoch within the retention
    /// horizon still serves exactly its own batch, every epoch past it
    /// reads back as `None`, and the slot a new live window reuses starts
    /// empty (rotation reset it).
    #[test]
    fn wrap_around_evicts_oldest_first(
        batch_sizes in prop::collection::vec(1usize..20, 4..16),
        windows in 2usize..6,
    ) {
        let h = WindowedHistogram::new(windows);
        for (i, &n) in batch_sizes.iter().enumerate() {
            for _ in 0..n {
                h.record(i as u64 + 1);
            }
            let completed = h.rotate();
            prop_assert_eq!(completed, i as u64);
            // The freshly opened live window reuses a cleared slot.
            prop_assert_eq!(h.live().count(), 0);
        }

        let live = h.epoch();
        prop_assert_eq!(live, batch_sizes.len() as u64);
        for (e, &n) in batch_sizes.iter().enumerate() {
            let e = e as u64;
            match h.window(e) {
                Some(win) => {
                    // Within the horizon: the batch survived intact.
                    prop_assert!(live - e < windows as u64, "epoch {e} should be evicted");
                    prop_assert_eq!(win.count(), n as u64);
                    prop_assert_eq!(win.sum(), n as u64 * (e + 1));
                }
                None => {
                    // Past the horizon: evicted, and only because of age.
                    prop_assert!(live - e >= windows as u64, "epoch {e} evicted too early");
                }
            }
        }
        // Epochs that never happened are not retained either.
        prop_assert!(h.window(live + 1).is_none());
    }

    /// The history ring mirrors the windowed histogram's retention
    /// semantics at the summary level: the newest `cap` pushes survive in
    /// push order, everything older is gone, and lookup by epoch agrees
    /// with the snapshot.
    #[test]
    fn history_ring_keeps_the_newest_cap_windows(
        pushes in 1usize..40,
        cap in 1usize..8,
    ) {
        let ring = HistoryRing::new(cap);
        for i in 0..pushes {
            ring.push(HistoryWindow {
                window: i as u64,
                end_ns: (i as u64 + 1) * 1_000_000,
                dur_ns: 1_000_000,
                queries: i as u64 * 10,
                qps: i as f64,
                cells: Vec::new(),
            });
        }
        prop_assert_eq!(ring.len(), pushes.min(cap));

        let snap = ring.snapshot();
        let oldest_retained = pushes - pushes.min(cap);
        for (slot, w) in snap.iter().enumerate() {
            // Oldest-first, dense, ending at the newest push.
            prop_assert_eq!(w.window, (oldest_retained + slot) as u64);
        }
        for i in 0..pushes as u64 {
            let hit = ring.window(i);
            if i >= oldest_retained as u64 {
                prop_assert_eq!(hit.map(|w| w.queries), Some(i * 10));
            } else {
                prop_assert!(hit.is_none(), "window {i} should have been evicted");
            }
        }
    }

    /// Percentile extraction stays internally ordered no matter how many
    /// histograms were merged into the snapshot, and merging is lossless in
    /// count/sum/max.
    #[test]
    fn percentiles_stay_monotone_across_merges(
        parts in prop::collection::vec(
            prop::collection::vec(0u64..10_000_000_000, 1..60),
            1..6,
        ),
    ) {
        let merged = Histogram::new();
        let direct = Histogram::new();
        for part in &parts {
            let h = Histogram::new();
            for &v in part {
                h.record(v);
                direct.record(v);
            }
            h.merge_into(&merged);
        }
        let s = merged.summary();
        prop_assert!(s.p50 <= s.p95, "{s:?}");
        prop_assert!(s.p95 <= s.p99, "{s:?}");
        prop_assert!(s.p99 <= s.max, "{s:?}");
        // Merge ≡ direct recording, field for field.
        prop_assert_eq!(s, direct.summary());
    }
}
