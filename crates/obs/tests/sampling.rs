//! Properties of the 1-in-N span sampler and the scale-up estimate.
//!
//! Needs the `enabled` feature (`cargo test -p parcsr-obs --features
//! enabled`). Only `sampler_keeps_ceil_k_over_n` touches the process-global
//! span sink — it is the single sink-touching test in this binary, so the
//! harness running test functions concurrently cannot interleave recordings.
//! The aggregation properties operate on synthetic records and are pure.
#![cfg(feature = "enabled")]

use parcsr_obs::{self as obs, export::aggregate_stages, SpanArgs, SpanRecord};
use proptest::prelude::*;

proptest! {
    /// `k` same-name spans on one thread at period `N` yield exactly
    /// `⌈k/N⌉` records, each stamped with the period, and the phase
    /// realigns after a drain (the next span is kept again).
    #[test]
    fn sampler_keeps_ceil_k_over_n(k in 1usize..80, n in 1u32..17) {
        obs::set_enabled(true);
        obs::set_trace_sample(n);
        let _ = obs::drain(); // clean sink + fresh sampler phase

        for _ in 0..k {
            obs::span!("sampling.probe", {});
        }
        let records = obs::drain();
        let kept: Vec<&SpanRecord> = records
            .iter()
            .filter(|r| r.name == "sampling.probe")
            .collect();
        let expect = k.div_ceil(n as usize);
        prop_assert_eq!(kept.len(), expect, "k={} n={}", k, n);
        for r in &kept {
            prop_assert_eq!(r.sample, n);
            prop_assert_eq!(r.depth, 0);
        }

        // Drain realigned the phase: the very next span is kept.
        obs::span!("sampling.probe", {});
        let records = obs::drain();
        prop_assert_eq!(
            records.iter().filter(|r| r.name == "sampling.probe").count(),
            1
        );
        obs::set_trace_sample(1);
        obs::set_enabled(false);
    }

    /// The Horvitz–Thompson scale-up brackets the true call count: for `k`
    /// spans thinned at period `N`, the estimate `⌈k/N⌉·N` sits in
    /// `[k, k+N-1]`, and with uniform durations the estimated total is off
    /// by at most a factor `(N-1)/k`.
    #[test]
    fn aggregate_scale_up_is_bounded(k in 1u64..200, n in 1u32..17, dur in 1u64..10_000) {
        let kept = k.div_ceil(u64::from(n));
        let spans: Vec<SpanRecord> = (0..kept)
            .map(|i| SpanRecord {
                name: "stage",
                start_ns: i * dur,
                dur_ns: dur,
                tid: 0,
                depth: 0,
                sample: n,
                args: SpanArgs::new(),
                mem_peak: 0,
                mem_live: 0,
            })
            .collect();
        let agg = aggregate_stages(&spans, false);
        prop_assert_eq!(agg.len(), 1);
        prop_assert_eq!(agg[0].kept, kept);
        prop_assert!(agg[0].calls >= k, "estimate {} under true {}", agg[0].calls, k);
        prop_assert!(
            agg[0].calls < k + u64::from(n),
            "estimate {} exceeds {} + {} - 1",
            agg[0].calls,
            k,
            n
        );
        let true_total_ms = (k * dur) as f64 / 1e6;
        let est_total_ms = agg[0].total_ms;
        let bound = true_total_ms * (1.0 + f64::from(n - 1) / k as f64) + 1e-12;
        prop_assert!(est_total_ms >= true_total_ms - 1e-12);
        prop_assert!(
            est_total_ms <= bound,
            "estimate {} above bound {}",
            est_total_ms,
            bound
        );
    }

    /// Unsampled records (`sample = 1`) aggregate without any inflation:
    /// calls == kept and totals are exact sums.
    #[test]
    fn unsampled_aggregation_is_exact(durs in prop::collection::vec(1u64..1_000_000, 1..50)) {
        let spans: Vec<SpanRecord> = durs
            .iter()
            .enumerate()
            .map(|(i, &d)| SpanRecord {
                name: "stage",
                start_ns: i as u64 * 2_000_000,
                dur_ns: d,
                tid: 0,
                depth: 0,
                sample: 1,
                args: SpanArgs::new(),
                mem_peak: 0,
                mem_live: 0,
            })
            .collect();
        let agg = aggregate_stages(&spans, false);
        prop_assert_eq!(agg[0].calls, durs.len() as u64);
        prop_assert_eq!(agg[0].kept, durs.len() as u64);
        let exact_ms = durs.iter().sum::<u64>() as f64 / 1e6;
        prop_assert!((agg[0].total_ms - exact_ms).abs() < 1e-9);
    }
}
