//! With the `enabled` feature off (the workspace default), every facade
//! entry point must be callable and record nothing — this is the
//! configuration every production crate builds in.
#![cfg(not(feature = "enabled"))]

use parcsr_obs::{self as obs, export, metrics};

#[test]
fn facade_is_inert_without_the_feature() {
    assert!(!obs::compiled());
    obs::set_enabled(true); // no-op: the switch needs the feature
    assert!(!obs::is_enabled());

    {
        obs::span!("stage");
        let _guard = obs::enter("nested");
        assert_eq!(obs::with_span("inner", || 7), 7);
    }
    assert!(obs::drain().is_empty());

    metrics::counter("c").inc();
    metrics::gauge("g").set(9);
    metrics::histogram("h").record(100);
    {
        let _t = metrics::time_histogram(&metrics::wellknown::HAS_EDGE_NS);
    }
    assert_eq!(metrics::wellknown::HAS_EDGE_NS.count(), 0);
    let snap = metrics::snapshot();
    assert!(snap.is_empty());

    let note = export::summary_table(&obs::drain(), &snap);
    assert!(note.contains("nothing recorded"));
    assert!(note.contains("without the `enabled` feature"));
}

#[test]
fn guards_are_zero_sized_when_disabled() {
    // The zero-overhead claim, checked structurally: disabled guards carry
    // no state at all.
    assert_eq!(std::mem::size_of::<parcsr_obs::Span>(), 0);
    assert_eq!(std::mem::size_of::<parcsr_obs::QueryTimer>(), 0);
    assert_eq!(std::mem::size_of::<parcsr_obs::metrics::CounterHandle>(), 0);
    assert_eq!(std::mem::size_of::<parcsr_obs::metrics::GaugeHandle>(), 0);
    assert_eq!(
        std::mem::size_of::<parcsr_obs::metrics::HistogramHandle>(),
        0
    );
}
