//! With the `enabled` feature off (the workspace default), every facade
//! entry point must be callable and record nothing — this is the
//! configuration every production crate builds in.
#![cfg(not(feature = "enabled"))]

use parcsr_obs::{self as obs, export, metrics};

#[test]
fn facade_is_inert_without_the_feature() {
    assert!(!obs::compiled());
    obs::set_enabled(true); // no-op: the switch needs the feature
    assert!(!obs::is_enabled());

    {
        obs::span!("stage");
        obs::span!("stage.args", edges = 10u64, chunk = 0u64);
        let block = obs::span!("stage.block", { 3 });
        assert_eq!(block, 3);
        let _guard = obs::enter("nested");
        let _guard2 = obs::enter_with_args("nested.args", obs::SpanArgs::new().bits(7));
        assert_eq!(obs::with_span("inner", || 7), 7);
        assert_eq!(
            obs::with_span_args("inner.args", obs::SpanArgs::new().edges(1), || 8),
            8
        );
    }
    assert!(obs::drain().is_empty());

    // Sampling and memory knobs are inert too.
    obs::set_trace_sample(8);
    assert_eq!(obs::trace_sample(), 1);
    obs::mem::set_enabled(true);
    assert!(!obs::mem::active());
    assert_eq!(obs::mem::snapshot(), None);
    assert_eq!(obs::mem::live_bytes(), 0);
    assert_eq!(obs::mem::peak_bytes(), 0);
    obs::mem::reset_watermark();
    obs::mem::publish_gauges();
    obs::mem::set_sample_period(4);
    assert_eq!(obs::mem::sample_period(), 0);
    assert_eq!(obs::mem::span_mark_save(), 0);
    assert_eq!(obs::mem::span_mark_restore(7), 0);

    // The analyzer is plain arithmetic and stays available, but a disabled
    // build has nothing to feed it.
    let analysis = parcsr_obs::analyze::analyze_records(&obs::drain());
    assert!(analysis.instances.is_empty() && analysis.stages.is_empty());

    metrics::counter("c").inc();
    metrics::gauge("g").set(9);
    metrics::histogram("h").record(100);
    {
        let _t = metrics::time_histogram(&metrics::wellknown::HAS_EDGE_NS);
    }
    assert_eq!(metrics::wellknown::HAS_EDGE_NS.count(), 0);
    let snap = metrics::snapshot();
    assert!(snap.is_empty());

    let note = export::summary_table(&obs::drain(), &snap, obs::mem::snapshot());
    assert!(note.contains("nothing recorded"));
    assert!(note.contains("without the `enabled` feature"));
}

#[test]
fn guards_are_zero_sized_when_disabled() {
    // The zero-overhead claim, checked structurally: disabled guards carry
    // no state at all.
    assert_eq!(std::mem::size_of::<parcsr_obs::Span>(), 0);
    assert_eq!(std::mem::size_of::<parcsr_obs::QueryTimer>(), 0);
    assert_eq!(std::mem::size_of::<parcsr_obs::metrics::CounterHandle>(), 0);
    assert_eq!(std::mem::size_of::<parcsr_obs::metrics::GaugeHandle>(), 0);
    assert_eq!(
        std::mem::size_of::<parcsr_obs::metrics::HistogramHandle>(),
        0
    );
}
