//! Regression test for the `span!` nesting footgun.
//!
//! The bare statement form `span!("a"); span!("b");` keeps both guards
//! alive to the end of the scope, so `b` records *inside* `a` (depth 1) —
//! correct for enclosing a region, surprising for timing two sequential
//! stages. The block form `span!("a", { ... })` and `with_span` drop the
//! guard at the end of the stage, producing siblings. This file pins both
//! behaviors so a macro refactor cannot silently change recorded depths.
//!
//! Needs the `enabled` feature; one test function because spans land in a
//! process-global sink.
#![cfg(feature = "enabled")]

use parcsr_obs::{self as obs, SpanRecord};

fn depth_of(records: &[SpanRecord], name: &str) -> u16 {
    records
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no span named {name}"))
        .depth
}

#[test]
fn span_macro_forms_record_the_documented_depths() {
    obs::set_enabled(true);
    obs::set_trace_sample(1);
    let _ = obs::drain();

    // Block form: sequential stages are siblings.
    let a = obs::span!("seq.a", { 40 + 1 });
    obs::span!("seq.b", {
        assert_eq!(a, 41);
    });
    let records = obs::drain();
    assert_eq!(depth_of(&records, "seq.a"), 0);
    assert_eq!(depth_of(&records, "seq.b"), 0, "block form must not nest");
    let (a, b) = (
        records.iter().find(|r| r.name == "seq.a").unwrap(),
        records.iter().find(|r| r.name == "seq.b").unwrap(),
    );
    assert!(
        a.end_ns() <= b.start_ns,
        "block-form spans must not overlap"
    );

    // Bare statement form: guards coexist to scope end, so later spans in
    // the same scope record as children of earlier ones — the footgun.
    {
        obs::span!("bare.outer");
        obs::span!("bare.inner");
    }
    let records = obs::drain();
    assert_eq!(depth_of(&records, "bare.outer"), 0);
    assert_eq!(
        depth_of(&records, "bare.inner"),
        1,
        "bare statement spans in one scope nest by design"
    );

    // `with_span` sequences are siblings too.
    obs::with_span("ws.a", || ());
    obs::with_span("ws.b", || ());
    let records = obs::drain();
    assert_eq!(depth_of(&records, "ws.a"), 0);
    assert_eq!(depth_of(&records, "ws.b"), 0);

    // Args forms record their payload in both shapes.
    obs::span!("args.block", edges = 9u64, bits = 3u32, {});
    {
        obs::span!("args.bare", chunk = 2u64, chunk_len = 64u64);
    }
    let records = obs::drain();
    let block = records.iter().find(|r| r.name == "args.block").unwrap();
    assert_eq!(block.args.edges, Some(9));
    assert_eq!(block.args.bits, Some(3));
    let bare = records.iter().find(|r| r.name == "args.bare").unwrap();
    assert_eq!(bare.args.chunk, Some(2));
    assert_eq!(bare.args.chunk_len, Some(64));

    obs::set_enabled(false);
}
