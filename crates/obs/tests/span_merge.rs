//! Span nesting and merge-at-join behavior. Needs the `enabled` feature
//! (`cargo test -p parcsr-obs --features enabled`); the whole file is one
//! test because spans land in a process-global sink and Rust runs tests in
//! the same binary concurrently.
#![cfg(feature = "enabled")]

use parcsr_obs::{self as obs, export, json::Json, metrics, SpanRecord};
use rayon::prelude::*;

fn find<'a>(records: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    records
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no span named {name}"))
}

#[test]
fn spans_nest_merge_at_join_and_export() {
    // --- runtime off: nothing is recorded ------------------------------
    obs::set_enabled(false);
    {
        obs::span!("ignored");
    }
    assert!(obs::drain().is_empty(), "recording while disabled");

    obs::set_enabled(true);

    // --- nesting on the coordinator ------------------------------------
    {
        let _outer = obs::enter("outer");
        let inner_result = obs::with_span("inner", || 41 + 1);
        assert_eq!(inner_result, 42);
    }
    let records = obs::drain();
    assert_eq!(records.len(), 2);
    let outer = find(&records, "outer");
    let inner = find(&records, "inner");
    assert_eq!(outer.tid, 0);
    assert_eq!(inner.tid, 0);
    assert_eq!(outer.depth, 0);
    assert_eq!(inner.depth, 1);
    assert!(outer.start_ns <= inner.start_ns);
    assert!(inner.end_ns() <= outer.end_ns());

    // --- worker spans merge into the sink at join ----------------------
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    pool.install(|| {
        let _region = obs::enter("region");
        (0..4u64).into_par_iter().for_each(|_| {
            let _w = obs::enter("work.chunk");
            std::hint::black_box((0..20_000u64).sum::<u64>());
        });
    });
    // Workers exited at the join inside `install`; their buffers must
    // already be in the sink when the coordinator drains.
    let records = obs::drain();
    let worker_tids: Vec<u32> = records
        .iter()
        .filter(|r| r.name == "work.chunk")
        .map(|r| r.tid)
        .collect();
    assert_eq!(worker_tids.len(), 4);
    let mut unique = worker_tids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique, [1, 2, 3, 4], "one chunk per worker at width 4");
    assert_eq!(find(&records, "region").tid, 0);

    // --- chrome trace export: well-formed, time-ordered per thread -----
    let json_text = export::chrome_trace_json(&records).pretty();
    let parsed = Json::parse(&json_text).expect("trace must be valid JSON");
    let events = parsed.as_array().expect("trace is an array");
    assert_eq!(events.len(), records.len());
    let mut last_ts_per_tid: std::collections::BTreeMap<i64, f64> = Default::default();
    for e in events {
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        let tid = e.get("tid").unwrap().as_i64().unwrap();
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        if let Some(prev) = last_ts_per_tid.insert(tid, ts) {
            assert!(ts >= prev, "events out of order on tid {tid}");
        }
    }

    // --- summary table over real spans ---------------------------------
    let table = export::summary_table(&records, &metrics::snapshot(), obs::mem::snapshot());
    assert!(table.contains("work.chunk"));
    assert!(table.contains("region"));

    // --- unsampled records carry period 1 and empty args ----------------
    for r in &records {
        assert_eq!(r.sample, 1);
        assert!(r.args.is_empty());
        assert_eq!(r.mem_peak, 0, "no counting allocator in this test binary");
    }

    // --- span args thread through to the records ------------------------
    {
        obs::span!("args.guard", edges = 64u64, bits = 5u32);
    }
    obs::with_span_args(
        "args.closure",
        obs::SpanArgs::new().chunk(2).chunk_len(16),
        || (),
    );
    let records = obs::drain();
    let g = find(&records, "args.guard");
    assert_eq!(g.args.edges, Some(64));
    assert_eq!(g.args.bits, Some(5));
    assert_eq!(g.args.chunk, None);
    let c = find(&records, "args.closure");
    assert_eq!(c.args.chunk, Some(2));
    assert_eq!(c.args.chunk_len, Some(16));

    // --- metrics facade respects the runtime switch --------------------
    metrics::counter("test.events").add(2);
    metrics::gauge("test.width").set(4);
    metrics::wellknown::HAS_EDGE_NS.reset();
    {
        let _t = metrics::time_histogram(&metrics::wellknown::HAS_EDGE_NS);
        std::hint::black_box((0..1000u64).sum::<u64>());
    }
    let snap = metrics::snapshot();
    assert!(snap
        .counters
        .iter()
        .any(|(n, v)| n == "test.events" && *v == 2));
    assert!(snap
        .gauges
        .iter()
        .any(|(n, v)| n == "test.width" && *v == 4));
    assert!(snap
        .histograms
        .iter()
        .any(|(n, h)| n == "query.has_edge_ns" && h.count == 1));

    obs::set_enabled(false);
    metrics::counter("test.events").add(5);
    let snap = metrics::snapshot();
    assert!(
        snap.counters
            .iter()
            .any(|(n, v)| n == "test.events" && *v == 2),
        "counter must not move while runtime-disabled"
    );
}
