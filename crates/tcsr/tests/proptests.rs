//! Property tests for the temporal pipeline: the differential TCSR must agree
//! with a sequential replay of the event stream for arbitrary event sets,
//! frame counts and processor counts.

use proptest::prelude::*;

use parcsr_graph::{TemporalEdge, TemporalEdgeList};
use parcsr_temporal::{sym_diff, FrameMode, TcsrBuilder};

fn arb_events(
    nodes: u32,
    frames: u32,
    max_events: usize,
) -> impl Strategy<Value = TemporalEdgeList> {
    prop::collection::vec((0..nodes, 0..nodes, 0..frames), 0..max_events).prop_map(move |evs| {
        TemporalEdgeList::new(
            nodes as usize,
            evs.into_iter()
                .map(|(u, v, t)| TemporalEdge::new(u, v, t))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshots_match_replay(events in arb_events(24, 8, 200), p in 1usize..9) {
        let tcsr = TcsrBuilder::new().processors(p).build(&events);
        for t in 0..events.num_frames() as u32 {
            prop_assert_eq!(tcsr.snapshot_at(t), events.snapshot_at(t), "frame {}", t);
        }
    }

    #[test]
    fn snapshots_all_is_the_scan_of_snapshot_at(
        events in arb_events(16, 10, 150),
        p in 1usize..7,
    ) {
        let tcsr = TcsrBuilder::new().build(&events);
        let all = tcsr.snapshots_all(p);
        prop_assert_eq!(all.len(), events.num_frames());
        for (t, snap) in all.into_iter().enumerate() {
            prop_assert_eq!(snap, events.snapshot_at(t as u32), "frame {}", t);
        }
    }

    #[test]
    fn edge_activity_parity(events in arb_events(12, 6, 120), u in 0u32..12, v in 0u32..12) {
        let tcsr = TcsrBuilder::new().build(&events);
        for t in 0..events.num_frames() as u32 {
            let toggles = events
                .events()
                .iter()
                .filter(|e| e.u == u && e.v == v && e.t <= t)
                .count();
            prop_assert_eq!(
                tcsr.edge_active_at(u, v, t),
                toggles % 2 == 1,
                "({}, {}) frame {}",
                u, v, t
            );
        }
    }

    #[test]
    fn builder_is_processor_invariant(events in arb_events(20, 6, 150)) {
        let base = TcsrBuilder::new().processors(1).build(&events);
        for p in [2usize, 3, 8, 17] {
            prop_assert_eq!(&TcsrBuilder::new().processors(p).build(&events), &base, "p={}", p);
        }
    }

    #[test]
    fn frame_modes_agree(events in arb_events(20, 5, 120)) {
        let r = TcsrBuilder::new().frame_mode(FrameMode::Random).build(&events);
        let g = TcsrBuilder::new().frame_mode(FrameMode::Gap).build(&events);
        for t in 0..events.num_frames() as u32 {
            prop_assert_eq!(r.snapshot_at(t), g.snapshot_at(t));
        }
        // Gap frames never use more bits than random-access frames on the
        // same content... not guaranteed in pathological cases, but total
        // content must agree:
        prop_assert_eq!(r.num_frames(), g.num_frames());
    }

    #[test]
    fn sym_diff_monoid_laws(
        a in prop::collection::btree_set(0u64..1000, 0..50),
        b in prop::collection::btree_set(0u64..1000, 0..50),
        c in prop::collection::btree_set(0u64..1000, 0..50),
    ) {
        let a: Vec<u64> = a.into_iter().collect();
        let b: Vec<u64> = b.into_iter().collect();
        let c: Vec<u64> = c.into_iter().collect();
        // Associativity.
        prop_assert_eq!(
            sym_diff(&sym_diff(&a, &b), &c),
            sym_diff(&a, &sym_diff(&b, &c))
        );
        // Identity and self-inverse.
        prop_assert_eq!(sym_diff(&a, &[]), a.clone());
        prop_assert_eq!(sym_diff(&a, &a), Vec::<u64>::new());
        // Commutativity.
        prop_assert_eq!(sym_diff(&a, &b), sym_diff(&b, &a));
    }

    #[test]
    fn neighbors_at_consistent_with_snapshot(events in arb_events(16, 6, 150), u in 0u32..16) {
        let tcsr = TcsrBuilder::new().build(&events);
        for t in 0..events.num_frames() as u32 {
            let expect: Vec<u32> = events
                .snapshot_at(t)
                .into_iter()
                .filter(|&(s, _)| s == u)
                .map(|(_, v)| v)
                .collect();
            prop_assert_eq!(tcsr.neighbors_at(u, t), expect, "u={} t={}", u, t);
        }
    }
}
