//! Schedule-exploration tests for the TCSR boundary-frame merge (Algorithm
//! 5). Compiled (and run) only under `RUSTFLAGS="--cfg parcsr_check"`.
#![cfg(parcsr_check)]

use parcsr_check as check;
use parcsr_graph::TemporalEdge;
use parcsr_temporal::builder::checked::{frame_merge_model, TcsrFault};

/// Serial parity reference: a key is present in a frame iff it was toggled
/// an odd number of times.
fn reference(events: &[TemporalEdge], num_frames: usize) -> Vec<Vec<u64>> {
    let mut out = vec![Vec::new(); num_frames];
    let mut i = 0;
    while i < events.len() {
        let (t, u, v) = (events[i].t, events[i].u, events[i].v);
        let mut count = 0;
        while i < events.len() && (events[i].t, events[i].u, events[i].v) == (t, u, v) {
            count += 1;
            i += 1;
        }
        if count % 2 == 1 {
            out[t as usize].push((u64::from(u) << 32) | u64::from(v));
        }
    }
    out
}

/// Figure-4-shaped stream where frame 0 straddles the p = 2 boundary: the
/// collect-then-merge structure is race-free in every interleaving and the
/// seam parity collapse still cancels the split duplicate pair.
#[test]
fn boundary_frame_merge_race_free_p2() {
    // Events sorted by (t, u, v); the (0,2) pair splits across the chunks.
    let events = vec![
        TemporalEdge::new(0, 1, 0),
        TemporalEdge::new(0, 2, 0),
        TemporalEdge::new(0, 2, 0),
        TemporalEdge::new(1, 2, 0),
        TemporalEdge::new(0, 1, 1),
    ];
    let want = reference(&events, 2);
    let report = check::model(|| {
        let got = frame_merge_model(events.clone(), 2, 2, TcsrFault::None);
        assert_eq!(got, want);
    });
    assert!(report.executions >= 2, "executions = {}", report.executions);
}

/// Three chunks, all sharing the single frame 0.
#[test]
fn boundary_frame_merge_race_free_p3() {
    let events: Vec<TemporalEdge> = (0..6).map(|i| TemporalEdge::new(0, i + 1, 0)).collect();
    let want = reference(&events, 1);
    let report = check::model(|| {
        let got = frame_merge_model(events.clone(), 1, 3, TcsrFault::None);
        assert_eq!(got, want);
    });
    assert!(report.executions >= 6, "executions = {}", report.executions);
}

/// Seeded race: merging inside the chunk pass makes two chunks
/// read-modify-write the straddling frame's slot concurrently.
#[test]
fn merge_in_chunk_races_on_straddling_frame() {
    let events = vec![
        TemporalEdge::new(0, 1, 0),
        TemporalEdge::new(0, 2, 0),
        TemporalEdge::new(0, 2, 0),
        TemporalEdge::new(1, 2, 0),
    ];
    let err = check::check(|| {
        frame_merge_model(events.clone(), 1, 2, TcsrFault::MergeInChunk);
    })
    .expect_err("unsynchronized boundary-frame merge must race");
    assert_eq!(err.location, "tcsr.per_frame");
    assert_eq!(err.index, 0, "the race is on the straddling frame");
}

/// When chunk boundaries coincide with frame boundaries, even the faulty
/// in-chunk merge touches disjoint slots and is race-free — the checker's
/// verdict tracks the actual frame overlap.
#[test]
fn frame_aligned_chunks_hide_the_seeded_fault() {
    let events = vec![
        TemporalEdge::new(0, 1, 0),
        TemporalEdge::new(1, 2, 0),
        TemporalEdge::new(0, 1, 1),
        TemporalEdge::new(2, 0, 1),
    ];
    let want = reference(&events, 2);
    check::model(|| {
        let got = frame_merge_model(events.clone(), 2, 2, TcsrFault::MergeInChunk);
        assert_eq!(got, want);
    });
}
