//! Algorithm 5: parallel construction of the differential TCSR.
//!
//! The time-sorted event list is divided into one chunk per processor. Each
//! chunk groups its events by frame and parity-collapses duplicates,
//! producing per-frame difference lists. A frame that straddles a chunk
//! boundary appears in two (or more) chunks — "there could be an overlap
//! similar to that of computation of degree in Section III-A2" — so a merge
//! step concatenates the boundary pieces (still sorted, because events are
//! sorted by `(t, u, v)`) and re-collapses parity across the seam. Each
//! final difference list is then bit-packed in parallel (Algorithm 4's
//! engine).

use rayon::prelude::*;

use parcsr_graph::{TemporalEdge, TemporalEdgeList, Timestamp};
use parcsr_runtime::{run_chunked_plan, ChunkPolicy};

use crate::frame::{key, DeltaFrame, FrameMode};
use crate::tcsr::Tcsr;

/// Per-chunk pass of Algorithm 5 over a `(t, u, v)`-sorted event chunk:
/// groups events by frame and parity-collapses duplicates, returning
/// `(frame, sorted collapsed key list)` in frame order.
///
/// Shared between [`TcsrBuilder::build`] and the `cfg(parcsr_check)` model,
/// so the checker exercises the shipped grouping logic.
fn collapse_chunk(chunk: &[TemporalEdge]) -> Vec<(Timestamp, Vec<u64>)> {
    let mut frames: Vec<(Timestamp, Vec<u64>)> = Vec::new();
    let mut i = 0;
    while i < chunk.len() {
        let t = chunk[i].t;
        let mut keys: Vec<u64> = Vec::new();
        while i < chunk.len() && chunk[i].t == t {
            let k = key(chunk[i].u, chunk[i].v);
            // Parity collapse within the chunk: equal events are adjacent
            // (sorted stream).
            let mut count = 0usize;
            while i < chunk.len() && chunk[i].t == t && key(chunk[i].u, chunk[i].v) == k {
                count += 1;
                i += 1;
            }
            if count % 2 == 1 {
                keys.push(k);
            }
        }
        frames.push((t, keys));
    }
    frames
}

/// Appends one chunk's piece of a frame to the frame's accumulated key
/// list, re-collapsing parity across the seam: identical keys meeting at
/// the join cancel in pairs. Both lists are sorted; concatenation keeps
/// them sorted because chunks arrive in stream order.
fn merge_frame_piece(slot: &mut Vec<u64>, mut keys: Vec<u64>) {
    if slot.is_empty() {
        *slot = keys;
        return;
    }
    while let (Some(&last), Some(&first)) = (slot.last(), keys.first()) {
        if last == first {
            slot.pop();
            keys.remove(0);
        } else {
            break;
        }
    }
    slot.append(&mut keys);
}

/// Configurable parallel TCSR builder.
#[derive(Debug, Clone, Copy)]
pub struct TcsrBuilder {
    processors: usize,
    mode: FrameMode,
    chunk_policy: ChunkPolicy,
}

impl TcsrBuilder {
    /// Defaults: one chunk per current rayon thread, random-access frames.
    pub fn new() -> Self {
        TcsrBuilder {
            processors: rayon::current_num_threads(),
            mode: FrameMode::Random,
            chunk_policy: ChunkPolicy::default(),
        }
    }

    /// Sets the logical processor count.
    pub fn processors(mut self, p: usize) -> Self {
        self.processors = p.max(1);
        self
    }

    /// Sets the frame storage mode.
    pub fn frame_mode(mut self, mode: FrameMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the chunking policy. Events carry no offsets array to weight
    /// by, so both policies currently fall back to the count split; the
    /// knob exists so callers can thread one policy through the whole
    /// pipeline.
    pub fn chunk_policy(mut self, policy: ChunkPolicy) -> Self {
        self.chunk_policy = policy;
        self
    }

    /// Builds the differential TCSR from a time-sorted event list.
    pub fn build(&self, events: &TemporalEdgeList) -> Tcsr {
        let num_frames = events.num_frames();
        let evs = events.events();
        let plan = self.chunk_policy.plan_uniform(evs.len(), self.processors);

        // Per chunk: (frame, sorted parity-collapsed key list) in frame
        // order. Chunks see disjoint event ranges of the (t, u, v)-sorted
        // stream, so each chunk's frames are contiguous and its keys sorted.
        let chunk_frames: Vec<Vec<(Timestamp, Vec<u64>)>> = parcsr_obs::with_span_args(
            "tcsr.collapse",
            parcsr_obs::SpanArgs::new().edges(evs.len() as u64),
            || {
                run_chunked_plan("tcsr.chunk", plan, |chunk| {
                    collapse_chunk(&evs[chunk.range.clone()])
                })
            },
        );
        // collect() is the sync(): all chunk-local CSR pieces exist before
        // the boundary merge.

        // Merge step: concatenate per-frame pieces across chunks. Only the
        // boundary frame of adjacent chunks can collide; concatenation keeps
        // keys sorted, but a key pair split exactly at the seam needs one
        // more parity collapse.
        let mut per_frame: Vec<Vec<u64>> = vec![Vec::new(); num_frames];
        parcsr_obs::with_span("tcsr.merge", || {
            for frames in chunk_frames {
                for (t, keys) in frames {
                    merge_frame_piece(&mut per_frame[t as usize], keys);
                }
            }
        });

        // Pack every frame (parallel over frames; each pack is itself
        // chunk-parallel for large frames).
        let mode = self.mode;
        let p = self.processors;
        let frames: Vec<DeltaFrame> = parcsr_obs::with_span("tcsr.pack", || {
            per_frame
                .into_par_iter()
                .map(|keys| DeltaFrame::from_sorted_keys(&keys, mode, p))
                .collect()
        });

        Tcsr::from_frames(events.num_nodes(), frames)
    }
}

impl Default for TcsrBuilder {
    fn default() -> Self {
        TcsrBuilder::new()
    }
}

/// Schedule-checked model of Algorithm 5's chunk pass + boundary-frame
/// merge (compiled only under `--cfg parcsr_check`).
#[cfg(parcsr_check)]
pub mod checked {
    use std::sync::Arc;

    use parcsr_check as check;
    use parcsr_graph::TemporalEdge;
    use parcsr_scan::chunk_ranges;

    use super::{collapse_chunk, merge_frame_piece};

    /// Known-bad variants of the TCSR build, used to validate the checker.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TcsrFault {
        /// The shipped collect-then-merge structure (must be race-free).
        None,
        /// Skips the sync between the chunk pass and the merge: each chunk
        /// merges its frame pieces into the shared per-frame table itself.
        /// Racy whenever a frame straddles a chunk boundary — the overlap
        /// the paper notes is "similar to that of computation of degree".
        MergeInChunk,
    }

    /// Model of [`super::TcsrBuilder::build`]'s frame-merge structure over
    /// instrumented shared memory: one logical thread per chunk running the
    /// *same* `collapse_chunk` pass as the shipped kernel, with the
    /// per-frame table held in a [`check::Slice`] and joins as the sync
    /// before the coordinator's `merge_frame_piece` loop. Returns the
    /// merged per-frame key lists (bit-packing is per-frame-local and out
    /// of model scope). Must be called inside [`parcsr_check::model`] /
    /// [`parcsr_check::check`].
    pub fn frame_merge_model(
        events: Vec<TemporalEdge>,
        num_frames: usize,
        processors: usize,
        fault: TcsrFault,
    ) -> Vec<Vec<u64>> {
        let ranges = chunk_ranges(events.len(), processors);
        let per_frame =
            check::Slice::new(vec![Vec::<u64>::new(); num_frames]).named("tcsr.per_frame");
        let events = Arc::new(events);

        match fault {
            TcsrFault::None => {
                // Chunk pass: thread-local grouping, results carried back
                // through join (the collect() sync in the real kernel).
                let workers: Vec<_> = ranges
                    .into_iter()
                    .map(|r| {
                        let events = Arc::clone(&events);
                        check::spawn(move || collapse_chunk(&events[r]))
                    })
                    .collect();
                let chunk_frames: Vec<_> = workers.into_iter().map(|h| h.join()).collect();
                // Coordinator merge, ordered after every chunk by the joins.
                for frames in chunk_frames {
                    for (t, keys) in frames {
                        let mut slot = per_frame.read(t as usize);
                        merge_frame_piece(&mut slot, keys);
                        per_frame.write(t as usize, slot);
                    }
                }
            }
            TcsrFault::MergeInChunk => {
                // Seeded race: chunks merge into the shared table without
                // the sync. Two chunks sharing a boundary frame now
                // read-modify-write its slot concurrently.
                let workers: Vec<_> = ranges
                    .into_iter()
                    .map(|r| {
                        let events = Arc::clone(&events);
                        let per_frame = per_frame.clone();
                        check::spawn(move || {
                            for (t, keys) in collapse_chunk(&events[r]) {
                                let mut slot = per_frame.read(t as usize);
                                merge_frame_piece(&mut slot, keys);
                                per_frame.write(t as usize, slot);
                            }
                        })
                    })
                    .collect();
                for h in workers {
                    h.join();
                }
            }
        }
        per_frame.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_graph::gen::{temporal_toggles, TemporalParams};
    use parcsr_graph::TemporalEdge;

    fn figure_4_events() -> TemporalEdgeList {
        TemporalEdgeList::new(
            5,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 0),
                TemporalEdge::new(2, 3, 0),
                TemporalEdge::new(1, 2, 1), // delete
                TemporalEdge::new(3, 4, 1), // add
                TemporalEdge::new(0, 1, 2), // delete
                TemporalEdge::new(1, 2, 3), // re-add
            ],
        )
    }

    #[test]
    fn builds_figure_4_deltas() {
        let tcsr = TcsrBuilder::new().processors(3).build(&figure_4_events());
        assert_eq!(tcsr.num_frames(), 4);
        assert_eq!(tcsr.frame(0).decode_edges(), [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(tcsr.frame(1).decode_edges(), [(1, 2), (3, 4)]);
        assert_eq!(tcsr.frame(2).decode_edges(), [(0, 1)]);
        assert_eq!(tcsr.frame(3).decode_edges(), [(1, 2)]);
    }

    #[test]
    fn processor_count_does_not_change_structure() {
        let events = temporal_toggles(TemporalParams::new(128, 2_000, 8, 9));
        let base = TcsrBuilder::new().processors(1).build(&events);
        for p in [2, 3, 7, 16, 64] {
            let other = TcsrBuilder::new().processors(p).build(&events);
            assert_eq!(other, base, "p={p}");
        }
    }

    #[test]
    fn within_frame_double_toggle_cancels() {
        // (0,1) toggled twice in frame 0 (possible in raw inputs): parity
        // says it never existed.
        let events = TemporalEdgeList::new(
            2,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 0, 0),
            ],
        );
        let tcsr = TcsrBuilder::new().processors(2).build(&events);
        assert_eq!(tcsr.frame(0).decode_edges(), [(1, 0)]);
    }

    #[test]
    fn seam_collapse_across_chunk_boundary() {
        // Two copies of the same event that end up in different chunks with
        // p = 2 (4 events, boundary after the 2nd): the merge must cancel
        // them.
        let events = TemporalEdgeList::new(
            3,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(0, 2, 0),
                TemporalEdge::new(0, 2, 0),
                TemporalEdge::new(1, 2, 0),
            ],
        );
        let tcsr = TcsrBuilder::new().processors(2).build(&events);
        assert_eq!(tcsr.frame(0).decode_edges(), [(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_events() {
        let tcsr = TcsrBuilder::new().build(&TemporalEdgeList::new(4, vec![]));
        assert_eq!(tcsr.num_frames(), 0);
        assert_eq!(tcsr.num_nodes(), 4);
    }

    #[test]
    fn quiet_frames_are_empty_deltas() {
        let events = TemporalEdgeList::new(
            3,
            vec![TemporalEdge::new(0, 1, 0), TemporalEdge::new(1, 2, 4)],
        );
        let tcsr = TcsrBuilder::new().processors(2).build(&events);
        assert_eq!(tcsr.num_frames(), 5);
        for t in 1..4 {
            assert!(tcsr.frame(t).is_empty(), "frame {t}");
        }
    }

    #[test]
    fn frame_modes_store_same_content() {
        let events = temporal_toggles(TemporalParams::new(64, 500, 5, 4));
        let random = TcsrBuilder::new()
            .frame_mode(FrameMode::Random)
            .build(&events);
        let gap = TcsrBuilder::new().frame_mode(FrameMode::Gap).build(&events);
        for t in 0..random.num_frames() as u32 {
            assert_eq!(random.frame(t).decode_keys(), gap.frame(t).decode_keys());
        }
    }
}
