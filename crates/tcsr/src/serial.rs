//! On-disk serialization of the differential TCSR.
//!
//! Format (little-endian):
//!
//! ```text
//! magic     8 B  "PARTCSR\x01"
//! n         8 B  num_nodes
//! frames    8 B  frame count
//! per frame:
//!   mode    1 B  0 = random, 1 = gap
//!   head    9 B  presence flag (0/1) + u64 head key (gap mode; 0 otherwise)
//!   width   4 B  packed width        len 8 B  packed entry count
//!   bits    8 B  bit length, then ceil(bits/64) u64 words
//! ```

use std::io::{self, Read, Write};

use parcsr_bitpack::{BitBuf, PackedArray};

use crate::frame::{DeltaFrame, FrameMode};
use crate::tcsr::Tcsr;

const MAGIC: [u8; 8] = *b"PARTCSR\x01";

/// Errors from deserializing a TCSR.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a TCSR file or unsupported version.
    BadMagic([u8; 8]),
    /// Structurally invalid content.
    Corrupt(&'static str),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::BadMagic(m) => write!(f, "bad magic/version {m:02x?}"),
            ReadError::Corrupt(what) => write!(f, "corrupt tcsr: {what}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl Tcsr {
    /// Serializes into `w`. Deterministic byte output.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&(self.num_nodes() as u64).to_le_bytes())?;
        w.write_all(&(self.num_frames() as u64).to_le_bytes())?;
        for t in 0..self.num_frames() {
            self.frame(t as u32).write_to(w)?;
        }
        Ok(())
    }

    /// Deserializes from `r`, validating headers and frame invariants.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Tcsr, ReadError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(ReadError::BadMagic(magic));
        }
        let num_nodes = read_u64(r)? as usize;
        let num_frames = read_u64(r)? as usize;
        let mut frames = Vec::with_capacity(num_frames.min(1 << 20));
        for _ in 0..num_frames {
            let frame = DeltaFrame::read_from(r)?;
            // Every key's endpoints must fit the node space.
            if let Some(max) = frame.decode_keys().last() {
                let (u, v) = crate::frame::unkey(*max);
                if u as usize >= num_nodes || v as usize >= num_nodes {
                    return Err(ReadError::Corrupt("frame references out-of-range node"));
                }
            }
            frames.push(frame);
        }
        Ok(Tcsr::from_frames(num_nodes, frames))
    }
}

impl DeltaFrame {
    fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let (mode_byte, head) = match self.mode() {
            FrameMode::Random => (0u8, None),
            FrameMode::Gap => (1u8, self.head_key()),
        };
        w.write_all(&[mode_byte])?;
        w.write_all(&[u8::from(head.is_some())])?;
        w.write_all(&head.unwrap_or(0).to_le_bytes())?;
        let keys = self.packed_keys();
        w.write_all(&keys.width().to_le_bytes())?;
        w.write_all(&(keys.len() as u64).to_le_bytes())?;
        let buf = keys.bit_buf();
        w.write_all(&(buf.len() as u64).to_le_bytes())?;
        for &word in buf.words() {
            w.write_all(&word.to_le_bytes())?;
        }
        Ok(())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<DeltaFrame, ReadError> {
        let mode = match read_u8(r)? {
            0 => FrameMode::Random,
            1 => FrameMode::Gap,
            _ => return Err(ReadError::Corrupt("unknown frame mode")),
        };
        let has_head = match read_u8(r)? {
            0 => false,
            1 => true,
            _ => return Err(ReadError::Corrupt("bad head flag")),
        };
        let head_raw = read_u64(r)?;
        if mode == FrameMode::Random && has_head {
            return Err(ReadError::Corrupt("random-mode frame cannot carry a head"));
        }
        let width = read_u32(r)?;
        if !(1..=64).contains(&width) {
            return Err(ReadError::Corrupt("width must be in 1..=64"));
        }
        let len = read_u64(r)? as usize;
        let bits = read_u64(r)? as usize;
        if bits != len * width as usize {
            return Err(ReadError::Corrupt("bit length mismatch"));
        }
        let mut buf = BitBuf::with_capacity(bits);
        let mut scratch = [0u8; 8];
        let mut remaining = bits;
        for _ in 0..bits.div_ceil(64) {
            r.read_exact(&mut scratch)?;
            let word = u64::from_le_bytes(scratch);
            let take = remaining.min(64) as u32;
            if take < 64 && (word >> take) != 0 {
                return Err(ReadError::Corrupt("padding bits must be zero"));
            }
            buf.push_bits(
                if take == 64 {
                    word
                } else {
                    word & ((1u64 << take) - 1)
                },
                take,
            );
            remaining -= take as usize;
        }
        let keys = PackedArray::from_raw_parts(buf, width, len);
        let frame = DeltaFrame::from_raw_parts(mode, has_head.then_some(head_raw), keys)
            .ok_or(ReadError::Corrupt("inconsistent head/keys combination"))?;
        // Keys must be strictly increasing.
        let decoded = frame.decode_keys();
        if !decoded.windows(2).all(|w| w[0] < w[1]) {
            return Err(ReadError::Corrupt("frame keys must be strictly increasing"));
        }
        Ok(frame)
    }
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, ReadError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ReadError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ReadError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TcsrBuilder;
    use parcsr_graph::gen::{temporal_toggles, TemporalParams};

    fn sample(mode: FrameMode) -> Tcsr {
        let events = temporal_toggles(TemporalParams::new(128, 1_500, 10, 3));
        TcsrBuilder::new().frame_mode(mode).build(&events)
    }

    #[test]
    fn roundtrip_both_modes() {
        for mode in [FrameMode::Random, FrameMode::Gap] {
            let tcsr = sample(mode);
            let mut bytes = Vec::new();
            tcsr.write_to(&mut bytes).unwrap();
            let back = Tcsr::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(back, tcsr, "{}", mode.name());
        }
    }

    #[test]
    fn queries_after_roundtrip() {
        let tcsr = sample(FrameMode::Gap);
        let mut bytes = Vec::new();
        tcsr.write_to(&mut bytes).unwrap();
        let back = Tcsr::read_from(&mut bytes.as_slice()).unwrap();
        let last = (tcsr.num_frames() - 1) as u32;
        assert_eq!(back.snapshot_at(last), tcsr.snapshot_at(last));
        assert_eq!(
            back.edge_active_at(3, 7, last),
            tcsr.edge_active_at(3, 7, last)
        );
    }

    #[test]
    fn bad_magic() {
        let err = Tcsr::read_from(&mut &b"NOTATCSR rest of it"[..]).unwrap_err();
        assert!(matches!(err, ReadError::BadMagic(_)));
    }

    #[test]
    fn truncation_detected() {
        let tcsr = sample(FrameMode::Random);
        let mut bytes = Vec::new();
        tcsr.write_to(&mut bytes).unwrap();
        for cut in [4usize, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(Tcsr::read_from(&mut &bytes[..cut]), Err(ReadError::Io(_))),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let tcsr = sample(FrameMode::Random);
        let mut bytes = Vec::new();
        tcsr.write_to(&mut bytes).unwrap();

        // Invalid mode byte on the first frame (offset 24: after magic, n,
        // frame count).
        let mut bad_mode = bytes.clone();
        bad_mode[24] = 7;
        assert!(matches!(
            Tcsr::read_from(&mut bad_mode.as_slice()),
            Err(ReadError::Corrupt("unknown frame mode"))
        ));

        // A head on a random-mode frame (offset 25: the head flag).
        let mut bad_head = bytes.clone();
        bad_head[25] = 1;
        assert!(matches!(
            Tcsr::read_from(&mut bad_head.as_slice()),
            Err(ReadError::Corrupt(_))
        ));

        // Inconsistent bit length (offset 24 + 1 + 1 + 8 + 4 + 8 = 46).
        let mut bad_bits = bytes.clone();
        bad_bits[46] ^= 0xFF;
        assert!(Tcsr::read_from(&mut bad_bits.as_slice()).is_err());
    }

    #[test]
    fn empty_tcsr_roundtrip() {
        let tcsr = Tcsr::from_frames(5, Vec::new());
        let mut bytes = Vec::new();
        tcsr.write_to(&mut bytes).unwrap();
        let back = Tcsr::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.num_frames(), 0);
        assert_eq!(back.num_nodes(), 5);
    }
}
