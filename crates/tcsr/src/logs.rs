//! "Log of events" temporal baselines from the paper's related work
//! (Section II): EveLog and EdgeLog (Caro, Rodríguez, Brisaboa 2015).
//!
//! * [`EveLog`] — per vertex, a compressed log of `(time, neighbor)` toggle
//!   events: time-frames gap-encoded, neighbor ids varint-coded. Answering
//!   "is the arc active at frame t" requires *sequentially scanning the
//!   log*, "possibly deactivating/reactivating the arc, until the time-frame
//!   is reached" — the linear-time weakness the paper's related work calls
//!   out and that the TCSR's parallel reductions avoid.
//! * [`EdgeLog`] — per vertex, an adjacency list where "each neighbor has a
//!   sublist indicating the time intervals when the arc is active",
//!   gap-encoded. Point queries become a binary search over intervals after
//!   locating the neighbor.
//!
//! Both expose the same query API as [`crate::Tcsr`] so the benches compare
//! the three structures on identical workloads.

use parcsr_bitpack::{varint_decode, varint_encode};
use parcsr_graph::{NodeId, TemporalEdgeList, Timestamp};

/// EveLog: per-vertex compressed toggle logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EveLog {
    num_nodes: usize,
    num_frames: usize,
    /// Per-vertex byte offsets into `bytes` (`num_nodes + 1` entries).
    offsets: Vec<usize>,
    /// Concatenated per-vertex logs: each event is
    /// `varint(time gap) ++ varint(neighbor)`, times non-decreasing within a
    /// vertex.
    bytes: Vec<u8>,
}

impl EveLog {
    /// Builds the per-vertex logs from a time-sorted event stream.
    pub fn build(events: &TemporalEdgeList) -> Self {
        let n = events.num_nodes();
        // Bucket events per source vertex, preserving time order (the input
        // is (t, u, v)-sorted, so per-vertex order stays time-sorted).
        let mut per_vertex: Vec<Vec<(Timestamp, NodeId)>> = vec![Vec::new(); n];
        for e in events.events() {
            per_vertex[e.u as usize].push((e.t, e.v));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut bytes = Vec::new();
        offsets.push(0);
        for log in &per_vertex {
            let mut prev_t = 0u32;
            for &(t, v) in log {
                varint_encode(u64::from(t - prev_t), &mut bytes);
                varint_encode(u64::from(v), &mut bytes);
                prev_t = t;
            }
            offsets.push(bytes.len());
        }
        EveLog {
            num_nodes: n,
            num_frames: events.num_frames(),
            offsets,
            bytes,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Compressed size in bytes (logs + directory).
    pub fn packed_bytes(&self) -> usize {
        self.bytes.len() + self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// Whether arc `(u, v)` is active at frame `t`: the characteristic
    /// sequential log scan.
    pub fn edge_active_at(&self, u: NodeId, v: NodeId, t: Timestamp) -> bool {
        let mut active = false;
        self.scan(u, t, |_, w| {
            if w == v {
                active = !active;
            }
        });
        active
    }

    /// Active neighbors of `u` at frame `t` (sorted), by replaying the log.
    pub fn neighbors_at(&self, u: NodeId, t: Timestamp) -> Vec<NodeId> {
        let mut toggles: Vec<NodeId> = Vec::new();
        self.scan(u, t, |_, w| toggles.push(w));
        toggles.sort_unstable();
        // Odd multiplicity = active.
        let mut out = Vec::new();
        let mut i = 0;
        while i < toggles.len() {
            let mut j = i + 1;
            while j < toggles.len() && toggles[j] == toggles[i] {
                j += 1;
            }
            if (j - i) % 2 == 1 {
                out.push(toggles[i]);
            }
            i = j;
        }
        out
    }

    /// Scans `u`'s log up to and including frame `t`.
    fn scan(&self, u: NodeId, t: Timestamp, mut f: impl FnMut(Timestamp, NodeId)) {
        let i = u as usize;
        assert!(i < self.num_nodes, "node {u} out of range");
        let (mut pos, end) = (self.offsets[i], self.offsets[i + 1]);
        let mut time = 0u32;
        while pos < end {
            let (gap, next) = varint_decode(&self.bytes, pos);
            let (v, next) = varint_decode(&self.bytes, next);
            time += gap as u32;
            if time > t {
                return;
            }
            f(time, v as NodeId);
            pos = next;
        }
    }
}

/// EdgeLog: per-vertex neighbor directory with per-arc activity intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeLog {
    num_nodes: usize,
    num_frames: usize,
    /// Per-vertex range into `directory` (`num_nodes + 1` entries).
    vertex_offsets: Vec<usize>,
    /// Sorted neighbor ids per vertex, with each entry's byte offset into
    /// `intervals`.
    directory: Vec<(NodeId, usize)>,
    /// Per-arc interval lists: `varint(count)` then gap-encoded varint
    /// boundaries `s0, e0-s0, s1-e0, …`; a trailing open interval is encoded
    /// with end = num_frames.
    intervals: Vec<u8>,
}

impl EdgeLog {
    /// Builds the interval lists from a time-sorted toggle stream.
    pub fn build(events: &TemporalEdgeList) -> Self {
        let n = events.num_nodes();
        let num_frames = events.num_frames();
        // Group toggles per (u, v), times sorted (input is (t,u,v)-sorted,
        // so re-bucketing by (u, v) preserves per-arc time order).
        let mut per_arc: std::collections::BTreeMap<(NodeId, NodeId), Vec<Timestamp>> =
            std::collections::BTreeMap::new();
        for e in events.events() {
            per_arc.entry((e.u, e.v)).or_default().push(e.t);
        }

        let mut vertex_offsets = vec![0usize; n + 1];
        let mut directory = Vec::with_capacity(per_arc.len());
        let mut intervals = Vec::new();
        let mut counts = vec![0usize; n];
        for (&(u, v), toggles) in &per_arc {
            counts[u as usize] += 1;
            directory.push((v, intervals.len()));
            // Pair up toggles into [start, end) intervals; an unmatched
            // trailing toggle stays active through the last frame.
            let mut bounds: Vec<u32> = Vec::with_capacity(toggles.len() + 1);
            for pair in toggles.chunks(2) {
                bounds.push(pair[0]);
                bounds.push(if pair.len() == 2 {
                    pair[1]
                } else {
                    num_frames as u32
                });
            }
            varint_encode((bounds.len() / 2) as u64, &mut intervals);
            let mut prev = 0u32;
            for &b in &bounds {
                varint_encode(u64::from(b - prev), &mut intervals);
                prev = b;
            }
        }
        // Prefix-sum the per-vertex arc counts into directory offsets.
        for u in 0..n {
            vertex_offsets[u + 1] = vertex_offsets[u] + counts[u];
        }
        EdgeLog {
            num_nodes: n,
            num_frames,
            vertex_offsets,
            directory,
            intervals,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Compressed size in bytes (intervals + directory).
    pub fn packed_bytes(&self) -> usize {
        self.intervals.len()
            + self.directory.len() * std::mem::size_of::<(NodeId, usize)>()
            + self.vertex_offsets.len() * std::mem::size_of::<usize>()
    }

    fn arcs_of(&self, u: NodeId) -> &[(NodeId, usize)] {
        let i = u as usize;
        assert!(i < self.num_nodes, "node {u} out of range");
        &self.directory[self.vertex_offsets[i]..self.vertex_offsets[i + 1]]
    }

    /// Whether arc `(u, v)` is active at frame `t`: binary search the
    /// neighbor directory, then scan the (short) interval list.
    pub fn edge_active_at(&self, u: NodeId, v: NodeId, t: Timestamp) -> bool {
        let arcs = self.arcs_of(u);
        let Ok(idx) = arcs.binary_search_by_key(&v, |&(w, _)| w) else {
            return false;
        };
        let (count, mut pos) = varint_decode(&self.intervals, arcs[idx].1);
        let mut prev = 0u32;
        for _ in 0..count {
            let (s_gap, p) = varint_decode(&self.intervals, pos);
            let (e_gap, p) = varint_decode(&self.intervals, p);
            let start = prev + s_gap as u32;
            let end = start + e_gap as u32;
            if t >= start && t < end {
                return true;
            }
            prev = end;
            pos = p;
        }
        false
    }

    /// Active neighbors of `u` at frame `t` (sorted — the directory is).
    pub fn neighbors_at(&self, u: NodeId, t: Timestamp) -> Vec<NodeId> {
        self.arcs_of(u)
            .iter()
            .filter(|&&(v, _)| self.edge_active_at(u, v, t))
            .map(|&(v, _)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TcsrBuilder;
    use parcsr_graph::gen::{temporal_toggles, TemporalParams};
    use parcsr_graph::TemporalEdge;

    fn workload(seed: u64) -> TemporalEdgeList {
        temporal_toggles(TemporalParams::new(48, 500, 8, seed))
    }

    #[test]
    fn evelog_matches_replay() {
        let events = workload(1);
        let log = EveLog::build(&events);
        for t in 0..events.num_frames() as u32 {
            let snap = events.snapshot_at(t);
            for u in 0..48u32 {
                let expect: Vec<u32> = snap
                    .iter()
                    .filter(|&&(s, _)| s == u)
                    .map(|&(_, v)| v)
                    .collect();
                assert_eq!(log.neighbors_at(u, t), expect, "u={u} t={t}");
            }
        }
    }

    #[test]
    fn edgelog_matches_replay() {
        let events = workload(2);
        let log = EdgeLog::build(&events);
        for t in 0..events.num_frames() as u32 {
            let snap = events.snapshot_at(t);
            for u in 0..48u32 {
                let expect: Vec<u32> = snap
                    .iter()
                    .filter(|&&(s, _)| s == u)
                    .map(|&(_, v)| v)
                    .collect();
                assert_eq!(log.neighbors_at(u, t), expect, "u={u} t={t}");
            }
        }
    }

    #[test]
    fn all_three_structures_agree_on_point_queries() {
        let events = workload(3);
        let tcsr = TcsrBuilder::new().build(&events);
        let eve = EveLog::build(&events);
        let edge = EdgeLog::build(&events);
        let last = (events.num_frames() - 1) as u32;
        for u in 0..48u32 {
            for v in (0..48u32).step_by(3) {
                let want = tcsr.edge_active_at(u, v, last);
                assert_eq!(eve.edge_active_at(u, v, last), want, "eve ({u},{v})");
                assert_eq!(edge.edge_active_at(u, v, last), want, "edge ({u},{v})");
            }
        }
    }

    #[test]
    fn open_interval_stays_active() {
        // One toggle, never closed: active from t=2 onward.
        let events = TemporalEdgeList::new(
            3,
            vec![TemporalEdge::new(0, 1, 2), TemporalEdge::new(1, 2, 5)],
        );
        let edge = EdgeLog::build(&events);
        assert!(!edge.edge_active_at(0, 1, 1));
        assert!(edge.edge_active_at(0, 1, 2));
        assert!(edge.edge_active_at(0, 1, 5));
        let eve = EveLog::build(&events);
        assert!(!eve.edge_active_at(0, 1, 1));
        assert!(eve.edge_active_at(0, 1, 5));
    }

    #[test]
    fn closed_then_reopened_interval() {
        let events = TemporalEdgeList::new(
            2,
            vec![
                TemporalEdge::new(0, 1, 1), // on
                TemporalEdge::new(0, 1, 3), // off
                TemporalEdge::new(0, 1, 6), // on again
                TemporalEdge::new(1, 0, 7),
            ],
        );
        let edge = EdgeLog::build(&events);
        for (t, want) in [
            (0, false),
            (1, true),
            (2, true),
            (3, false),
            (5, false),
            (6, true),
            (7, true),
        ] {
            assert_eq!(edge.edge_active_at(0, 1, t), want, "t={t}");
        }
    }

    #[test]
    fn empty_events() {
        let events = TemporalEdgeList::new(4, vec![]);
        let eve = EveLog::build(&events);
        let edge = EdgeLog::build(&events);
        assert!(!eve.edge_active_at(0, 1, 0));
        assert!(edge.neighbors_at(2, 0).is_empty());
    }

    #[test]
    fn queries_on_missing_vertex_arcs() {
        let events = TemporalEdgeList::new(5, vec![TemporalEdge::new(0, 1, 0)]);
        let edge = EdgeLog::build(&events);
        assert!(!edge.edge_active_at(0, 2, 0));
        assert!(!edge.edge_active_at(3, 1, 0));
        assert!(edge.neighbors_at(4, 0).is_empty());
    }
}
