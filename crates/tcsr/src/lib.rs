#![warn(missing_docs)]

//! `parcsr-temporal` — parallel time-evolving differential CSR (TCSR).
//!
//! Section IV of the paper: a time-evolving graph arrives as time-sorted
//! toggle triplets `(u, v, T)`. The TCSR stores, per time-frame, the
//! *difference* against the previous frame — the edges added or deleted —
//! rather than a full snapshot, with the parity rule deciding activity: an
//! edge toggled an even number of times within an interval is inactive, odd
//! is active.
//!
//! * [`frame`] — [`DeltaFrame`]: one frame's difference set, bit-packed
//!   (absolute packed keys for O(log) membership, or gap-coded for maximum
//!   compression), plus sorted-set symmetric difference.
//! * [`builder`] — Algorithm 5: chunk the event stream across processors,
//!   build each chunk's per-frame difference lists, merge the frame that
//!   straddles each chunk boundary (the same overlap-merge shape as the
//!   degree computation), and parity-collapse.
//! * [`tcsr`] — the queryable structure: snapshot reconstruction is an
//!   (inclusive) *scan under symmetric difference* across frames — the
//!   paper's prefix-sum machinery with XOR semantics — and point queries are
//!   parity reductions over the per-frame memberships.
//! * [`absolute`] — the comparator that stores a full CSR per frame, used by
//!   the benches to quantify what differential storage saves.
//! * [`logs`] — the related-work "log of events" baselines (EveLog and
//!   EdgeLog, Section II of the paper) with the same query API.
//!
//! # Example
//!
//! ```
//! use parcsr_temporal::{TcsrBuilder, FrameMode};
//! use parcsr_graph::{TemporalEdge, TemporalEdgeList};
//!
//! let events = TemporalEdgeList::new(4, vec![
//!     TemporalEdge::new(0, 1, 0),
//!     TemporalEdge::new(1, 2, 0),
//!     TemporalEdge::new(0, 1, 1), // deletes (0,1)
//!     TemporalEdge::new(2, 3, 1),
//! ]);
//! let tcsr = TcsrBuilder::new().processors(2).build(&events);
//! assert!(tcsr.edge_active_at(0, 1, 0));
//! assert!(!tcsr.edge_active_at(0, 1, 1));
//! assert_eq!(tcsr.snapshot_at(1), vec![(1, 2), (2, 3)]);
//! ```

pub mod absolute;
pub mod builder;
pub mod frame;
pub mod logs;
pub mod serial;
pub mod tcsr;

pub use absolute::AbsoluteFrames;
pub use builder::TcsrBuilder;
pub use frame::{sym_diff, DeltaFrame, FrameMode};
pub use logs::{EdgeLog, EveLog};
pub use tcsr::Tcsr;
