//! The queryable differential TCSR.
//!
//! Frames hold *differences*; queries recombine them:
//!
//! * a snapshot at frame `t` is the symmetric difference of deltas `0..=t`
//!   (a parallel reduction — associative and commutative, so rayon's
//!   reduce tree is deterministic);
//! * *all* snapshots at once is an inclusive **scan under symmetric
//!   difference**, computed with the paper's chunked-scan structure
//!   (per-chunk scan → serial carry across chunk tails → parallel fix-up),
//!   reusing Algorithm 1's shape on a non-`Copy` monoid;
//! * a point query `edge_active_at(u, v, t)` is a parity reduction of the
//!   per-frame memberships — one packed binary search per frame, XORed.

use rayon::prelude::*;

use parcsr_graph::{NodeId, Timestamp};
use parcsr_scan::chunk_ranges;

use crate::frame::{sym_diff, DeltaFrame};

/// A time-evolving graph stored as bit-packed per-frame differences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tcsr {
    num_nodes: usize,
    frames: Vec<DeltaFrame>,
}

impl Tcsr {
    /// Assembles a TCSR from prebuilt frames (used by
    /// [`crate::TcsrBuilder`]).
    pub fn from_frames(num_nodes: usize, frames: Vec<DeltaFrame>) -> Self {
        Tcsr { num_nodes, frames }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// The difference set of frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn frame(&self, t: Timestamp) -> &DeltaFrame {
        &self.frames[t as usize]
    }

    /// Total compact storage across all frames, in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.frames.iter().map(DeltaFrame::packed_bytes).sum()
    }

    /// Whether edge `(u, v)` is active at frame `t` — the parity rule: an
    /// odd number of toggles in frames `0..=t` means active. One packed
    /// membership test per frame, XOR-reduced in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn edge_active_at(&self, u: NodeId, v: NodeId, t: Timestamp) -> bool {
        self.check_frame(t);
        self.frames[..=t as usize]
            .par_iter()
            .map(|f| f.contains(u, v))
            .reduce(|| false, |a, b| a ^ b)
    }

    /// The active neighbor set of `u` at frame `t` (sorted): symmetric
    /// difference of the per-frame rows of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn neighbors_at(&self, u: NodeId, t: Timestamp) -> Vec<NodeId> {
        self.check_frame(t);
        self.frames[..=t as usize]
            .par_iter()
            .map(|f| f.row(u).into_iter().map(u64::from).collect::<Vec<u64>>())
            .reduce(Vec::new, |a, b| sym_diff(&a, &b))
            .into_iter()
            .map(|k| k as NodeId)
            .collect()
    }

    /// The full active edge set at frame `t` (sorted pairs): symmetric
    /// difference of deltas `0..=t`, reduced in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn snapshot_at(&self, t: Timestamp) -> Vec<(NodeId, NodeId)> {
        self.check_frame(t);
        self.frames[..=t as usize]
            .par_iter()
            .map(DeltaFrame::decode_keys)
            .reduce(Vec::new, |a, b| sym_diff(&a, &b))
            .into_iter()
            .map(crate::frame::unkey)
            .collect()
    }

    /// Every snapshot at once: an inclusive scan of the frame deltas under
    /// symmetric difference, using the paper's chunked-scan phases
    /// (Algorithm 1 generalized to a set monoid). Output `s[t]` equals
    /// [`snapshot_at`](Self::snapshot_at)`(t)` for every `t`, at `O(total)`
    /// work instead of `O(frames · total)`.
    pub fn snapshots_all(&self, processors: usize) -> Vec<Vec<(NodeId, NodeId)>> {
        let n = self.frames.len();
        if n == 0 {
            return Vec::new();
        }
        let mut sets: Vec<Vec<u64>> = self.frames.iter().map(DeltaFrame::decode_keys).collect();
        let ranges = chunk_ranges(n, processors);

        // Phase 1: per-chunk inclusive scan.
        {
            let mut parts: Vec<&mut [Vec<u64>]> = Vec::with_capacity(ranges.len());
            let mut rest: &mut [Vec<u64>] = &mut sets;
            let mut consumed = 0;
            for r in &ranges {
                let (_, tail) = std::mem::take(&mut rest).split_at_mut(r.start - consumed);
                let (piece, tail) = tail.split_at_mut(r.len());
                parts.push(piece);
                rest = tail;
                consumed = r.end;
            }
            parts.into_par_iter().for_each(|chunk| {
                for i in 1..chunk.len() {
                    chunk[i] = sym_diff(&chunk[i - 1], &chunk[i]);
                }
            });
        }

        // Phase 2: serial carry propagation across chunk tails.
        for w in ranges.windows(2) {
            let carry = sets[w[0].end - 1].clone();
            let tail = &mut sets[w[1].end - 1];
            *tail = sym_diff(&carry, tail);
        }

        // Phase 3: each chunk (except the first) folds the previous chunk's
        // global tail into all but its own last element.
        let carries: Vec<Vec<u64>> = ranges[..ranges.len() - 1]
            .iter()
            .map(|r| sets[r.end - 1].clone())
            .collect();
        {
            let mut parts: Vec<&mut [Vec<u64>]> = Vec::with_capacity(ranges.len());
            let mut rest: &mut [Vec<u64>] = &mut sets;
            let mut consumed = 0;
            for r in &ranges {
                let (_, tail) = std::mem::take(&mut rest).split_at_mut(r.start - consumed);
                let (piece, tail) = tail.split_at_mut(r.len());
                parts.push(piece);
                rest = tail;
                consumed = r.end;
            }
            parts
                .into_par_iter()
                .skip(1)
                .zip(carries.into_par_iter())
                .for_each(|(chunk, carry)| {
                    let last = chunk.len() - 1;
                    for s in &mut chunk[..last] {
                        *s = sym_diff(&carry, s);
                    }
                });
        }

        sets.into_iter()
            .map(|keys| keys.into_iter().map(crate::frame::unkey).collect())
            .collect()
    }

    /// Number of active edges at frame `t`.
    pub fn active_edge_count_at(&self, t: Timestamp) -> usize {
        self.snapshot_at(t).len()
    }

    /// The edges whose state differs between frames `t1` and `t2` (order
    /// irrelevant): the symmetric difference of the deltas strictly between
    /// them — computed without reconstructing either snapshot.
    ///
    /// # Panics
    ///
    /// Panics if either frame is out of range.
    pub fn edges_changed_between(&self, t1: Timestamp, t2: Timestamp) -> Vec<(NodeId, NodeId)> {
        self.check_frame(t1);
        self.check_frame(t2);
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        self.frames[(lo + 1) as usize..=hi as usize]
            .par_iter()
            .map(DeltaFrame::decode_keys)
            .reduce(Vec::new, |a, b| sym_diff(&a, &b))
            .into_iter()
            .map(crate::frame::unkey)
            .collect()
    }

    /// The full activity history of edge `(u, v)`: the frames at which it
    /// toggled, each paired with the state it toggled *into*. Empty if the
    /// edge never appears.
    ///
    /// One packed membership probe per frame, in parallel; parity is
    /// reconstructed by position afterwards.
    pub fn activity_history(&self, u: NodeId, v: NodeId) -> Vec<(Timestamp, bool)> {
        let toggles: Vec<Timestamp> = self
            .frames
            .par_iter()
            .enumerate()
            .filter(|(_, f)| f.contains(u, v))
            .map(|(t, _)| t as Timestamp)
            .collect();
        toggles
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, i % 2 == 0))
            .collect()
    }

    fn check_frame(&self, t: Timestamp) {
        assert!(
            (t as usize) < self.frames.len(),
            "frame {t} out of range ({} frames)",
            self.frames.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TcsrBuilder;
    use crate::frame::FrameMode;
    use parcsr_graph::gen::{temporal_toggles, TemporalParams};
    use parcsr_graph::TemporalEdgeList;

    fn workload(seed: u64) -> TemporalEdgeList {
        temporal_toggles(TemporalParams::new(64, 800, 10, seed))
    }

    #[test]
    fn snapshot_matches_sequential_replay() {
        let events = workload(1);
        let tcsr = TcsrBuilder::new().processors(4).build(&events);
        for t in 0..events.num_frames() as u32 {
            assert_eq!(tcsr.snapshot_at(t), events.snapshot_at(t), "frame {t}");
        }
    }

    #[test]
    fn snapshots_all_matches_per_frame_queries() {
        let events = workload(2);
        let tcsr = TcsrBuilder::new().processors(3).build(&events);
        for p in [1, 2, 5, 16] {
            let all = tcsr.snapshots_all(p);
            assert_eq!(all.len(), tcsr.num_frames());
            for (t, snap) in all.iter().enumerate() {
                assert_eq!(snap, &tcsr.snapshot_at(t as u32), "p={p} frame {t}");
            }
        }
    }

    #[test]
    fn edge_active_matches_snapshot_membership() {
        let events = workload(3);
        let tcsr = TcsrBuilder::new().build(&events);
        let t = (events.num_frames() - 1) as u32;
        let snap = tcsr.snapshot_at(t);
        for u in 0..16u32 {
            for v in 0..16u32 {
                assert_eq!(
                    tcsr.edge_active_at(u, v, t),
                    snap.binary_search(&(u, v)).is_ok(),
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn neighbors_at_matches_snapshot_rows() {
        let events = workload(4);
        let tcsr = TcsrBuilder::new().frame_mode(FrameMode::Gap).build(&events);
        let t = (events.num_frames() / 2) as u32;
        let snap = tcsr.snapshot_at(t);
        for u in 0..64u32 {
            let expect: Vec<u32> = snap
                .iter()
                .filter(|&&(s, _)| s == u)
                .map(|&(_, v)| v)
                .collect();
            assert_eq!(tcsr.neighbors_at(u, t), expect, "u={u}");
        }
    }

    #[test]
    fn differential_storage_beats_absolute_on_slow_change() {
        // 20 frames, tiny per-frame churn: differential storage must be far
        // smaller than 20 full snapshots.
        let events =
            temporal_toggles(TemporalParams::new(256, 4_000, 20, 5).with_events_per_frame(16));
        let tcsr = TcsrBuilder::new().build(&events);
        let absolute_total: usize = (0..events.num_frames() as u32)
            .map(|t| tcsr.snapshot_at(t).len() * 8)
            .sum();
        assert!(
            tcsr.packed_bytes() * 2 < absolute_total,
            "diff {} vs absolute {}",
            tcsr.packed_bytes(),
            absolute_total
        );
    }

    #[test]
    fn empty_tcsr() {
        let tcsr = Tcsr::from_frames(3, Vec::new());
        assert_eq!(tcsr.num_frames(), 0);
        assert_eq!(tcsr.packed_bytes(), 0);
        assert!(tcsr.snapshots_all(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn snapshot_out_of_range_panics() {
        let tcsr = Tcsr::from_frames(3, Vec::new());
        tcsr.snapshot_at(0);
    }

    #[test]
    fn edges_changed_between_matches_snapshot_diff() {
        let events = workload(7);
        let tcsr = TcsrBuilder::new().build(&events);
        let last = (events.num_frames() - 1) as u32;
        for (t1, t2) in [(0u32, last), (1, last / 2), (last, 0), (2, 2)] {
            let changed = tcsr.edges_changed_between(t1, t2);
            // Reference: elements in exactly one of the two snapshots.
            let a: std::collections::BTreeSet<_> = tcsr.snapshot_at(t1).into_iter().collect();
            let b: std::collections::BTreeSet<_> = tcsr.snapshot_at(t2).into_iter().collect();
            let want: Vec<_> = a.symmetric_difference(&b).copied().collect();
            assert_eq!(changed, want, "t1={t1} t2={t2}");
        }
    }

    #[test]
    fn activity_history_alternates_and_matches_queries() {
        let events = workload(8);
        let tcsr = TcsrBuilder::new().build(&events);
        // Find an edge with at least two toggles.
        let ev = events.events();
        let (u, v) = (ev[0].u, ev[0].v);
        let history = tcsr.activity_history(u, v);
        assert!(!history.is_empty());
        for (i, &(t, active)) in history.iter().enumerate() {
            assert_eq!(active, i % 2 == 0, "parity alternates");
            assert_eq!(
                tcsr.edge_active_at(u, v, t),
                active,
                "history entry {i} at frame {t}"
            );
        }
        // A never-seen edge has no history.
        assert!(
            tcsr.activity_history(63, 62).is_empty() || !ev.iter().any(|e| e.u == 63 && e.v == 62)
        );
    }

    #[test]
    fn active_edge_count() {
        let events = workload(6);
        let tcsr = TcsrBuilder::new().build(&events);
        let t = (events.num_frames() - 1) as u32;
        assert_eq!(tcsr.active_edge_count_at(t), events.snapshot_at(t).len());
    }
}
