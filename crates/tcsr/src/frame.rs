//! One time-frame's difference set, bit-packed.
//!
//! A frame delta is the sorted set of edges that changed state in that frame
//! (Figure 4's red deleted edges and dotted added edges, in one set — under
//! the parity rule a deletion and an addition are the same toggle). Edges
//! are stored as packed 64-bit keys `u · 2³² + v`, either at a uniform width
//! for O(log) membership tests via binary search on the packed array, or
//! gap-coded for maximum compression.

use parcsr_bitpack::{bits_needed, pack_parallel_with_width, PackedArray};
use parcsr_graph::NodeId;

/// Edge-key encoding shared by the whole temporal crate.
#[inline]
pub(crate) fn key(u: NodeId, v: NodeId) -> u64 {
    (u64::from(u) << 32) | u64::from(v)
}

#[inline]
pub(crate) fn unkey(k: u64) -> (NodeId, NodeId) {
    ((k >> 32) as NodeId, k as NodeId)
}

/// Storage layout of a [`DeltaFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameMode {
    /// Absolute packed keys: membership by binary search on the packed
    /// array, O(log |Δ|) bit reads.
    Random,
    /// Gap-coded keys: smallest footprint; membership requires a linear
    /// decode.
    Gap,
}

impl FrameMode {
    /// Stable name for bench output.
    pub fn name(self) -> &'static str {
        match self {
            FrameMode::Random => "random",
            FrameMode::Gap => "gap",
        }
    }
}

/// A single frame's difference set (sorted, duplicate-free edge keys),
/// bit-packed.
///
/// In [`FrameMode::Gap`] the first key is kept out of the packed array (it is
/// an absolute ~`2·log2(n)`-bit value that would otherwise force the uniform
/// width up for every gap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaFrame {
    mode: FrameMode,
    /// First key (absolute) in gap mode; unused in random mode.
    head: Option<u64>,
    /// Random mode: all keys. Gap mode: the `len - 1` gaps after the head.
    keys: PackedArray,
}

impl DeltaFrame {
    /// Packs a sorted, duplicate-free key list using `processors` packers.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `keys` is not strictly increasing.
    pub fn from_sorted_keys(keys: &[u64], mode: FrameMode, processors: usize) -> Self {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "frame keys must be strictly increasing"
        );
        match mode {
            FrameMode::Random => {
                let width = bits_needed(keys.last().copied().unwrap_or(0));
                DeltaFrame {
                    mode,
                    head: None,
                    keys: pack_parallel_with_width(keys, processors, width),
                }
            }
            FrameMode::Gap => {
                let head = keys.first().copied();
                let gaps: Vec<u64> = keys.windows(2).map(|w| w[1] - w[0]).collect();
                let width = bits_needed(gaps.iter().copied().max().unwrap_or(0));
                DeltaFrame {
                    mode,
                    head,
                    keys: pack_parallel_with_width(&gaps, processors, width),
                }
            }
        }
    }

    /// Number of changed edges in this frame.
    pub fn len(&self) -> usize {
        match self.mode {
            FrameMode::Random => self.keys.len(),
            FrameMode::Gap => self.head.map_or(0, |_| self.keys.len() + 1),
        }
    }

    /// True if nothing changed in this frame.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage mode.
    pub fn mode(&self) -> FrameMode {
        self.mode
    }

    /// Compact size in bytes (the out-of-band head counts as 8 bytes).
    pub fn packed_bytes(&self) -> usize {
        self.keys.packed_bytes() + self.head.map_or(0, |_| 8)
    }

    /// Whether edge `(u, v)` toggled in this frame.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        let k = key(u, v);
        match self.mode {
            FrameMode::Random => {
                // Binary search directly on the packed array.
                let (mut lo, mut hi) = (0usize, self.keys.len());
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    match self.keys.get(mid).cmp(&k) {
                        std::cmp::Ordering::Less => lo = mid + 1,
                        std::cmp::Ordering::Greater => hi = mid,
                        std::cmp::Ordering::Equal => return true,
                    }
                }
                false
            }
            FrameMode::Gap => {
                let Some(head) = self.head else { return false };
                let mut acc = head;
                if acc >= k {
                    return acc == k;
                }
                for g in self.keys.iter() {
                    acc += g;
                    if acc >= k {
                        return acc == k;
                    }
                }
                false
            }
        }
    }

    /// Decodes the frame into sorted keys.
    pub fn decode_keys(&self) -> Vec<u64> {
        match self.mode {
            FrameMode::Random => self.keys.to_vec(),
            FrameMode::Gap => {
                let Some(head) = self.head else {
                    return Vec::new();
                };
                let mut out = Vec::with_capacity(self.keys.len() + 1);
                let mut acc = head;
                out.push(acc);
                for g in self.keys.iter() {
                    acc += g;
                    out.push(acc);
                }
                out
            }
        }
    }

    /// The out-of-band head key (gap mode only).
    pub(crate) fn head_key(&self) -> Option<u64> {
        self.head
    }

    /// The packed array (all keys in random mode; the gaps in gap mode).
    pub(crate) fn packed_keys(&self) -> &PackedArray {
        &self.keys
    }

    /// Reassembles a frame from serialized parts, rejecting inconsistent
    /// combinations (`None` on failure).
    pub(crate) fn from_raw_parts(
        mode: FrameMode,
        head: Option<u64>,
        keys: PackedArray,
    ) -> Option<DeltaFrame> {
        match mode {
            FrameMode::Random if head.is_some() => None,
            FrameMode::Gap if head.is_none() && !keys.is_empty() => None,
            _ => Some(DeltaFrame { mode, head, keys }),
        }
    }

    /// Decodes the frame into sorted `(u, v)` pairs.
    pub fn decode_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.decode_keys().into_iter().map(unkey).collect()
    }

    /// The toggled neighbors of `u` in this frame (sorted).
    pub fn row(&self, u: NodeId) -> Vec<NodeId> {
        // Keys of node u occupy the contiguous key range [u<<32, (u+1)<<32).
        let lo = key(u, 0);
        let keys = self.decode_keys();
        let start = keys.partition_point(|&k| k < lo);
        keys[start..]
            .iter()
            .take_while(|&&k| k >> 32 == u64::from(u))
            .map(|&k| k as NodeId)
            .collect()
    }
}

/// Symmetric difference of two sorted, duplicate-free key lists — the
/// "XOR" of edge sets that turns frame deltas into snapshots. `O(|a| + |b|)`.
pub fn sym_diff(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(pairs: &[(u32, u32)]) -> Vec<u64> {
        pairs.iter().map(|&(u, v)| key(u, v)).collect()
    }

    #[test]
    fn key_roundtrip() {
        for &(u, v) in &[(0u32, 0u32), (1, 2), (u32::MAX, 0), (7, u32::MAX)] {
            assert_eq!(unkey(key(u, v)), (u, v));
        }
    }

    #[test]
    fn key_order_matches_pair_order() {
        let mut pairs = vec![(3u32, 1u32), (0, 9), (3, 0), (2, 5)];
        let mut keys: Vec<u64> = pairs.iter().map(|&(u, v)| key(u, v)).collect();
        pairs.sort_unstable();
        keys.sort_unstable();
        assert_eq!(keys.iter().map(|&k| unkey(k)).collect::<Vec<_>>(), pairs);
    }

    #[test]
    fn frame_roundtrip_both_modes() {
        let keys = keys_of(&[(0, 1), (0, 5), (2, 3), (7, 0)]);
        for mode in [FrameMode::Random, FrameMode::Gap] {
            let f = DeltaFrame::from_sorted_keys(&keys, mode, 2);
            assert_eq!(f.decode_keys(), keys, "{}", mode.name());
            assert_eq!(f.len(), 4);
        }
    }

    #[test]
    fn contains_both_modes() {
        let keys = keys_of(&[(0, 1), (0, 5), (2, 3), (7, 0)]);
        for mode in [FrameMode::Random, FrameMode::Gap] {
            let f = DeltaFrame::from_sorted_keys(&keys, mode, 1);
            assert!(f.contains(0, 1), "{}", mode.name());
            assert!(f.contains(7, 0));
            assert!(!f.contains(0, 2));
            assert!(!f.contains(7, 1));
            assert!(!f.contains(1, 1));
        }
    }

    #[test]
    fn empty_frame() {
        for mode in [FrameMode::Random, FrameMode::Gap] {
            let f = DeltaFrame::from_sorted_keys(&[], mode, 4);
            assert!(f.is_empty());
            assert!(!f.contains(0, 0));
            assert!(f.decode_edges().is_empty());
            assert!(f.row(3).is_empty());
        }
    }

    #[test]
    fn row_extraction() {
        let keys = keys_of(&[(1, 0), (1, 7), (2, 2), (5, 1), (5, 3)]);
        let f = DeltaFrame::from_sorted_keys(&keys, FrameMode::Random, 2);
        assert_eq!(f.row(1), [0, 7]);
        assert_eq!(f.row(2), [2]);
        assert_eq!(f.row(5), [1, 3]);
        assert!(f.row(0).is_empty());
        assert!(f.row(6).is_empty());
    }

    #[test]
    fn gap_mode_is_smaller_on_clustered_frames() {
        let keys: Vec<u64> = (0..1000u32).map(|i| key(12345, i * 2)).collect();
        let random = DeltaFrame::from_sorted_keys(&keys, FrameMode::Random, 2);
        let gap = DeltaFrame::from_sorted_keys(&keys, FrameMode::Gap, 2);
        assert!(
            gap.packed_bytes() * 2 < random.packed_bytes(),
            "gap {} vs random {}",
            gap.packed_bytes(),
            random.packed_bytes()
        );
    }

    #[test]
    fn sym_diff_cases() {
        assert_eq!(sym_diff(&[], &[]), Vec::<u64>::new());
        assert_eq!(sym_diff(&[1, 2, 3], &[]), [1, 2, 3]);
        assert_eq!(sym_diff(&[], &[4]), [4]);
        assert_eq!(sym_diff(&[1, 2, 3], &[2]), [1, 3]);
        assert_eq!(sym_diff(&[1, 3], &[2, 4]), [1, 2, 3, 4]);
        assert_eq!(sym_diff(&[5, 6], &[5, 6]), Vec::<u64>::new());
    }

    #[test]
    fn sym_diff_is_xor_like() {
        let a = vec![1u64, 4, 9, 16];
        let b = vec![2u64, 4, 8, 16];
        let d = sym_diff(&a, &b);
        // Self-inverse: (a Δ b) Δ b == a.
        assert_eq!(sym_diff(&d, &b), a);
        // Commutative.
        assert_eq!(d, sym_diff(&b, &a));
    }
}
