//! The absolute (copy-per-frame) comparator.
//!
//! "Storing the CSR this way is space-consuming, as not all nodes have
//! changed state from one time-frame to another" (Section IV) — this module
//! is that space-consuming baseline: one full bit-packed CSR snapshot per
//! frame. The TCSR benches measure the differential structure against it.

use rayon::prelude::*;

use parcsr::{BitPackedCsr, Csr, CsrBuilder, PackedCsrMode};
use parcsr_graph::{EdgeList, NodeId, TemporalEdgeList, Timestamp};

/// One bit-packed CSR snapshot per frame.
#[derive(Debug, Clone)]
pub struct AbsoluteFrames {
    num_nodes: usize,
    frames: Vec<BitPackedCsr>,
}

impl AbsoluteFrames {
    /// Materializes every frame's full snapshot (sequential replay per
    /// frame boundary, parallel CSR build per snapshot).
    pub fn build(events: &TemporalEdgeList, processors: usize) -> Self {
        let num_frames = events.num_frames();
        let frames: Vec<BitPackedCsr> = (0..num_frames as Timestamp)
            .into_par_iter()
            .map(|t| {
                let active = events.snapshot_at(t);
                let graph = EdgeList::new(events.num_nodes(), active);
                let csr = CsrBuilder::new().processors(processors).build(&graph);
                BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, processors)
            })
            .collect();
        AbsoluteFrames {
            num_nodes: events.num_nodes(),
            frames,
        }
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Whether `(u, v)` is active at frame `t` — O(deg) on one snapshot; no
    /// cross-frame reduction needed, which is the query-time advantage the
    /// copy strategy buys with its storage blow-up.
    pub fn edge_active_at(&self, u: NodeId, v: NodeId, t: Timestamp) -> bool {
        self.frames[t as usize].has_edge(u, v)
    }

    /// Active neighbors of `u` at frame `t`.
    pub fn neighbors_at(&self, u: NodeId, t: Timestamp) -> Vec<NodeId> {
        self.frames[t as usize].row(u)
    }

    /// Full snapshot at frame `t`, as sorted pairs.
    pub fn snapshot_at(&self, t: Timestamp) -> Vec<(NodeId, NodeId)> {
        let csr: Csr = self.frames[t as usize].unpack();
        let mut out = Vec::with_capacity(csr.num_edges());
        for u in 0..csr.num_nodes() as NodeId {
            out.extend(csr.neighbors(u).iter().map(|&v| (u, v)));
        }
        out
    }

    /// Total packed bytes across all snapshots.
    pub fn packed_bytes(&self) -> usize {
        self.frames.iter().map(BitPackedCsr::packed_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TcsrBuilder;
    use parcsr_graph::gen::{temporal_toggles, TemporalParams};

    #[test]
    fn absolute_and_differential_agree_on_every_query() {
        let events = temporal_toggles(TemporalParams::new(64, 600, 6, 8));
        let absolute = AbsoluteFrames::build(&events, 2);
        let diff = TcsrBuilder::new().build(&events);
        assert_eq!(absolute.num_frames(), diff.num_frames());
        for t in 0..absolute.num_frames() as u32 {
            assert_eq!(absolute.snapshot_at(t), diff.snapshot_at(t), "frame {t}");
        }
        for u in (0..64u32).step_by(5) {
            for v in (0..64u32).step_by(7) {
                let t = (absolute.num_frames() - 1) as u32;
                assert_eq!(
                    absolute.edge_active_at(u, v, t),
                    diff.edge_active_at(u, v, t)
                );
            }
            let t = (absolute.num_frames() / 2) as u32;
            assert_eq!(absolute.neighbors_at(u, t), diff.neighbors_at(u, t));
        }
    }

    #[test]
    fn absolute_storage_grows_with_frames() {
        let short =
            temporal_toggles(TemporalParams::new(128, 2_000, 3, 1).with_events_per_frame(8));
        let long =
            temporal_toggles(TemporalParams::new(128, 2_000, 24, 1).with_events_per_frame(8));
        let a_short = AbsoluteFrames::build(&short, 2);
        let a_long = AbsoluteFrames::build(&long, 2);
        assert!(a_long.packed_bytes() > a_short.packed_bytes() * 4);
    }

    #[test]
    fn empty_events_build() {
        let a = AbsoluteFrames::build(&parcsr_graph::TemporalEdgeList::new(3, vec![]), 2);
        assert_eq!(a.num_frames(), 0);
        assert_eq!(a.packed_bytes(), 0);
    }
}
