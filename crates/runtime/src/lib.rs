#![warn(missing_docs)]

//! Shared parallel-runtime substrate: the single home of chunk planning and
//! span-instrumented chunked execution.
//!
//! The paper's algorithms all start the same way: "divide the array into `p`
//! chunks, one per processor" — and on a social graph that division is
//! exactly where load imbalance is born: a hub row carries orders of
//! magnitude more edges than the median, so equal *element counts* give one
//! worker most of the *work*. This crate makes the split rule explicit,
//! shared, and observable:
//!
//! * [`chunk_ranges`] — near-equal element counts, the uniform-cost split;
//! * [`chunk_ranges_weighted`] — near-equal total weight over an explicit
//!   per-element weight slice;
//! * [`chunk_ranges_by_prefix_sum`] — the same weighted split driven
//!   directly by a CSR-style prefix-sum array (offsets *are* the prefix
//!   sum), allocation-free and `O(chunks · log n)`;
//! * [`ChunkPolicy`] — the row-chunking rule the pipeline stages consume
//!   ([`ChunkPolicy::Edges`] is the default: hub rows get isolated instead
//!   of dragging a whole chunk);
//! * [`run_chunked`] / [`run_chunked_plan`] — execute one planned chunk per
//!   parallel task, each wrapped in a span carrying the
//!   `chunk`/`chunk_len`/`edges` payloads that `parcsr_obs::analyze` turns
//!   into imbalance statistics;
//! * [`split_mut_by_ranges`] — hand out disjoint mutable sub-slices matching
//!   a plan;
//! * [`pool::with_processors`] — the cached fixed-width rayon pools the
//!   processor sweep pins each measurement to, next to the planner that
//!   feeds them.
//!
//! Every planner in the workspace routes through here (`parcsr-scan`
//! re-exports the planners for backward compatibility), so the scan,
//! degree-computation, bit-packing, query-batching and TCSR pipelines agree
//! on chunk boundaries. `examples/imbalance.rs` A/B-tests the policies on a
//! skewed hub graph and EXPERIMENTS.md records the measured gap.

pub mod pool;

use std::ops::Range;

use rayon::prelude::*;

/// Splits `0..len` into at most `chunks` contiguous, non-empty ranges of
/// near-equal size (sizes differ by at most one, larger chunks first).
///
/// Returns fewer than `chunks` ranges when `len < chunks`, and an empty vector
/// when `len == 0`. `chunks == 0` is treated as `1` so callers can pass a
/// "number of processors" value straight through without special-casing.
///
/// ```
/// use parcsr_runtime::chunk_ranges;
/// assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
/// assert_eq!(chunk_ranges(2, 8).len(), 2);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Splits `0..weights.len()` into at most `chunks` contiguous, non-empty
/// ranges of near-equal total *weight* — the size-aware alternative to
/// [`chunk_ranges`] for skewed inputs (hub rows), where equal element counts
/// leave one chunk with most of the work.
///
/// Chunk `i`'s target is its fair share of the weight still remaining
/// (`(total − consumed) / chunks_left`), so a hub that blows through several
/// naive fixed targets does not force the following chunks down to one
/// forced element each. The chunk stops at the element that first crosses
/// its target, except that when stopping *before* the crossing element lands
/// strictly nearer the target, the crossing element is left to the next
/// chunk — so a hub sitting just past a boundary is isolated instead of
/// dragging its predecessors' chunk far over target. Every chunk takes at
/// least one element and leaves at least one for each remaining chunk.
///
/// Returns exactly `min(chunks, weights.len())` ranges covering the input
/// contiguously; an all-zero weight vector falls back to [`chunk_ranges`].
/// `chunks == 0` is treated as `1`.
///
/// ```
/// use parcsr_runtime::chunk_ranges_weighted;
/// // A hub at the front: element 0 alone is half the work.
/// assert_eq!(chunk_ranges_weighted(&[6, 1, 1, 1, 1, 2], 2), vec![0..1, 1..6]);
/// assert_eq!(chunk_ranges_weighted(&[0, 0, 0, 0], 2), vec![0..2, 2..4]);
/// ```
pub fn chunk_ranges_weighted(weights: &[u64], chunks: usize) -> Vec<Range<usize>> {
    let len = weights.len();
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(len);
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        return chunk_ranges(len, chunks);
    }
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    let mut cum: u128 = 0;
    for i in 0..chunks {
        let remaining = (chunks - i) as u128;
        if remaining == 1 {
            // The last chunk takes everything left (a zero-weight tail
            // would otherwise satisfy the target early and strand elements).
            ranges.push(start..len);
            start = len;
            break;
        }
        let target = cum + (total - cum) / remaining;
        // Leave at least one element for each of the remaining chunks.
        let max_end = len - (chunks - i - 1);
        let mut end = start + 1;
        cum += u128::from(weights[start]);
        while end < max_end && cum < target {
            cum += u128::from(weights[end]);
            end += 1;
        }
        if cum >= target && end > start + 1 {
            // Nearest-boundary rule: if excluding the crossing element lands
            // strictly nearer the target than including it, leave it to the
            // next chunk (ties include).
            let w_last = u128::from(weights[end - 1]);
            if cum - target > target - (cum - w_last) {
                end -= 1;
                cum -= w_last;
            }
        }
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// [`chunk_ranges_weighted`] over the per-element weights implied by a
/// CSR-style prefix-sum array, without materializing them: element `i`
/// weighs `(prefix[i + 1] − prefix[i]) + 1` — its span of the prefix sum
/// plus a constant charge so long runs of zero-weight elements (empty rows)
/// still spread across chunks.
///
/// `prefix` must be non-decreasing with `prefix.len() == n + 1` (exactly the
/// shape of a CSR offsets array); the result covers `0..n`. Produces ranges
/// identical to calling [`chunk_ranges_weighted`] on the materialized
/// weights, but allocation-free and in `O(chunks · log n)`: the cumulative
/// weight of elements `0..e` is `(prefix[e] − prefix[0]) + e`, a strictly
/// increasing function of `e`, so each chunk boundary is a binary search.
///
/// ```
/// use parcsr_runtime::chunk_ranges_by_prefix_sum;
/// // Offsets of 6 rows with degrees 11, 1, 1, 1, 1, 2: row 0 is a hub
/// // carrying most of the weight, so it gets a chunk of its own.
/// let offsets = [0u64, 11, 12, 13, 14, 15, 17];
/// assert_eq!(chunk_ranges_by_prefix_sum(&offsets, 2), vec![0..1, 1..6]);
/// assert!(chunk_ranges_by_prefix_sum(&[0], 4).is_empty());
/// ```
pub fn chunk_ranges_by_prefix_sum(prefix: &[u64], chunks: usize) -> Vec<Range<usize>> {
    let len = prefix.len().saturating_sub(1);
    if len == 0 {
        return Vec::new();
    }
    debug_assert!(
        prefix.windows(2).all(|w| w[0] <= w[1]),
        "prefix sum must be non-decreasing"
    );
    let chunks = chunks.max(1).min(len);
    let cum_at = |e: usize| u128::from(prefix[e] - prefix[0]) + e as u128;
    let total = cum_at(len);
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let remaining = (chunks - i) as u128;
        if remaining == 1 {
            ranges.push(start..len);
            start = len;
            break;
        }
        let cum_start = cum_at(start);
        let target = cum_start + (total - cum_start) / remaining;
        let max_end = len - (chunks - i - 1);
        // First e in [start + 1, max_end] with cum_at(e) >= target; max_end
        // when no such e exists (a light tail under a heavy head).
        let mut end = {
            let (mut lo, mut hi) = (start + 1, max_end);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if cum_at(mid) >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        };
        // Same nearest-boundary rule as `chunk_ranges_weighted`.
        if cum_at(end) >= target && end > start + 1 {
            let overshoot = cum_at(end) - target;
            let undershoot = target - cum_at(end - 1);
            if overshoot > undershoot {
                end -= 1;
            }
        }
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Splits a mutable slice into disjoint sub-slices described by `ranges`.
///
/// The ranges must be sorted, non-overlapping and contained in
/// `0..data.len()` — exactly what [`chunk_ranges`] produces. Gaps between
/// ranges are allowed (the gap elements are simply not handed out).
///
/// # Panics
///
/// Panics if the ranges are out of order or exceed the slice length.
pub fn split_mut_by_ranges<'a, T>(
    mut data: &'a mut [T],
    ranges: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0;
    for r in ranges {
        assert!(r.start >= consumed, "ranges must be sorted and disjoint");
        let (_, rest) = data.split_at_mut(r.start - consumed);
        let (piece, rest) = rest.split_at_mut(r.end - r.start);
        out.push(piece);
        data = rest;
        consumed = r.end;
    }
    out
}

/// How a row range is divided into parallel chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChunkPolicy {
    /// Near-equal row counts per chunk ([`chunk_ranges`]): the historical
    /// default, right only when per-row cost is uniform.
    Rows,
    /// Near-equal edge counts per chunk ([`chunk_ranges_by_prefix_sum`] over
    /// the offsets array, charging `degree + 1` per row so empty-row runs
    /// still spread out): resists hub-row skew and is the workspace default.
    #[default]
    Edges,
}

impl ChunkPolicy {
    /// Stable name for reports and experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChunkPolicy::Rows => "rows",
            ChunkPolicy::Edges => "edges",
        }
    }

    /// Parses a policy name as written on a command line (`"rows"` /
    /// `"edges"`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "rows" => Ok(ChunkPolicy::Rows),
            "edges" => Ok(ChunkPolicy::Edges),
            other => Err(format!("unknown chunk policy `{other}` (rows|edges)")),
        }
    }

    /// Plans row chunks for a CSR-shaped `offsets` array (length `n + 1`,
    /// non-decreasing). Returns at most `chunks` non-empty [`Chunk`]s
    /// covering `0..n` contiguously; empty when `n == 0`. Planning is
    /// allocation-free beyond the returned plan and records a `plan` span
    /// whose `chunks` payload is the plan size.
    #[must_use]
    pub fn plan(self, offsets: &[u64], chunks: usize) -> Vec<Chunk> {
        let mut span = parcsr_obs::enter("plan");
        let n = offsets.len().saturating_sub(1);
        let ranges = match self {
            ChunkPolicy::Rows => chunk_ranges(n, chunks),
            ChunkPolicy::Edges => chunk_ranges_by_prefix_sum(offsets, chunks),
        };
        let plan: Vec<Chunk> = ranges
            .into_iter()
            .enumerate()
            .map(|(index, range)| {
                let edges = offsets[range.end] - offsets[range.start];
                Chunk {
                    index,
                    range,
                    edges,
                }
            })
            .collect();
        let edges = if n == 0 { 0 } else { offsets[n] - offsets[0] };
        span.set_args(
            parcsr_obs::SpanArgs::new()
                .chunks(plan.len() as u64)
                .edges(edges),
        );
        plan
    }

    /// The fallback plan for stages whose elements have no prefix sum to
    /// weight by (e.g. raw event lists): a near-equal count split regardless
    /// of policy, with each chunk's element count as its `edges` payload.
    #[must_use]
    pub fn plan_uniform(self, len: usize, chunks: usize) -> Vec<Chunk> {
        let mut span = parcsr_obs::enter("plan");
        let plan: Vec<Chunk> = chunk_ranges(len, chunks)
            .into_iter()
            .enumerate()
            .map(|(index, range)| Chunk {
                index,
                edges: range.len() as u64,
                range,
            })
            .collect();
        span.set_args(
            parcsr_obs::SpanArgs::new()
                .chunks(plan.len() as u64)
                .edges(len as u64),
        );
        plan
    }
}

/// One planned chunk of rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Chunk index within the plan (also the span's `chunk` payload).
    pub index: usize,
    /// Row range covered by this chunk.
    pub range: Range<usize>,
    /// Edges contained in the row range (the span's `edges` payload).
    pub edges: u64,
}

/// Runs `f` once per `(chunk, payload)` pair in parallel, each call wrapped
/// in a span named `span_name` carrying the chunk's `chunk`/`chunk_len`/
/// `edges` payloads. Results come back in chunk order. `span_name` should
/// end in `.chunk` so `cargo xtask check-trace` enforces its payload.
pub fn run_chunked<T, R, F>(span_name: &'static str, work: Vec<(Chunk, T)>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&Chunk, T) -> R + Sync + Send,
{
    work.into_par_iter()
        .map(|(chunk, payload)| {
            parcsr_obs::with_span_args(
                span_name,
                parcsr_obs::SpanArgs::new()
                    .chunk(chunk.index as u64)
                    .chunk_len(chunk.range.len() as u64)
                    .edges(chunk.edges),
                || f(&chunk, payload),
            )
        })
        .collect()
}

/// [`run_chunked`] without per-chunk payloads.
pub fn run_chunked_plan<R, F>(span_name: &'static str, plan: Vec<Chunk>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Chunk) -> R + Sync + Send,
{
    let work: Vec<(Chunk, ())> = plan.into_iter().map(|c| (c, ())).collect();
    run_chunked(span_name, work, |c, ()| f(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        assert_eq!(chunk_ranges(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn uneven_split_puts_extra_in_leading_chunks() {
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn more_chunks_than_elements() {
        let r = chunk_ranges(3, 10);
        assert_eq!(r, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn zero_len_is_empty() {
        assert!(chunk_ranges(0, 5).is_empty());
    }

    #[test]
    fn zero_chunks_treated_as_one() {
        assert_eq!(chunk_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn single_chunk() {
        assert_eq!(chunk_ranges(7, 1), vec![0..7]);
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for len in [1usize, 2, 3, 10, 97, 1000] {
            for chunks in [1usize, 2, 3, 7, 64, 1500] {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "contiguous");
                    assert!(!r.is_empty(), "non-empty");
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, len);
                // Sizes differ by at most one.
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn weighted_split_isolates_a_hub() {
        // Element 0 carries half the weight: it gets a chunk of its own.
        assert_eq!(
            chunk_ranges_weighted(&[6, 1, 1, 1, 1, 2], 2),
            vec![0..1, 1..6]
        );
        // Uniform weights reduce to the near-equal element split.
        assert_eq!(
            chunk_ranges_weighted(&[1; 8], 4),
            vec![0..2, 2..4, 4..6, 6..8]
        );
    }

    #[test]
    fn weighted_split_edge_cases() {
        assert!(chunk_ranges_weighted(&[], 4).is_empty());
        assert_eq!(chunk_ranges_weighted(&[3, 3], 0), vec![0..2]);
        assert_eq!(chunk_ranges_weighted(&[0, 0, 0, 0], 2), vec![0..2, 2..4]);
        // More chunks than elements: one element each.
        assert_eq!(
            chunk_ranges_weighted(&[5, 1, 1], 10),
            vec![0..1, 1..2, 2..3]
        );
        // A zero-weight tail still gets covered by the last chunk.
        assert_eq!(chunk_ranges_weighted(&[5, 0, 0], 1), vec![0..3]);
        assert_eq!(chunk_ranges_weighted(&[5, 5, 0, 0], 2), vec![0..1, 1..4]);
    }

    #[test]
    fn weighted_split_recovers_after_a_leading_hub() {
        // A hub that blows through several fixed fair-share boundaries:
        // re-targeting against the *remaining* weight keeps the successor
        // chunks balanced instead of one-element dribbles feeding a bloated
        // last chunk.
        let weights = [100, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        assert_eq!(
            chunk_ranges_weighted(&weights, 4),
            vec![0..1, 1..5, 5..9, 9..13]
        );
    }

    #[test]
    fn weighted_split_does_not_pull_a_hub_across_a_boundary() {
        // Cumulative weight sits just below the first target when the hub
        // arrives; the nearest-boundary rule leaves the hub to the next
        // chunk instead of handing chunk 0 nearly the whole input.
        let weights = [39, 100, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        assert_eq!(chunk_ranges_weighted(&weights, 3), vec![0..1, 1..2, 2..13]);
    }

    #[test]
    fn weighted_ranges_cover_exactly_once_and_balance() {
        // A deterministic skewed weight vector: one hub plus a long tail.
        let weights: Vec<u64> = (0..1000u64)
            .map(|i| if i == 17 { 5000 } else { 1 + i % 7 })
            .collect();
        for chunks in [1usize, 2, 3, 7, 64, 1500] {
            let ranges = chunk_ranges_weighted(&weights, chunks);
            assert_eq!(ranges.len(), chunks.min(weights.len()).max(1));
            let mut prev_end = 0;
            for r in &ranges {
                assert_eq!(r.start, prev_end, "contiguous");
                assert!(!r.is_empty(), "non-empty");
                prev_end = r.end;
            }
            assert_eq!(prev_end, weights.len());
            // No chunk except a single-element one exceeds its fair share
            // by more than the largest single weight.
            let total: u64 = weights.iter().sum();
            let fair = total / chunks as u64;
            for r in &ranges {
                let w: u64 = weights[r.clone()].iter().sum();
                assert!(
                    r.len() == 1 || w <= fair + 5000,
                    "chunk {r:?} weight {w} vs fair {fair}"
                );
            }
        }
    }

    #[test]
    fn prefix_sum_planner_matches_weighted_planner_exactly() {
        // The prefix-sum planner must reproduce `chunk_ranges_weighted`
        // over the implied `degree + 1` weights, boundary for boundary.
        let degree_vectors: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![12, 1, 1, 1, 1, 0],
            vec![0, 0, 0, 0, 0],
            vec![99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            vec![38, 99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            (0..500u64).map(|i| (i * 37 + 11) % 23).collect(),
            (0..500u64)
                .map(|i| if i % 97 == 0 { 4000 } else { i % 5 })
                .collect(),
        ];
        for degrees in &degree_vectors {
            let mut prefix = vec![7u64]; // non-zero base: offsets need not start at 0
            for &d in degrees {
                prefix.push(prefix.last().unwrap() + d);
            }
            let weights: Vec<u64> = degrees.iter().map(|&d| d + 1).collect();
            for chunks in [1usize, 2, 3, 7, 64, 1000] {
                assert_eq!(
                    chunk_ranges_by_prefix_sum(&prefix, chunks),
                    chunk_ranges_weighted(&weights, chunks),
                    "degrees {degrees:?} x{chunks}"
                );
            }
        }
    }

    #[test]
    fn prefix_sum_planner_edge_cases() {
        assert!(chunk_ranges_by_prefix_sum(&[], 4).is_empty());
        assert!(chunk_ranges_by_prefix_sum(&[0], 4).is_empty());
        assert_eq!(chunk_ranges_by_prefix_sum(&[0, 5], 4), vec![0..1]);
        // All-empty rows still split by the constant per-row charge.
        assert_eq!(
            chunk_ranges_by_prefix_sum(&[3, 3, 3, 3, 3], 2),
            vec![0..2, 2..4]
        );
    }

    #[test]
    fn split_mut_matches_ranges() {
        let mut data: Vec<u32> = (0..10).collect();
        let ranges = chunk_ranges(10, 3);
        let parts = split_mut_by_ranges(&mut data, &ranges);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2, 3]);
        assert_eq!(parts[1], &[4, 5, 6]);
        assert_eq!(parts[2], &[7, 8, 9]);
    }

    #[test]
    fn split_mut_allows_gaps() {
        let mut data: Vec<u32> = (0..10).collect();
        let parts = split_mut_by_ranges(&mut data, &[1..3, 5..6]);
        assert_eq!(parts[0], &[1, 2]);
        assert_eq!(parts[1], &[5]);
    }

    #[test]
    fn split_mut_pieces_are_writable() {
        let mut data = vec![0u8; 6];
        let ranges = chunk_ranges(6, 2);
        let mut parts = split_mut_by_ranges(&mut data, &ranges);
        for p in parts.iter_mut() {
            for x in p.iter_mut() {
                *x = 9;
            }
        }
        assert_eq!(data, vec![9; 6]);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn split_mut_rejects_overlap() {
        let mut data = vec![0u8; 6];
        let _ = split_mut_by_ranges(&mut data, &[0..3, 2..5]);
    }

    /// Offsets of a 6-row CSR where row 0 is a hub: degrees 12,1,1,1,1,0.
    const HUB: [u64; 7] = [0, 12, 13, 14, 15, 16, 16];

    #[test]
    fn default_policy_is_edges() {
        assert_eq!(ChunkPolicy::default(), ChunkPolicy::Edges);
    }

    #[test]
    fn policy_parses_its_own_names() {
        for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
            assert_eq!(ChunkPolicy::parse(policy.name()), Ok(policy));
        }
        assert!(ChunkPolicy::parse("columns").is_err());
    }

    #[test]
    fn row_policy_balances_rows_not_edges() {
        let plan = ChunkPolicy::Rows.plan(&HUB, 2);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].range, 0..3);
        assert_eq!(plan[1].range, 3..6);
        assert_eq!(plan[0].edges, 14);
        assert_eq!(plan[1].edges, 2);
    }

    #[test]
    fn edge_policy_isolates_the_hub() {
        let plan = ChunkPolicy::Edges.plan(&HUB, 2);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].range, 0..1, "hub row gets its own chunk");
        assert_eq!(plan[1].range, 1..6);
        assert_eq!(plan[0].edges, 12);
        assert_eq!(plan[1].edges, 4);
    }

    #[test]
    fn plans_cover_rows_exactly_once() {
        for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
            for chunks in [1usize, 2, 3, 7, 64] {
                let plan = policy.plan(&HUB, chunks);
                let mut prev = 0;
                let mut edges = 0;
                for (i, c) in plan.iter().enumerate() {
                    assert_eq!(c.index, i);
                    assert_eq!(c.range.start, prev);
                    assert!(!c.range.is_empty());
                    prev = c.range.end;
                    edges += c.edges;
                }
                assert_eq!(prev, 6, "{policy:?} x{chunks}");
                assert_eq!(edges, 16);
            }
        }
        assert!(ChunkPolicy::Rows.plan(&[0], 4).is_empty());
        assert!(ChunkPolicy::Edges.plan(&[], 4).is_empty());
    }

    #[test]
    fn uniform_plan_counts_elements_as_edges() {
        for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
            let plan = policy.plan_uniform(10, 3);
            assert_eq!(plan.len(), 3);
            let mut prev = 0;
            for (i, c) in plan.iter().enumerate() {
                assert_eq!(c.index, i);
                assert_eq!(c.range.start, prev);
                assert_eq!(c.edges, c.range.len() as u64);
                prev = c.range.end;
            }
            assert_eq!(prev, 10);
        }
        assert!(ChunkPolicy::Edges.plan_uniform(0, 4).is_empty());
    }

    #[test]
    fn run_chunked_preserves_chunk_order() {
        let plan = ChunkPolicy::Edges.plan(&HUB, 3);
        let indices = run_chunked_plan("test.chunk", plan.clone(), |c| c.index);
        assert_eq!(indices, (0..plan.len()).collect::<Vec<_>>());

        let sums: Vec<u64> = run_chunked(
            "test.chunk",
            plan.iter().cloned().map(|c| (c, 2u64)).collect(),
            |c, factor| c.edges * factor,
        );
        assert_eq!(sums.iter().sum::<u64>(), 32);
    }
}
