//! Explicit processor-count control.
//!
//! The paper's evaluation sweeps the number of processors (Table II's sixth
//! column: p ∈ {1, 4, 8, 16, 64}). Rayon's global pool is sized once at
//! startup, so the sweep instead pins each measurement to a dedicated
//! `p`-thread pool via [`with_processors`]. All parallel routines in this
//! workspace use rayon's *current* pool, so running them inside the closure
//! confines them to exactly `p` worker threads. `p` may exceed the physical
//! core count (the paper itself ran 64 threads on a 32-core machine).
//!
//! Pools are built once per width and cached for the life of the process:
//! the sweep calls `with_processors` once per (dataset, p, rep) sample, and
//! rebuilding the pool on every call would charge pool construction to the
//! first measurement taken on it. The cache also feeds the observability
//! layer — `pool.width` (gauge), `pool.installs` and `pool.builds`
//! (counters) record how wide the current region is and how often the cache
//! hit.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Returns the process-wide cached pool of exactly `processors` threads,
/// building (and caching) it on first use.
fn cached_pool(processors: usize) -> Arc<rayon::ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    let mut pools = POOLS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    Arc::clone(pools.entry(processors).or_insert_with(|| {
        parcsr_obs::counter("pool.builds").inc();
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(processors)
                .build()
                .expect("failed to build rayon pool"),
        )
    }))
}

/// Runs `f` on a cached rayon pool with exactly `processors` threads and
/// returns its result.
///
/// # Panics
///
/// Panics if `processors == 0`, or if the pool cannot be built.
pub fn with_processors<R: Send>(processors: usize, f: impl FnOnce() -> R + Send) -> R {
    assert!(processors > 0, "need at least one processor");
    parcsr_obs::counter("pool.installs").inc();
    parcsr_obs::gauge("pool.width").set(processors as i64);
    cached_pool(processors).install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_width() {
        for p in [1usize, 2, 4] {
            let seen = with_processors(p, rayon::current_num_threads);
            assert_eq!(seen, p);
        }
    }

    #[test]
    fn oversubscription_is_allowed() {
        let logical = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let p = logical * 2;
        assert_eq!(with_processors(p, rayon::current_num_threads), p);
    }

    #[test]
    fn returns_closure_value() {
        let v = with_processors(2, || (0..100).sum::<u64>());
        assert_eq!(v, 4950);
    }

    #[test]
    fn repeated_installs_reuse_the_cached_pool() {
        // Same width twice: the second call must hit the cache and still
        // report the right width (the cache is keyed by width, so distinct
        // widths coexist).
        assert!(Arc::ptr_eq(&cached_pool(3), &cached_pool(3)));
        assert!(!Arc::ptr_eq(&cached_pool(3), &cached_pool(5)));
        for _ in 0..2 {
            assert_eq!(with_processors(3, rayon::current_num_threads), 3);
            assert_eq!(with_processors(5, rayon::current_num_threads), 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_processors_rejected() {
        with_processors(0, || ());
    }
}
