//! Breadth-first search: the canonical neighborhood-query workload — a BFS
//! is nothing but repeated batched neighborhood queries, which is why the
//! paper's Algorithm 6 batching matters for analytics.

// ORDERING: Relaxed throughout — level claims are first-writer-wins
// compare-exchanges on independent cells, and each level's stores are
// published to the next round by the parallel iterator's join barrier.
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

use rayon::prelude::*;

use parcsr::NeighborSource;
use parcsr_graph::NodeId;

/// Distance value for nodes not reached from the source.
pub const UNREACHABLE: u32 = u32::MAX;

/// Sequential BFS returning hop distances from `source`
/// (`UNREACHABLE` where no path exists). The ground truth.
pub fn bfs_sequential<S: NeighborSource>(graph: &S, source: NodeId) -> Vec<u32> {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let q = parcsr_obs::serve::query_start();
    let mut dist = vec![UNREACHABLE; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            graph.for_each_neighbor(u, &mut |v| {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = level;
                    next.push(v);
                }
            });
        }
        frontier = next;
    }
    q.finish(parcsr_obs::serve::QueryKind::Traversal, || {
        graph.degree(source)
    });
    dist
}

/// Level-synchronous parallel BFS. Each level expands the frontier in
/// parallel chunks; first-writer-wins claims via compare-exchange keep every
/// node at its true level, so the distance array is identical to the
/// sequential result (the *frontier order* may differ run to run, the
/// distances cannot).
pub fn bfs_parallel<S: NeighborSource>(graph: &S, source: NodeId) -> Vec<u32> {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let q = parcsr_obs::serve::query_start();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHABLE)).collect();
    dist[source as usize].store(0, Relaxed);
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next: Vec<NodeId> = frontier
            .par_iter()
            .map(|&u| {
                let mut claimed = Vec::new();
                // Stream the row straight off the (possibly packed)
                // structure — no per-node row buffer.
                graph.for_each_neighbor(u, &mut |v| {
                    if dist[v as usize]
                        .compare_exchange(UNREACHABLE, level, Relaxed, Relaxed)
                        .is_ok()
                    {
                        claimed.push(v);
                    }
                });
                claimed
            })
            .flatten()
            .collect();
        // Canonicalize the next frontier so traversal work stays
        // deterministic (the distances already are).
        next.par_sort_unstable();
        frontier = next;
    }
    q.finish(parcsr_obs::serve::QueryKind::Traversal, || {
        graph.degree(source)
    });
    dist.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode};
    use parcsr_graph::gen::{rmat, RmatParams};
    use parcsr_graph::EdgeList;

    #[test]
    fn line_graph_distances() {
        let g = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let csr = CsrBuilder::new().build(&g);
        assert_eq!(bfs_sequential(&csr, 0), [0, 1, 2, 3, 4]);
        assert_eq!(bfs_parallel(&csr, 0), [0, 1, 2, 3, 4]);
        assert_eq!(
            bfs_sequential(&csr, 4),
            [UNREACHABLE; 4].into_iter().chain([0]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn disconnected_components() {
        let g = EdgeList::new(6, vec![(0, 1), (1, 0), (3, 4)]);
        let csr = CsrBuilder::new().build(&g);
        let d = bfs_parallel(&csr, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn parallel_equals_sequential_on_rmat() {
        let g = rmat(RmatParams::new(1 << 10, 1 << 14, 5)).symmetrized();
        let csr = CsrBuilder::new().build(&g);
        for source in [0u32, 7, 100, 1000] {
            assert_eq!(
                bfs_parallel(&csr, source),
                bfs_sequential(&csr, source),
                "source {source}"
            );
        }
    }

    #[test]
    fn runs_identically_on_packed_csr() {
        let g = rmat(RmatParams::new(512, 6_000, 9));
        let csr = CsrBuilder::new().build(&g);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        assert_eq!(bfs_parallel(&packed, 3), bfs_sequential(&csr, 3));
    }

    #[test]
    fn self_loops_and_duplicates_are_harmless() {
        let g = EdgeList::new(3, vec![(0, 0), (0, 1), (0, 1), (1, 2)]);
        let csr = CsrBuilder::new().build(&g);
        assert_eq!(bfs_parallel(&csr, 0), [0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let csr = CsrBuilder::new().build(&EdgeList::new(2, vec![(0, 1)]));
        bfs_parallel(&csr, 5);
    }
}
