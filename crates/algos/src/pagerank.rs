//! PageRank by pull-based power iteration.
//!
//! Pull formulation: each node sums `rank[v] / outdeg[v]` over its
//! *in*-neighbors, read from the transposed CSR. Pulling (rather than
//! scattering) keeps the computation deterministic — every node accumulates
//! its contributions in a fixed order, so no atomic floating-point adds are
//! needed and results are bit-reproducible across thread counts.

use rayon::prelude::*;

use parcsr::{Csr, CsrBuilder, NeighborSource};
use parcsr_graph::{EdgeList, NodeId};

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (typically 0.85).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// L1 convergence threshold.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Computes PageRank over any [`NeighborSource`] — the plain CSR or the
/// bit-packed one, whose rows are streamed during the one-time transpose
/// without decompressing the structure. Returns `(ranks, iterations_used)`.
/// Dangling nodes (out-degree 0) redistribute uniformly, so ranks always
/// sum to ~1.
pub fn pagerank<S: NeighborSource>(graph: &S, config: PageRankConfig) -> (Vec<f64>, usize) {
    let n = graph.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    assert!(
        config.damping >= 0.0 && config.damping < 1.0,
        "damping must be in [0, 1)"
    );

    // Transpose: in-neighbors of every node, for the pull step.
    let transposed = transpose(graph);
    let out_deg: Vec<u64> = (0..n).map(|u| graph.degree(u as NodeId) as u64).collect();

    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let base = (1.0 - config.damping) / n as f64;

    for iter in 0..config.max_iterations {
        // Dangling mass is shared uniformly (sequential sum for
        // determinism; n is small relative to m).
        let dangling: f64 = rank
            .iter()
            .zip(&out_deg)
            .filter(|&(_, &d)| d == 0)
            .map(|(r, _)| r)
            .sum();
        let dangling_share = config.damping * dangling / n as f64;

        next.par_iter_mut().enumerate().for_each(|(u, slot)| {
            let mut sum = 0.0;
            for &v in transposed.neighbors(u as NodeId) {
                sum += rank[v as usize] / out_deg[v as usize] as f64;
            }
            *slot = base + dangling_share + config.damping * sum;
        });

        let delta: f64 = rank
            .par_iter()
            .zip(next.par_iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            return (rank, iter + 1);
        }
    }
    (rank, config.max_iterations)
}

/// Builds the transposed CSR (in-edges become out-edges), streaming the
/// source's rows.
fn transpose<S: NeighborSource>(graph: &S) -> Csr {
    let mut edges = Vec::new();
    for u in 0..graph.num_nodes() as NodeId {
        graph.for_each_neighbor(u, &mut |v| edges.push((v, u)));
    }
    CsrBuilder::new().build(&EdgeList::new(graph.num_nodes(), edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr::with_processors;
    use parcsr_graph::gen::{rmat, RmatParams};

    fn ranks(g: &EdgeList) -> Vec<f64> {
        let csr = CsrBuilder::new().build(g);
        pagerank(&csr, PageRankConfig::default()).0
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = rmat(RmatParams::new(256, 2_000, 3));
        let r = ranks(&g);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum={total}");
    }

    #[test]
    fn cycle_is_uniform() {
        let g = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = ranks(&g);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn star_center_dominates() {
        // Everyone points at node 0.
        let g = EdgeList::new(5, vec![(1, 0), (2, 0), (3, 0), (4, 0)]);
        let r = ranks(&g);
        for leaf in 1..5 {
            assert!(r[0] > 3.0 * r[leaf], "center {} leaf {}", r[0], r[leaf]);
        }
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // Node 1 is dangling.
        let g = EdgeList::new(3, vec![(0, 1), (2, 0)]);
        let r = ranks(&g);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = rmat(RmatParams::new(512, 6_000, 7));
        let csr = CsrBuilder::new().build(&g);
        let base = with_processors(1, || pagerank(&csr, PageRankConfig::default()));
        for p in [2, 4, 8] {
            let other = with_processors(p, || pagerank(&csr, PageRankConfig::default()));
            assert_eq!(base.0, other.0, "p={p}: bitwise equality expected");
            assert_eq!(base.1, other.1);
        }
    }

    #[test]
    fn converges_before_max_iterations() {
        let g = rmat(RmatParams::new(128, 1_000, 9));
        let csr = CsrBuilder::new().build(&g);
        let (_, iters) = pagerank(
            &csr,
            PageRankConfig {
                tolerance: 1e-7,
                ..Default::default()
            },
        );
        assert!(iters < 100, "iters={iters}");
    }

    #[test]
    fn empty_graph() {
        let csr = CsrBuilder::new().build(&EdgeList::new(0, vec![]));
        let (r, iters) = pagerank(&csr, PageRankConfig::default());
        assert!(r.is_empty());
        assert_eq!(iters, 0);
    }

    #[test]
    fn identical_on_packed_csr() {
        use parcsr::{BitPackedCsr, PackedCsrMode};
        let g = rmat(RmatParams::new(256, 3_000, 11));
        let csr = CsrBuilder::new().build(&g);
        let base = pagerank(&csr, PageRankConfig::default());
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, 4);
            assert_eq!(pagerank(&packed, PageRankConfig::default()), base);
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let csr = CsrBuilder::new().build(&EdgeList::new(2, vec![(0, 1)]));
        pagerank(
            &csr,
            PageRankConfig {
                damping: 1.5,
                ..Default::default()
            },
        );
    }
}
