//! Betweenness centrality (Brandes' algorithm).
//!
//! The paper's introduction names "the edge betweenness of the highways
//! connecting major cities" as a motivating analysis; this module supplies
//! node betweenness over unweighted graphs via Brandes' dependency
//! accumulation. Exact computation runs one BFS + back-propagation per
//! source — embarrassingly parallel over sources, which is exactly how
//! [`betweenness_parallel`] distributes it (each worker owns its accumulator
//! and the per-source results are summed deterministically at the end).
//! [`betweenness_sampled`] trades exactness for time on large graphs by
//! processing a seeded subset of sources.

use rayon::prelude::*;

use parcsr::NeighborSource;
use parcsr_graph::NodeId;

/// Brandes' single-source dependency pass: returns this source's
/// contribution to every node's betweenness.
fn brandes_pass<S: NeighborSource>(
    graph: &S,
    source: NodeId,
    row_buf: &mut Vec<NodeId>,
) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut dist = vec![-1i64; n];
    let mut order: Vec<NodeId> = Vec::new(); // BFS order (for reverse sweep)
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];

    sigma[source as usize] = 1.0;
    dist[source as usize] = 0;
    let mut frontier = std::collections::VecDeque::from([source]);
    while let Some(u) = frontier.pop_front() {
        order.push(u);
        graph.row_into(u, row_buf);
        for &v in row_buf.iter() {
            if dist[v as usize] < 0 {
                dist[v as usize] = dist[u as usize] + 1;
                frontier.push_back(v);
            }
            if dist[v as usize] == dist[u as usize] + 1 {
                sigma[v as usize] += sigma[u as usize];
                preds[v as usize].push(u);
            }
        }
    }

    // Dependency accumulation in reverse BFS order.
    let mut delta = vec![0.0f64; n];
    let mut contribution = vec![0.0f64; n];
    for &w in order.iter().rev() {
        for &u in &preds[w as usize] {
            delta[u as usize] +=
                (sigma[u as usize] / sigma[w as usize]) * (1.0 + delta[w as usize]);
        }
        if w != source {
            contribution[w as usize] = delta[w as usize];
        }
    }
    contribution
}

/// Exact betweenness centrality: one Brandes pass per source, sequential.
/// `O(n·m)`. The ground truth for the parallel and sampled variants.
pub fn betweenness_sequential<S: NeighborSource>(graph: &S) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut total = vec![0.0f64; n];
    let mut row = Vec::new();
    for source in 0..n as NodeId {
        for (slot, c) in total.iter_mut().zip(brandes_pass(graph, source, &mut row)) {
            *slot += c;
        }
    }
    total
}

/// Exact betweenness, parallel over sources. Per-source contributions are
/// reduced with a fixed-shape tree over the source index space, so results
/// are deterministic up to floating-point associativity of the reduction —
/// pinned in tests against the sequential sum within 1e-9 relative error.
pub fn betweenness_parallel<S: NeighborSource>(graph: &S) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    (0..n as NodeId)
        .into_par_iter()
        .map_init(Vec::new, |row, source| brandes_pass(graph, source, row))
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Approximate betweenness from `samples` seeded random sources, scaled by
/// `n / samples`. Deterministic per seed.
pub fn betweenness_sampled<S: NeighborSource>(graph: &S, samples: usize, seed: u64) -> Vec<f64> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let n = graph.num_nodes();
    if n == 0 || samples == 0 {
        return vec![0.0; n];
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let sources: Vec<NodeId> = (0..samples)
        .map(|_| rng.gen_range(0..n) as NodeId)
        .collect();
    let scale = n as f64 / samples as f64;
    let mut total = sources
        .par_iter()
        .map_init(Vec::new, |row, &source| brandes_pass(graph, source, row))
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    for x in &mut total {
        *x *= scale;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr::{BitPackedCsr, Csr, CsrBuilder, PackedCsrMode};
    use parcsr_graph::gen::{erdos_renyi, ErParams};
    use parcsr_graph::EdgeList;

    fn csr_of(n: usize, edges: Vec<(u32, u32)>) -> Csr {
        CsrBuilder::new().build(&EdgeList::new(n, edges).symmetrized())
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "i={i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_center_is_most_between() {
        // Undirected path 0-1-2-3-4: node 2 lies on the most shortest paths.
        let csr = csr_of(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let b = betweenness_sequential(&csr);
        // Known values for P5 (directed counts, both directions): ends 0.
        assert_eq!(b[0], 0.0);
        assert_eq!(b[4], 0.0);
        assert!(b[2] > b[1] && b[2] > b[3]);
        // Symmetric graph: symmetric scores.
        assert!((b[1] - b[3]).abs() < 1e-12);
    }

    #[test]
    fn star_center_carries_everything() {
        let csr = csr_of(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let b = betweenness_sequential(&csr);
        // Every pair of leaves routes through the center: 4·3 = 12 ordered
        // pairs.
        assert!((b[0] - 12.0).abs() < 1e-12, "center {}", b[0]);
        for &leaf_score in &b[1..5] {
            assert_eq!(leaf_score, 0.0);
        }
    }

    #[test]
    fn equal_split_on_parallel_paths() {
        // Diamond: 0-1-3 and 0-2-3, two equal shortest paths; 1 and 2 each
        // carry half of the 0→3 and 3→0 flow.
        let csr = csr_of(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let b = betweenness_sequential(&csr);
        assert!((b[1] - 1.0).abs() < 1e-12, "{b:?}");
        assert!((b[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = erdos_renyi(ErParams::new(120, 600, 3));
        let csr = CsrBuilder::new().build(&g.symmetrized());
        let seq = betweenness_sequential(&csr);
        let par = betweenness_parallel(&csr);
        assert_close(&seq, &par, 1e-9);
    }

    #[test]
    fn packed_input_matches_plain() {
        let g = erdos_renyi(ErParams::new(80, 400, 9));
        let csr = CsrBuilder::new().build(&g.symmetrized());
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 2);
        assert_close(
            &betweenness_parallel(&csr),
            &betweenness_parallel(&packed),
            1e-12,
        );
    }

    #[test]
    fn full_sampling_equals_exact_up_to_scale_noise() {
        // With samples == n (with replacement) the estimator is unbiased but
        // noisy; just check it is well-correlated: top node agrees.
        let csr = csr_of(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)]);
        let exact = betweenness_sequential(&csr);
        let approx = betweenness_sampled(&csr, 64, 7);
        let top_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let top_approx = approx
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top_exact, top_approx);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrBuilder::new().build(&EdgeList::new(0, vec![]));
        assert!(betweenness_parallel(&csr).is_empty());
        assert!(betweenness_sampled(&csr, 4, 1).is_empty());
    }
}
