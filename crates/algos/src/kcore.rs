//! k-core decomposition by iterative peeling.
//!
//! The core number of a node is the largest `k` such that the node survives
//! in the maximal subgraph where every node has (undirected) degree ≥ k —
//! the standard "influence tier" measure in social-network analysis. The
//! sequential peeling (bucket queue over degrees) is `O(n + m)` and serves
//! as ground truth; the parallel variant peels one `k`-level per round with
//! rayon sweeps, converging to the identical (unique) decomposition.

// ORDERING: Relaxed throughout — each peel phase (select, mark, decrement)
// ends at a join barrier; within a phase, stores hit disjoint cells or are
// commutative fetch_subs, so no cross-cell ordering is needed.
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

use rayon::prelude::*;

use parcsr::Csr;
use parcsr_graph::NodeId;

/// Builds the undirected adjacency view (both directions, deduplicated).
fn undirected(csr: &Csr) -> Vec<Vec<NodeId>> {
    let n = csr.num_nodes();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in 0..n as NodeId {
        for &v in csr.neighbors(u) {
            if u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
    }
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
    }
    adj
}

/// Sequential k-core decomposition (bucket peeling). Returns each node's
/// core number.
pub fn kcore_sequential(csr: &Csr) -> Vec<u32> {
    let adj = undirected(csr);
    let n = adj.len();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = adj.iter().map(|r| r.len() as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort nodes by degree; peel in ascending degree order.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for (u, &d) in degree.iter().enumerate() {
        buckets[d as usize].push(u as NodeId);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_k = 0u32;
    for k in 0..=max_deg {
        let mut stack = std::mem::take(&mut buckets[k]);
        while let Some(u) = stack.pop() {
            if removed[u as usize] || degree[u as usize] as usize > k {
                // Stale bucket entry (degree has since dropped or the node
                // was peeled earlier).
                continue;
            }
            current_k = current_k.max(degree[u as usize]);
            core[u as usize] = current_k;
            removed[u as usize] = true;
            for &v in &adj[u as usize] {
                if !removed[v as usize] && degree[v as usize] as usize > k {
                    degree[v as usize] -= 1;
                    if degree[v as usize] as usize <= k {
                        stack.push(v);
                    } else {
                        buckets[degree[v as usize] as usize].push(v);
                    }
                }
            }
        }
    }
    core
}

/// Parallel k-core: for each `k` in ascending order, repeatedly sweep and
/// peel every live node whose residual degree is `< k+1`... i.e. the
/// standard level-synchronous formulation: nodes peeled in the `k`-round
/// get core number `k`.
pub fn kcore_parallel(csr: &Csr) -> Vec<u32> {
    let adj = undirected(csr);
    let n = adj.len();
    if n == 0 {
        return Vec::new();
    }
    let degree: Vec<AtomicU32> = adj.iter().map(|r| AtomicU32::new(r.len() as u32)).collect();
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let removed: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let max_deg = adj.iter().map(|r| r.len() as u32).max().unwrap_or(0);

    let mut alive = n;
    for k in 0..=max_deg {
        if alive == 0 {
            break;
        }
        loop {
            // Collect this wave: live nodes with degree ≤ k.
            let wave: Vec<NodeId> = (0..n as NodeId)
                .into_par_iter()
                .filter(|&u| {
                    removed[u as usize].load(Relaxed) == 0 && degree[u as usize].load(Relaxed) <= k
                })
                .collect();
            if wave.is_empty() {
                break;
            }
            alive -= wave.len();
            wave.par_iter().for_each(|&u| {
                removed[u as usize].store(1, Relaxed);
                core[u as usize].store(k, Relaxed);
            });
            // Decrement neighbors after marking the whole wave, so peers in
            // the same wave do not double-count each other.
            wave.par_iter().for_each(|&u| {
                for &v in &adj[u as usize] {
                    if removed[v as usize].load(Relaxed) == 0 {
                        degree[v as usize].fetch_sub(1, Relaxed);
                    }
                }
            });
        }
    }
    core.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr::CsrBuilder;
    use parcsr_graph::gen::{erdos_renyi, rmat, ErParams, RmatParams};
    use parcsr_graph::EdgeList;

    fn csr_of(n: usize, edges: Vec<(u32, u32)>) -> Csr {
        CsrBuilder::new().build(&EdgeList::new(n, edges))
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 (2-core) with a pendant 3 attached to 0 (1-core)
        // and an isolated node 4 (0-core).
        let csr = csr_of(5, vec![(0, 1), (1, 2), (2, 0), (0, 3)]);
        let want = vec![2, 2, 2, 1, 0];
        assert_eq!(kcore_sequential(&csr), want);
        assert_eq!(kcore_parallel(&csr), want);
    }

    #[test]
    fn clique_core_is_size_minus_one() {
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let csr = csr_of(6, edges);
        assert_eq!(kcore_sequential(&csr), vec![5; 6]);
        assert_eq!(kcore_parallel(&csr), vec![5; 6]);
    }

    #[test]
    fn long_path_is_one_core() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let csr = csr_of(100, edges);
        assert_eq!(kcore_parallel(&csr), vec![1; 100]);
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        for seed in 0..4u64 {
            let g = erdos_renyi(ErParams::new(300, 1_500, seed));
            let csr = CsrBuilder::new().build(&g);
            assert_eq!(kcore_parallel(&csr), kcore_sequential(&csr), "seed {seed}");
        }
        let g = rmat(RmatParams::new(512, 6_000, 5));
        let csr = CsrBuilder::new().build(&g);
        assert_eq!(kcore_parallel(&csr), kcore_sequential(&csr));
    }

    #[test]
    fn self_loops_and_duplicates_ignored() {
        let csr = csr_of(3, vec![(0, 0), (0, 1), (0, 1), (1, 0)]);
        // Undirected simple view: single edge 0-1 plus isolated 2.
        assert_eq!(kcore_parallel(&csr), vec![1, 1, 0]);
    }

    #[test]
    fn empty() {
        let csr = csr_of(0, vec![]);
        assert!(kcore_parallel(&csr).is_empty());
        assert!(kcore_sequential(&csr).is_empty());
    }
}
