//! Boolean sparse matrix–matrix multiplication on (compressed) CSR.
//!
//! The paper's `GetRowFromCSR` primitive comes from the authors' SpGEMM work
//! \[28\] ("On large-scale matrix-matrix multiplication on compressed
//! structures"): multiplying adjacency structures directly out of the
//! compressed representation. This module implements the boolean (pattern)
//! SpGEMM `C = A·B` with the classic row-merge (Gustavson) formulation —
//! `C`'s row `u` is the union of `B`'s rows selected by `A`'s row `u` — over
//! any [`NeighborSource`], so it runs on the bit-packed CSR by pulling each
//! needed row with the same row extraction the query algorithms use.
//!
//! `A·A` of an adjacency structure is the 2-hop reachability graph —
//! "friends of friends", the canonical social-network derived relation.

use rayon::prelude::*;

use parcsr::{Csr, CsrBuilder, NeighborSource};
use parcsr_graph::{EdgeList, NodeId};

/// Computes the boolean product `C = A·B`: `C[u][w] = 1` iff there exists
/// `v` with `A[u][v] = 1` and `B[v][w] = 1`. Rows are computed in parallel;
/// the result is a plain CSR with sorted, duplicate-free rows.
///
/// # Panics
///
/// Panics if `A`'s column space does not match `B`'s row space
/// (`a.num_nodes() != b.num_nodes()` — adjacency structures are square).
pub fn spgemm_bool<A, B>(a: &A, b: &B) -> Csr
where
    A: NeighborSource,
    B: NeighborSource,
{
    assert_eq!(
        a.num_nodes(),
        b.num_nodes(),
        "dimension mismatch: A is over {} nodes, B over {}",
        a.num_nodes(),
        b.num_nodes()
    );
    let n = a.num_nodes();
    // Per-row union via a sort-dedup merge; a dense marker array would be
    // O(n) per worker, which the sort avoids for sparse rows.
    let rows: Vec<Vec<NodeId>> = (0..n as NodeId)
        .into_par_iter()
        .map_init(
            || (Vec::new(), Vec::new()),
            |(arow, brow), u| {
                a.row_into(u, arow);
                let mut out: Vec<NodeId> = Vec::new();
                for &v in arow.iter() {
                    b.row_into(v, brow);
                    out.extend_from_slice(brow);
                }
                out.sort_unstable();
                out.dedup();
                out
            },
        )
        .collect();

    let mut edges = Vec::with_capacity(rows.iter().map(Vec::len).sum());
    for (u, row) in rows.iter().enumerate() {
        edges.extend(row.iter().map(|&w| (u as NodeId, w)));
    }
    CsrBuilder::new().build(&EdgeList::new(n, edges))
}

/// Convenience: the 2-hop ("friends of friends") structure `A·A`.
pub fn two_hop<A: NeighborSource>(a: &A) -> Csr {
    spgemm_bool(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr::{BitPackedCsr, PackedCsrMode};
    use parcsr_graph::gen::{erdos_renyi, rmat, ErParams, RmatParams};

    fn csr_of(n: usize, edges: Vec<(u32, u32)>) -> Csr {
        CsrBuilder::new().build(&EdgeList::new(n, edges))
    }

    /// O(n³) dense boolean reference.
    fn dense_reference(a: &Csr, b: &Csr) -> Vec<Vec<bool>> {
        let n = a.num_nodes();
        let mut c = vec![vec![false; n]; n];
        for u in 0..n as u32 {
            for &v in a.neighbors(u) {
                for &w in b.neighbors(v) {
                    c[u as usize][w as usize] = true;
                }
            }
        }
        c
    }

    fn assert_matches_dense(c: &Csr, dense: &[Vec<bool>]) {
        for u in 0..c.num_nodes() as u32 {
            let expect: Vec<u32> = dense[u as usize]
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x)
                .map(|(w, _)| w as u32)
                .collect();
            assert_eq!(c.neighbors(u), &expect[..], "row {u}");
        }
    }

    #[test]
    fn path_squared_is_two_hop() {
        // 0 -> 1 -> 2 -> 3; squared: 0 -> 2, 1 -> 3.
        let a = csr_of(4, vec![(0, 1), (1, 2), (2, 3)]);
        let c = two_hop(&a);
        assert_eq!(c.neighbors(0), [2]);
        assert_eq!(c.neighbors(1), [3]);
        assert!(c.neighbors(2).is_empty());
    }

    #[test]
    fn matches_dense_reference_on_random_graphs() {
        for seed in 0..4u64 {
            let ga = erdos_renyi(ErParams::new(60, 250, seed));
            let gb = erdos_renyi(ErParams::new(60, 250, seed + 100));
            let a = CsrBuilder::new().build(&ga);
            let b = CsrBuilder::new().build(&gb);
            let c = spgemm_bool(&a, &b);
            assert_matches_dense(&c, &dense_reference(&a, &b));
        }
    }

    #[test]
    fn runs_identically_on_packed_inputs() {
        let g = rmat(RmatParams::new(128, 1_200, 5));
        let a = CsrBuilder::new().build(&g);
        let packed = BitPackedCsr::from_csr(&a, PackedCsrMode::Gap, 4);
        assert_eq!(spgemm_bool(&packed, &packed), spgemm_bool(&a, &a));
    }

    #[test]
    fn identity_behaviour_of_self_loops() {
        // I·A = A when I is the identity (self-loops only).
        let n = 5;
        let i = csr_of(n, (0..n as u32).map(|u| (u, u)).collect());
        let g = erdos_renyi(ErParams::new(n, 12, 3));
        let a = CsrBuilder::new().build(&g.deduped());
        let c = spgemm_bool(&i, &a);
        for u in 0..n as u32 {
            assert_eq!(c.neighbors(u), a.neighbors(u));
        }
    }

    #[test]
    fn empty_inputs() {
        let a = csr_of(3, vec![]);
        let c = two_hop(&a);
        assert_eq!(c.num_edges(), 0);
        let e = csr_of(0, vec![]);
        assert_eq!(two_hop(&e).num_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_panic() {
        let a = csr_of(3, vec![(0, 1)]);
        let b = csr_of(4, vec![(0, 1)]);
        spgemm_bool(&a, &b);
    }
}
