//! Single-source shortest paths over the weighted CSR (`vA` array).
//!
//! Two implementations: binary-heap Dijkstra as the sequential ground truth,
//! and a round-synchronous parallel Bellmann–Ford-style relaxation (all
//! edges relaxed per round with atomic distance minima) whose fixpoint is
//! the same distance vector — a deterministic parallel counterpart, the same
//! relax-until-stable shape as the components algorithm.

use std::collections::BinaryHeap;
// ORDERING: Relaxed throughout — distances only move monotonically
// downward via fetch_min; a stale read costs at most an extra round, and
// rounds are separated by join barriers until a round changes nothing.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use rayon::prelude::*;

use parcsr::WeightedCsr;
use parcsr_graph::NodeId;

/// Distance value for unreachable nodes.
pub const INF: u64 = u64::MAX;

/// Sequential Dijkstra. `O((n + m) log n)`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn dijkstra(graph: &WeightedCsr, source: NodeId) -> Vec<u64> {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let q = parcsr_obs::serve::query_start();
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    // Max-heap of (Reverse(distance), node).
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, NodeId)> = BinaryHeap::new();
    heap.push((std::cmp::Reverse(0), source));
    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        let (targets, weights) = graph.neighbors_weighted(u);
        for (&v, &w) in targets.iter().zip(weights) {
            let nd = d + u64::from(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push((std::cmp::Reverse(nd), v));
            }
        }
    }
    q.finish(parcsr_obs::serve::QueryKind::Traversal, || {
        graph.neighbors_weighted(source).0.len()
    });
    dist
}

/// Parallel round-synchronous relaxation: every round relaxes all out-edges
/// of every node in parallel (`fetch_min` on the target's distance) until no
/// distance changes. Terminates within `n` rounds (no negative weights are
/// representable) at Dijkstra's fixpoint.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_sssp(graph: &WeightedCsr, source: NodeId) -> Vec<u64> {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let q = parcsr_obs::serve::query_start();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[source as usize].store(0, Relaxed);
    loop {
        let changed = (0..n as NodeId)
            .into_par_iter()
            .map(|u| {
                let du = dist[u as usize].load(Relaxed);
                if du == INF {
                    return false;
                }
                let (targets, weights) = graph.neighbors_weighted(u);
                let mut changed = false;
                for (&v, &w) in targets.iter().zip(weights) {
                    let nd = du + u64::from(w);
                    if nd < dist[v as usize].load(Relaxed) {
                        changed |= dist[v as usize].fetch_min(nd, Relaxed) > nd;
                    }
                }
                changed
            })
            .reduce(|| false, |a, b| a | b);
        if !changed {
            break;
        }
    }
    q.finish(parcsr_obs::serve::QueryKind::Traversal, || {
        graph.neighbors_weighted(source).0.len()
    });
    dist.into_iter().map(AtomicU64::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_graph::gen::{rmat, RmatParams};
    use parcsr_graph::WeightedEdgeList;

    fn wcsr(n: usize, edges: Vec<(u32, u32, u32)>) -> WeightedCsr {
        WeightedCsr::from_edge_list(&WeightedEdgeList::new(n, edges), 2)
    }

    #[test]
    fn textbook_example() {
        // 0 -> 1 (4), 0 -> 2 (1), 2 -> 1 (2), 1 -> 3 (1), 2 -> 3 (5).
        let g = wcsr(
            4,
            vec![(0, 1, 4), (0, 2, 1), (2, 1, 2), (1, 3, 1), (2, 3, 5)],
        );
        let want = vec![0, 3, 1, 4];
        assert_eq!(dijkstra(&g, 0), want);
        assert_eq!(parallel_sssp(&g, 0), want);
    }

    #[test]
    fn unreachable_nodes_stay_inf() {
        let g = wcsr(4, vec![(0, 1, 1)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, [0, 1, INF, INF]);
        assert_eq!(parallel_sssp(&g, 0), d);
    }

    #[test]
    fn shorter_multi_hop_beats_direct_edge() {
        let g = wcsr(3, vec![(0, 2, 10), (0, 1, 2), (1, 2, 3)]);
        assert_eq!(dijkstra(&g, 0)[2], 5);
    }

    #[test]
    fn parallel_equals_dijkstra_on_random_graphs() {
        for seed in 0..4u64 {
            let base = rmat(RmatParams::new(256, 3_000, seed));
            let weighted = WeightedEdgeList::from_unweighted(&base, 100);
            let g = WeightedCsr::from_edge_list(&weighted, 4);
            for source in [0u32, 17, 200] {
                assert_eq!(
                    parallel_sssp(&g, source),
                    dijkstra(&g, source),
                    "seed={seed} source={source}"
                );
            }
        }
    }

    #[test]
    fn self_loops_are_harmless() {
        let g = wcsr(2, vec![(0, 0, 5), (0, 1, 1)]);
        assert_eq!(dijkstra(&g, 0), [0, 1]);
        assert_eq!(parallel_sssp(&g, 0), [0, 1]);
    }

    #[test]
    fn parallel_edges_use_the_cheapest() {
        let g = wcsr(2, vec![(0, 1, 9), (0, 1, 2), (0, 1, 5)]);
        assert_eq!(dijkstra(&g, 0)[1], 2);
        assert_eq!(parallel_sssp(&g, 0)[1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source() {
        let g = wcsr(2, vec![(0, 1, 1)]);
        dijkstra(&g, 9);
    }
}
