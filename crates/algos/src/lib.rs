#![warn(missing_docs)]

//! Graph analytics over the (compressed) CSR.
//!
//! The paper's introduction motivates compression with downstream analyses —
//! influence, spread of infection, routing, betweenness. This crate supplies
//! those consumers, running on anything that implements
//! [`parcsr::NeighborSource`] (so the same analysis runs on the plain CSR
//! and the bit-packed one, quantifying the compressed structure's query
//! overhead in a realistic workload):
//!
//! * [`bfs`] — sequential and level-synchronous parallel breadth-first
//!   search;
//! * [`pagerank`] — pull-based power iteration (deterministic: each node
//!   sums its in-neighbor contributions in a fixed order);
//! * [`components`] — weakly connected components by parallel min-label
//!   propagation;
//! * [`triangles`] — triangle counting by sorted-row intersection;
//! * [`spgemm`] — boolean sparse matrix–matrix multiplication on compressed
//!   structures (the workload `GetRowFromCSR` \[28\] was built for);
//! * [`shortest_paths`] — Dijkstra and a parallel relaxation SSSP over the
//!   weighted CSR;
//! * [`betweenness`] — Brandes' betweenness centrality ("the edge
//!   betweenness of the highways", the introduction's own example),
//!   parallel over sources, with a sampled estimator;
//! * [`kcore`] — k-core decomposition by parallel peeling.
//!
//! Every parallel routine has a sequential reference implementation and is
//! property-tested against it.

pub mod betweenness;
pub mod bfs;
pub mod components;
pub mod kcore;
pub mod pagerank;
pub mod shortest_paths;
pub mod spgemm;
pub mod triangles;

pub use betweenness::{betweenness_parallel, betweenness_sampled, betweenness_sequential};
pub use bfs::{bfs_parallel, bfs_sequential, UNREACHABLE};
pub use components::{connected_components_parallel, connected_components_sequential};
pub use kcore::{kcore_parallel, kcore_sequential};
pub use pagerank::{pagerank, PageRankConfig};
pub use shortest_paths::{dijkstra, parallel_sssp, INF};
pub use spgemm::{spgemm_bool, two_hop};
pub use triangles::{
    count_triangles, count_triangles_oriented, count_triangles_sequential, orient,
};
