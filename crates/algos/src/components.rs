//! Weakly connected components by min-label propagation.
//!
//! Every node starts labeled with its own id; each round, labels propagate
//! across edges (in both directions — weak connectivity) taking the minimum.
//! The fixpoint assigns every node the smallest node id in its component, a
//! canonical labeling independent of execution order — which makes the
//! parallel version trivially comparable to the sequential one.

// ORDERING: Relaxed throughout — labels only move monotonically downward
// via fetch_min on independent cells; a stale read can only delay
// convergence by a round (each round ends at a join barrier), never
// corrupt a label.
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

use rayon::prelude::*;

use parcsr::Csr;
use parcsr_graph::NodeId;

/// Sequential reference: BFS-based component labeling with min-id labels.
pub fn connected_components_sequential(csr: &Csr) -> Vec<NodeId> {
    let n = csr.num_nodes();
    // Build an undirected view once.
    let mut undirected: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in 0..n as NodeId {
        for &v in csr.neighbors(u) {
            undirected[u as usize].push(v);
            undirected[v as usize].push(u);
        }
    }
    let mut label = vec![NodeId::MAX; n];
    for start in 0..n as NodeId {
        if label[start as usize] != NodeId::MAX {
            continue;
        }
        // `start` is the smallest unvisited id, hence its component's min.
        let mut stack = vec![start];
        label[start as usize] = start;
        while let Some(u) = stack.pop() {
            for &v in &undirected[u as usize] {
                if label[v as usize] == NodeId::MAX {
                    label[v as usize] = start;
                    stack.push(v);
                }
            }
        }
    }
    label
}

/// Parallel min-label propagation. Converges in O(diameter) rounds; each
/// round relaxes every edge in parallel with atomic `fetch_min`.
pub fn connected_components_parallel(csr: &Csr) -> Vec<NodeId> {
    let n = csr.num_nodes();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    loop {
        let changed = (0..n as NodeId)
            .into_par_iter()
            .map(|u| {
                let mut changed = false;
                let lu = labels[u as usize].load(Relaxed);
                for &v in csr.neighbors(u) {
                    let lv = labels[v as usize].load(Relaxed);
                    if lv < lu {
                        changed |= labels[u as usize].fetch_min(lv, Relaxed) > lv;
                    } else if lu < lv {
                        changed |= labels[v as usize].fetch_min(lu, Relaxed) > lu;
                    }
                }
                changed
            })
            .reduce(|| false, |a, b| a | b);
        if !changed {
            break;
        }
    }
    // Min-label propagation alone converges to the component minimum only if
    // labels can flow through every node; pointer-jump to the fixpoint:
    // label[u] <- label[label[u]] until stable.
    loop {
        let changed = (0..n)
            .into_par_iter()
            .map(|u| {
                let l = labels[u].load(Relaxed);
                let ll = labels[l as usize].load(Relaxed);
                if ll < l {
                    labels[u].fetch_min(ll, Relaxed);
                    true
                } else {
                    false
                }
            })
            .reduce(|| false, |a, b| a | b);
        if !changed {
            // One more edge-relaxation round may be needed after jumps.
            let edge_changed = (0..n as NodeId)
                .into_par_iter()
                .map(|u| {
                    let mut changed = false;
                    let lu = labels[u as usize].load(Relaxed);
                    for &v in csr.neighbors(u) {
                        let lv = labels[v as usize].load(Relaxed);
                        if lv < lu {
                            changed |= labels[u as usize].fetch_min(lv, Relaxed) > lv;
                        } else if lu < lv {
                            changed |= labels[v as usize].fetch_min(lu, Relaxed) > lu;
                        }
                    }
                    changed
                })
                .reduce(|| false, |a, b| a | b);
            if !edge_changed {
                break;
            }
        }
    }
    labels.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr::CsrBuilder;
    use parcsr_graph::gen::{erdos_renyi, rmat, ErParams, RmatParams};
    use parcsr_graph::EdgeList;

    fn csr_of(edges: Vec<(u32, u32)>, n: usize) -> Csr {
        CsrBuilder::new().build(&EdgeList::new(n, edges))
    }

    #[test]
    fn two_components_and_an_isolate() {
        let csr = csr_of(vec![(0, 1), (1, 2), (4, 3)], 6);
        let want = vec![0, 0, 0, 3, 3, 5];
        assert_eq!(connected_components_sequential(&csr), want);
        assert_eq!(connected_components_parallel(&csr), want);
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
        let csr = csr_of(vec![(0, 1), (2, 1)], 3);
        assert_eq!(connected_components_parallel(&csr), [0, 0, 0]);
    }

    #[test]
    fn parallel_equals_sequential_on_random_graphs() {
        for seed in 0..5u64 {
            let g = erdos_renyi(ErParams::new(400, 500, seed)); // sparse => many components
            let csr = CsrBuilder::new().build(&g);
            assert_eq!(
                connected_components_parallel(&csr),
                connected_components_sequential(&csr),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_on_rmat() {
        let g = rmat(RmatParams::new(1 << 10, 1 << 13, 17));
        let csr = CsrBuilder::new().build(&g);
        assert_eq!(
            connected_components_parallel(&csr),
            connected_components_sequential(&csr)
        );
    }

    #[test]
    fn long_path_converges() {
        // A 500-node path stresses the pointer-jumping phase.
        let edges: Vec<(u32, u32)> = (0..499).map(|i| (i + 1, i)).collect();
        let csr = csr_of(edges, 500);
        assert_eq!(connected_components_parallel(&csr), vec![0; 500]);
    }

    #[test]
    fn empty_graph() {
        let csr = csr_of(vec![], 0);
        assert!(connected_components_parallel(&csr).is_empty());
    }
}
