//! Triangle counting by sorted-row intersection.
//!
//! Treats the graph as undirected and simple (symmetrize + dedup happen
//! internally). For every edge `(u, v)` with `u < v`, triangles through it
//! are `|N⁺(u) ∩ N⁺(v)|` on the *oriented* graph where every edge points
//! from the lower-degree endpoint to the higher — the standard
//! work-efficient node-iterator, `O(m^{3/2})`. The sorted CSR rows the
//! construction pipeline guarantees are exactly what the merge-intersection
//! needs.

use rayon::prelude::*;

use parcsr::{Csr, CsrBuilder, NeighborSource};
use parcsr_graph::{EdgeList, NodeId};

/// Counts triangles in the undirected simplification of `graph`.
/// Parallel over nodes.
pub fn count_triangles(graph: &EdgeList) -> u64 {
    count_triangles_oriented(&orient(graph))
}

/// Counts triangles over an already degree-oriented [`NeighborSource`]
/// (every edge pointing from the lower-rank endpoint; see [`orient`]) —
/// runs directly on a bit-packed oriented CSR. Per worker, one reusable
/// buffer holds the current node's row; the counterpart row of each
/// neighbor is *streamed* through the source's visitor and co-scanned
/// against that buffer, so the inner loop never touches the heap.
pub fn count_triangles_oriented<S: NeighborSource>(oriented: &S) -> u64 {
    (0..oriented.num_nodes() as NodeId)
        .into_par_iter()
        .map_init(Vec::new, |nu, u| {
            oriented.row_into(u, nu);
            let mut count = 0u64;
            for &v in nu.iter() {
                count += streamed_intersection_size(nu, oriented, v);
            }
            count
        })
        .sum()
}

/// `|nu ∩ N(v)|` with `N(v)` streamed from the source: a sorted-merge scan
/// that early-exits once the stream passes the end of `nu`.
fn streamed_intersection_size<S: NeighborSource>(nu: &[NodeId], source: &S, v: NodeId) -> u64 {
    let mut i = 0usize;
    let mut count = 0u64;
    source.for_each_neighbor_while(v, &mut |w| {
        while i < nu.len() && nu[i] < w {
            i += 1;
        }
        if i == nu.len() {
            return false;
        }
        if nu[i] == w {
            count += 1;
            i += 1;
        }
        true
    });
    count
}

/// Sequential reference: brute-force over node triples via adjacency sets.
/// `O(n·deg²)`; for tests only.
pub fn count_triangles_sequential(graph: &EdgeList) -> u64 {
    let simple = simple_undirected(graph);
    let csr = CsrBuilder::new().build(&simple);
    let mut count = 0u64;
    for u in 0..csr.num_nodes() as NodeId {
        for &v in csr.neighbors(u) {
            if v <= u {
                continue;
            }
            for &w in csr.neighbors(v) {
                if w <= v {
                    continue;
                }
                if csr.has_edge(u, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Undirected, loop-free, duplicate-free version of the input.
fn simple_undirected(graph: &EdgeList) -> EdgeList {
    let mut edges: Vec<(NodeId, NodeId)> = graph
        .edges()
        .iter()
        .filter(|&&(u, v)| u != v)
        .flat_map(|&(u, v)| [(u, v), (v, u)])
        .collect();
    edges.sort_unstable();
    edges.dedup();
    EdgeList::new(graph.num_nodes(), edges)
}

/// Degree-ordered orientation: keep `(u, v)` iff
/// `(deg(u), u) < (deg(v), v)`. Bounds every oriented out-degree by
/// `O(√m)` on simple graphs. Public so callers can pack the oriented
/// structure (e.g. into a `BitPackedCsr`) and count on the compressed form
/// via [`count_triangles_oriented`].
pub fn orient(graph: &EdgeList) -> Csr {
    let simple = simple_undirected(graph);
    let degrees = simple.degrees_sequential();
    let rank = |x: NodeId| (degrees[x as usize], x);
    let oriented: Vec<(NodeId, NodeId)> = simple
        .edges()
        .iter()
        .copied()
        .filter(|&(u, v)| rank(u) < rank(v))
        .collect();
    CsrBuilder::new().build(&EdgeList::new(simple.num_nodes(), oriented))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_graph::gen::{erdos_renyi, rmat, ErParams, RmatParams};

    #[test]
    fn single_triangle() {
        let g = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles(&g), 1);
        assert_eq!(count_triangles_sequential(&g), 1);
    }

    #[test]
    fn complete_graph_k5() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = EdgeList::new(5, edges);
        assert_eq!(count_triangles(&g), 10);
        assert_eq!(count_triangles_sequential(&g), 10);
    }

    #[test]
    fn triangle_free_bipartite() {
        // K_{3,3} is triangle-free.
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for v in 3..6u32 {
                edges.push((u, v));
            }
        }
        let g = EdgeList::new(6, edges);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn self_loops_and_duplicates_ignored() {
        let g = EdgeList::new(3, vec![(0, 0), (0, 1), (1, 0), (1, 2), (2, 0), (2, 0)]);
        assert_eq!(count_triangles(&g), 1);
    }

    #[test]
    fn parallel_equals_sequential_on_random_graphs() {
        for seed in 0..4u64 {
            let g = erdos_renyi(ErParams::new(80, 500, seed));
            assert_eq!(
                count_triangles(&g),
                count_triangles_sequential(&g),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_on_rmat() {
        let g = rmat(RmatParams::new(128, 1_200, 23));
        assert_eq!(count_triangles(&g), count_triangles_sequential(&g));
    }

    #[test]
    fn rmat_has_more_triangles_than_er_at_equal_density() {
        // Clustering: the skewed model closes far more triangles — the
        // structural property that makes social graphs compressible.
        let rm = rmat(RmatParams::new(1 << 10, 1 << 14, 31));
        let er = erdos_renyi(ErParams::new(1 << 10, 1 << 14, 31));
        assert!(count_triangles(&rm) > 4 * count_triangles(&er));
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_triangles(&EdgeList::new(0, vec![])), 0);
    }

    #[test]
    fn counts_on_packed_oriented_structure() {
        use parcsr::{BitPackedCsr, PackedCsrMode};
        let g = rmat(RmatParams::new(128, 1_500, 41));
        let want = count_triangles(&g);
        let oriented = orient(&g);
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&oriented, mode, 4);
            assert_eq!(count_triangles_oriented(&packed), want, "{}", mode.name());
        }
    }
}
