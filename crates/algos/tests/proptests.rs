//! Property tests: parallel analytics equal their sequential references on
//! arbitrary graphs, and run identically on plain and packed CSRs.

use proptest::prelude::*;

use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode, WeightedCsr};
use parcsr_algos::{
    betweenness_parallel, betweenness_sequential, bfs_parallel, bfs_sequential,
    connected_components_parallel, connected_components_sequential, count_triangles,
    count_triangles_sequential, dijkstra, kcore_parallel, kcore_sequential, pagerank,
    parallel_sssp, spgemm_bool, PageRankConfig,
};
use parcsr_graph::{EdgeList, WeightedEdgeList};

fn arb_graph(max_node: u32, max_edges: usize) -> impl Strategy<Value = EdgeList> {
    prop::collection::vec((0..max_node, 0..max_node), 1..max_edges).prop_map(|edges| {
        let n = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap();
        EdgeList::new(n as usize, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bfs_parallel_equals_sequential(g in arb_graph(60, 200), source in 0u32..60) {
        let csr = CsrBuilder::new().build(&g);
        let source = source % g.num_nodes() as u32;
        prop_assert_eq!(bfs_parallel(&csr, source), bfs_sequential(&csr, source));
    }

    #[test]
    fn bfs_on_packed_equals_plain(g in arb_graph(50, 150), source in 0u32..50) {
        let csr = CsrBuilder::new().build(&g);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        let source = source % g.num_nodes() as u32;
        prop_assert_eq!(bfs_parallel(&packed, source), bfs_sequential(&csr, source));
    }

    #[test]
    fn components_parallel_equals_sequential(g in arb_graph(60, 150)) {
        let csr = CsrBuilder::new().build(&g);
        prop_assert_eq!(
            connected_components_parallel(&csr),
            connected_components_sequential(&csr)
        );
    }

    #[test]
    fn component_labels_are_canonical_minima(g in arb_graph(40, 100)) {
        let csr = CsrBuilder::new().build(&g);
        let labels = connected_components_parallel(&csr);
        for (u, &l) in labels.iter().enumerate() {
            // The label is a member of the component...
            prop_assert_eq!(labels[l as usize], l, "label of {} not a root", u);
            // ...and no smaller than any other member's label.
            prop_assert!(l as usize <= u);
        }
    }

    #[test]
    fn triangles_parallel_equals_sequential(g in arb_graph(40, 200)) {
        prop_assert_eq!(count_triangles(&g), count_triangles_sequential(&g));
    }

    #[test]
    fn pagerank_sums_to_one_and_is_positive(g in arb_graph(50, 150)) {
        let csr = CsrBuilder::new().build(&g);
        let (r, _) = pagerank(&csr, PageRankConfig::default());
        let total: f64 = r.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum={}", total);
        prop_assert!(r.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn kcore_parallel_equals_sequential(g in arb_graph(50, 200)) {
        let csr = CsrBuilder::new().build(&g);
        prop_assert_eq!(kcore_parallel(&csr), kcore_sequential(&csr));
    }

    #[test]
    fn betweenness_parallel_equals_sequential(g in arb_graph(35, 100)) {
        let csr = CsrBuilder::new().build(&g);
        let seq = betweenness_sequential(&csr);
        let par = betweenness_parallel(&csr);
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "node {}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn sssp_parallel_equals_dijkstra(g in arb_graph(40, 150), source in 0u32..40) {
        let weighted = WeightedEdgeList::from_unweighted(&g, 50);
        let wcsr = WeightedCsr::from_edge_list(&weighted, 3);
        let source = source % g.num_nodes() as u32;
        prop_assert_eq!(parallel_sssp(&wcsr, source), dijkstra(&wcsr, source));
    }

    #[test]
    fn spgemm_matches_dense_reference(
        a_edges in prop::collection::vec((0u32..25, 0u32..25), 1..80),
        b_edges in prop::collection::vec((0u32..25, 0u32..25), 1..80),
    ) {
        let a = CsrBuilder::new().build(&EdgeList::new(25, a_edges));
        let b = CsrBuilder::new().build(&EdgeList::new(25, b_edges));
        let c = spgemm_bool(&a, &b);
        for u in 0..25u32 {
            let mut expect: Vec<u32> = Vec::new();
            for &v in a.neighbors(u) {
                expect.extend_from_slice(b.neighbors(v));
            }
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(c.neighbors(u), &expect[..], "row {}", u);
        }
    }

    #[test]
    fn bfs_distances_respect_edges(g in arb_graph(40, 120), source in 0u32..40) {
        // Triangle inequality on edges: dist[v] <= dist[u] + 1 for (u, v).
        let csr = CsrBuilder::new().build(&g);
        let source = source % g.num_nodes() as u32;
        let dist = bfs_parallel(&csr, source);
        for &(u, v) in g.edges() {
            if dist[u as usize] != parcsr_algos::UNREACHABLE {
                prop_assert!(dist[v as usize] <= dist[u as usize] + 1, "edge ({}, {})", u, v);
            }
        }
    }
}
