//! Streaming row cursors — allocation-free access to a slice of a packed
//! array.
//!
//! [`RowCursor`] is the zero-copy counterpart of
//! [`PackedArray::decode_range_into`](crate::PackedArray::decode_range_into):
//! a [`BitReader`] positioned at bit `start · width` that yields `count`
//! fixed-width values one at a time. Because every element occupies the same
//! number of bits, positioning is O(1) and the cursor can seek forward
//! ([`RowCursor::advance`], `Iterator::nth`) without decoding the skipped
//! elements — the property `GetRowFromCSR` exploits to pull one row out of
//! the packed structure without touching anything else.
//!
//! [`GapDecode`] layers the gap (difference) decoding of [`crate::gap`] on
//! top of any `u64` stream: the first value passes through absolute, each
//! subsequent value adds to the running sum. Wrapping a `RowCursor` in a
//! `GapDecode` streams a gap-coded neighbor row back to absolute ids with no
//! intermediate buffer.

use crate::bitbuf::{BitBuf, BitReader};

/// Streaming cursor over `count` consecutive fixed-width values of a bit
/// buffer, starting at element `start`. Created via
/// [`PackedArray::range_cursor`](crate::PackedArray::range_cursor) (or
/// [`RowCursor::new`] for a raw [`BitBuf`]).
#[derive(Debug, Clone)]
pub struct RowCursor<'a> {
    reader: BitReader<'a>,
    width: u32,
    remaining: usize,
}

impl<'a> RowCursor<'a> {
    /// Creates a cursor over elements `[start, start + count)` of `buf`
    /// interpreted as a packed sequence of `width`-bit values.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or if the element range reaches
    /// past the end of the buffer.
    pub fn new(buf: &'a BitBuf, width: u32, start: usize, count: usize) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let pos = start * width as usize;
        let end = pos + count * width as usize;
        assert!(
            end <= buf.len(),
            "element range {start}..{} out of bounds ({} bits, width {width})",
            start + count,
            buf.len()
        );
        RowCursor {
            reader: BitReader::at(buf, pos),
            width,
            remaining: count,
        }
    }

    /// Elements left to read.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Bits per element.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Seeks forward by `n` elements without decoding them — O(1).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the remaining element count.
    pub fn advance(&mut self, n: usize) {
        assert!(
            n <= self.remaining,
            "advance {n} past end ({} remaining)",
            self.remaining
        );
        self.reader.skip(n * self.width as usize);
        self.remaining -= n;
    }
}

impl Iterator for RowCursor<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.reader.read(self.width))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }

    fn nth(&mut self, n: usize) -> Option<u64> {
        if n >= self.remaining {
            self.advance(self.remaining);
            return None;
        }
        self.advance(n);
        self.next()
    }
}

impl ExactSizeIterator for RowCursor<'_> {}

/// Gap-decoding adapter over a `u64` stream: yields the running sum, with
/// the first element passing through as the absolute head. Zero gaps are
/// legal (duplicate neighbors in a multigraph row) and decode to repeats.
#[derive(Debug, Clone)]
pub struct GapDecode<I> {
    inner: I,
    acc: u64,
    started: bool,
}

impl<I> GapDecode<I> {
    /// Wraps a gap stream; the first yielded value is taken as absolute.
    pub fn new(inner: I) -> Self {
        GapDecode {
            inner,
            acc: 0,
            started: false,
        }
    }
}

impl<I: Iterator<Item = u64>> Iterator for GapDecode<I> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        let g = self.inner.next()?;
        self.acc = if self.started { self.acc + g } else { g };
        self.started = true;
        Some(self.acc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I: ExactSizeIterator<Item = u64>> ExactSizeIterator for GapDecode<I> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::PackedArray;
    use crate::gap::encode_gaps;

    #[test]
    fn cursor_yields_range() {
        let values: Vec<u64> = (0..100).map(|i| i * 7 % 64).collect();
        let p = PackedArray::pack(&values);
        let got: Vec<u64> = p.range_cursor(10, 25).collect();
        assert_eq!(got, &values[10..35]);
    }

    #[test]
    fn cursor_whole_and_empty() {
        let values: Vec<u64> = (0..9).collect();
        let p = PackedArray::pack(&values);
        assert_eq!(p.range_cursor(0, 9).collect::<Vec<_>>(), values);
        assert_eq!(p.range_cursor(4, 0).count(), 0);
        assert_eq!(p.range_cursor(9, 0).count(), 0);
    }

    #[test]
    fn cursor_is_exact_size() {
        let p = PackedArray::pack(&[1, 2, 3, 4, 5]);
        let mut c = p.range_cursor(1, 3);
        assert_eq!(c.len(), 3);
        c.next();
        assert_eq!(c.len(), 2);
        assert_eq!(c.remaining(), 2);
    }

    #[test]
    fn cursor_seeks_without_decoding() {
        let values: Vec<u64> = (0..50).map(|i| i * i % 97).collect();
        let p = PackedArray::pack(&values);
        let mut c = p.range_cursor(0, 50);
        c.advance(20);
        assert_eq!(c.next(), Some(values[20]));
        assert_eq!(c.nth(5), Some(values[26]));
        assert_eq!(c.nth(1000), None);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cursor_range_past_end_panics() {
        let p = PackedArray::pack(&[1, 2, 3]);
        p.range_cursor(2, 2);
    }

    #[test]
    fn gap_decode_roundtrips() {
        let row: Vec<u64> = vec![5, 9, 9, 12, 40, 40, 41];
        let gaps = encode_gaps(&row);
        let got: Vec<u64> = GapDecode::new(gaps.iter().copied()).collect();
        assert_eq!(got, row);
    }

    #[test]
    fn gap_decode_over_cursor() {
        let row: Vec<u64> = vec![3, 3, 4, 10, 100];
        let gaps = encode_gaps(&row);
        let p = PackedArray::pack(&gaps);
        let got: Vec<u64> = GapDecode::new(p.range_cursor(0, gaps.len())).collect();
        assert_eq!(got, row);
    }

    #[test]
    fn gap_decode_empty() {
        assert_eq!(GapDecode::new(std::iter::empty()).count(), 0);
    }
}
