//! Gap (difference) coding for sorted sequences.
//!
//! A CSR row is a sorted neighbor list, so consecutive differences ("gaps")
//! are much smaller than the node ids themselves; packing gaps instead of
//! absolute ids shrinks the dominant `jA` array. This is the standard
//! web-graph trick (WebGraph, Ligra+) and matches the paper's reliance on the
//! bit-packing scheme of \[7\] for the column array.
//!
//! Encoding convention: the first element is kept absolute; every later
//! element is replaced by `x[i] - x[i-1]`. The input must be non-decreasing
//! (CSR rows may contain duplicates when the input graph is a multigraph, so
//! zero gaps are legal).

/// Gap-encodes a non-decreasing slice into a new vector.
///
/// # Panics
///
/// Panics if the input is not sorted (non-decreasing).
pub fn encode_gaps(sorted: &[u64]) -> Vec<u64> {
    let mut out = sorted.to_vec();
    encode_gaps_in_place(&mut out);
    out
}

/// Gap-encodes in place.
///
/// # Panics
///
/// Panics if the input is not sorted (non-decreasing).
pub fn encode_gaps_in_place(sorted: &mut [u64]) {
    for i in (1..sorted.len()).rev() {
        assert!(
            sorted[i] >= sorted[i - 1],
            "gap coding requires a sorted input: x[{}]={} < x[{}]={}",
            i,
            sorted[i],
            i - 1,
            sorted[i - 1]
        );
        sorted[i] -= sorted[i - 1];
    }
}

/// Decodes a gap-encoded slice into a new vector.
pub fn decode_gaps(gaps: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    decode_gaps_into(gaps, &mut out);
    out
}

/// Decodes into `out` (cleared first). Decoding is a prefix sum — the same
/// operation the scan crate parallelizes.
pub fn decode_gaps_into(gaps: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.reserve(gaps.len());
    let mut acc = 0u64;
    for (i, &g) in gaps.iter().enumerate() {
        acc = if i == 0 { g } else { acc + g };
        out.push(acc);
    }
}

/// The largest gap in a non-decreasing slice (0 for empty or singleton
/// slices). Determines the pack width for the gap-coded tail of a row.
pub fn max_gap(sorted: &[u64]) -> u64 {
    sorted.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let sorted = vec![3u64, 7, 7, 10, 100, 101];
        let gaps = encode_gaps(&sorted);
        assert_eq!(gaps, [3, 4, 0, 3, 90, 1]);
        assert_eq!(decode_gaps(&gaps), sorted);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(encode_gaps(&[]), Vec::<u64>::new());
        assert_eq!(decode_gaps(&[]), Vec::<u64>::new());
        assert_eq!(encode_gaps(&[42]), vec![42]);
        assert_eq!(decode_gaps(&[42]), vec![42]);
    }

    #[test]
    fn in_place_matches_copying() {
        let sorted: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let mut in_place = sorted.clone();
        encode_gaps_in_place(&mut in_place);
        assert_eq!(in_place, encode_gaps(&sorted));
    }

    #[test]
    #[should_panic(expected = "requires a sorted input")]
    fn unsorted_panics() {
        encode_gaps(&[5, 3]);
    }

    #[test]
    fn max_gap_cases() {
        assert_eq!(max_gap(&[]), 0);
        assert_eq!(max_gap(&[9]), 0);
        assert_eq!(max_gap(&[1, 2, 3]), 1);
        assert_eq!(max_gap(&[1, 100, 101]), 99);
        assert_eq!(max_gap(&[7, 7, 7]), 0);
    }

    #[test]
    fn decode_into_reuses_buffer() {
        let mut out = Vec::with_capacity(100);
        decode_gaps_into(&[5, 1, 1], &mut out);
        assert_eq!(out, [5, 6, 7]);
        decode_gaps_into(&[2], &mut out);
        assert_eq!(out, [2]);
    }

    #[test]
    fn gaps_shrink_widths_on_clustered_data() {
        use crate::fixed::bits_needed;
        // Neighbors clustered near 1e6: absolute ids need 20 bits, gaps 4.
        let sorted: Vec<u64> = (0..100).map(|i| 1_000_000 + i * 10).collect();
        let abs_width = bits_needed(*sorted.iter().max().unwrap());
        let gap_width = bits_needed(max_gap(&sorted));
        assert!(gap_width * 4 <= abs_width);
    }
}
