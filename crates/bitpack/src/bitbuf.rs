//! A growable bit array with arbitrary-offset, arbitrary-width access.
//!
//! Bits are stored little-endian within `u64` words: bit `i` of the buffer is
//! bit `i % 64` of word `i / 64`. A value written with width `w` occupies bits
//! `[pos, pos + w)` and is recovered by reading the same range, regardless of
//! word-boundary crossings.

/// An owned bit array. The unit the paper's Algorithm 4 produces per chunk
/// ("the resultant bit array is then stored in a global location") and merges
/// at the end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitBuf {
    words: Vec<u64>,
    /// Length in bits.
    len: usize,
}

impl BitBuf {
    /// Creates an empty bit buffer.
    pub fn new() -> Self {
        BitBuf::default()
    }

    /// Creates an empty bit buffer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitBuf {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes used by the bit data (capacity-based, what a size report
    /// should count).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Bytes needed to store exactly `len` bits.
    pub fn packed_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// The backing words (last word zero-padded past `len`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(value);
        } else {
            *self.words.last_mut().expect("bit>0 implies a word exists") |= value << bit;
            let spill = bit + width as usize;
            if spill > 64 {
                self.words.push(value >> (64 - bit));
            }
        }
        self.len += width as usize;
        // Clear any garbage above len in the last word (push of a full word
        // already leaves it clean; the shift paths can't set bits above len).
    }

    /// Reads `width` bits starting at bit offset `pos`.
    ///
    /// # Panics
    ///
    /// Panics if the range `[pos, pos + width)` is out of bounds or
    /// `width > 64`.
    #[inline]
    pub fn read_bits(&self, pos: usize, width: u32) -> u64 {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            pos + width as usize <= self.len,
            "bit range {pos}..{} out of bounds (len {})",
            pos + width as usize,
            self.len
        );
        if width == 0 {
            return 0;
        }
        let word = pos / 64;
        let bit = pos % 64;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let lo = self.words[word] >> bit;
        if bit + width as usize <= 64 {
            lo & mask
        } else {
            let hi = self.words[word + 1] << (64 - bit);
            (lo | hi) & mask
        }
    }

    /// Appends all bits of `other` — the bit-level concatenation used by
    /// Algorithm 4's merge step. `O(other.len / 64)`.
    pub fn extend_from(&mut self, other: &BitBuf) {
        let shift = self.len % 64;
        self.words.reserve(other.words.len());
        if shift == 0 {
            self.words.extend_from_slice(&other.words);
        } else {
            for (i, &w) in other.words.iter().enumerate() {
                *self
                    .words
                    .last_mut()
                    .expect("non-word-aligned buffer has words") |= w << shift;
                let remaining_bits = other.len - i * 64;
                if shift + remaining_bits > 64 {
                    self.words.push(w >> (64 - shift));
                }
            }
        }
        self.len += other.len;
        self.truncate_words();
    }

    /// Drops trailing words that hold no live bits (can appear after merges).
    fn truncate_words(&mut self) {
        let needed = self.len.div_ceil(64);
        self.words.truncate(needed);
    }

    /// Reads a single bit.
    #[inline]
    pub fn get_bit(&self, pos: usize) -> bool {
        assert!(pos < self.len, "bit {pos} out of bounds (len {})", self.len);
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }
}

/// Streaming writer over a [`BitBuf`] (a thin convenience wrapper; the buffer
/// itself supports appends directly).
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BitBuf,
}

impl BitWriter {
    /// Creates a writer with an empty buffer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Creates a writer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitWriter {
            buf: BitBuf::with_capacity(bits),
        }
    }

    /// Appends the low `width` bits of `value`.
    #[inline]
    pub fn write(&mut self, value: u64, width: u32) {
        self.buf.push_bits(value, width);
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len()
    }

    /// Finishes writing and returns the buffer.
    pub fn finish(self) -> BitBuf {
        self.buf
    }
}

/// Streaming cursor reading consecutive values from a [`BitBuf`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a BitBuf,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at bit 0.
    pub fn new(buf: &'a BitBuf) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Creates a reader positioned at `pos` bits.
    pub fn at(buf: &'a BitBuf, pos: usize) -> Self {
        assert!(pos <= buf.len(), "start {pos} past end {}", buf.len());
        BitReader { buf, pos }
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads the next `width` bits and advances.
    #[inline]
    pub fn read(&mut self, width: u32) -> u64 {
        let v = self.buf.read_bits(self.pos, width);
        self.pos += width as usize;
        v
    }

    /// Skips `bits` bits.
    pub fn skip(&mut self, bits: usize) {
        assert!(self.pos + bits <= self.buf.len(), "skip past end");
        self.pos += bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_values() {
        for (v, w) in [
            (0u64, 1u32),
            (1, 1),
            (5, 3),
            (255, 8),
            (u64::MAX, 64),
            (1 << 33, 40),
        ] {
            let mut b = BitBuf::new();
            b.push_bits(v, w);
            assert_eq!(b.read_bits(0, w), v, "v={v} w={w}");
            assert_eq!(b.len(), w as usize);
        }
    }

    #[test]
    fn word_boundary_crossing() {
        let mut b = BitBuf::new();
        b.push_bits(0x3FF, 10); // occupies bits 0..10
        b.push_bits(0x1FFFFFFFFFFFFF, 53); // bits 10..63
        b.push_bits(0b101, 3); // bits 63..66 — crosses into word 1
        assert_eq!(b.read_bits(0, 10), 0x3FF);
        assert_eq!(b.read_bits(10, 53), 0x1FFFFFFFFFFFFF);
        assert_eq!(b.read_bits(63, 3), 0b101);
    }

    #[test]
    fn zero_width_is_noop() {
        let mut b = BitBuf::new();
        b.push_bits(0, 0);
        assert!(b.is_empty());
        b.push_bits(7, 3);
        assert_eq!(b.read_bits(0, 0), 0);
        assert_eq!(b.read_bits(3, 0), 0);
    }

    #[test]
    fn writer_reader_stream() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, u32)> = (0..200)
            .map(|i| {
                (
                    (i * 2654435761u64) % (1 << (i % 37 + 1)),
                    (i % 37 + 1) as u32,
                )
            })
            .collect();
        for &(v, width) in &values {
            w.write(v, width);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &(v, width) in &values {
            assert_eq!(r.read(width), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn extend_from_word_aligned() {
        let mut a = BitBuf::new();
        a.push_bits(u64::MAX, 64);
        let mut b = BitBuf::new();
        b.push_bits(0b1011, 4);
        a.extend_from(&b);
        assert_eq!(a.len(), 68);
        assert_eq!(a.read_bits(64, 4), 0b1011);
    }

    #[test]
    fn extend_from_unaligned() {
        let mut a = BitBuf::new();
        a.push_bits(0b101, 3);
        let mut b = BitBuf::new();
        for i in 0..10u64 {
            b.push_bits(i, 17);
        }
        a.extend_from(&b);
        assert_eq!(a.len(), 3 + 170);
        assert_eq!(a.read_bits(0, 3), 0b101);
        for i in 0..10u64 {
            assert_eq!(a.read_bits(3 + 17 * i as usize, 17), i);
        }
    }

    #[test]
    fn extend_from_empty_both_ways() {
        let mut a = BitBuf::new();
        let empty = BitBuf::new();
        a.extend_from(&empty);
        assert!(a.is_empty());
        a.push_bits(3, 2);
        a.extend_from(&empty);
        assert_eq!(a.len(), 2);

        let mut e = BitBuf::new();
        let mut b = BitBuf::new();
        b.push_bits(9, 5);
        e.extend_from(&b);
        assert_eq!(e.read_bits(0, 5), 9);
    }

    #[test]
    fn extend_chain_equals_single_writer() {
        // Merging per-chunk buffers must equal writing everything in order —
        // the correctness contract of Algorithm 4's merge.
        let values: Vec<u64> = (0..137).map(|i| i * 31 % 8192).collect();
        let width = 13;
        let mut whole = BitBuf::new();
        for &v in &values {
            whole.push_bits(v, width);
        }
        let mut merged = BitBuf::new();
        for chunk in values.chunks(29) {
            let mut part = BitBuf::new();
            for &v in chunk {
                part.push_bits(v, width);
            }
            merged.extend_from(&part);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn get_bit() {
        let mut b = BitBuf::new();
        b.push_bits(0b1001101, 7);
        let bits: Vec<bool> = (0..7).map(|i| b.get_bit(i)).collect();
        assert_eq!(bits, [true, false, true, true, false, false, true]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_past_end_panics() {
        let mut b = BitBuf::new();
        b.push_bits(1, 1);
        b.read_bits(0, 2);
    }

    #[test]
    fn size_reporting() {
        let mut b = BitBuf::with_capacity(100);
        for i in 0..10u64 {
            b.push_bits(i, 10);
        }
        assert_eq!(b.packed_bytes(), 13); // 100 bits -> 13 bytes
        assert!(b.heap_bytes() >= 16);
    }

    #[test]
    fn reader_at_offset_and_skip() {
        let mut b = BitBuf::new();
        for i in 0..8u64 {
            b.push_bits(i, 9);
        }
        let mut r = BitReader::at(&b, 18);
        assert_eq!(r.read(9), 2);
        r.skip(9);
        assert_eq!(r.read(9), 4);
        assert_eq!(r.position(), 45);
    }
}
