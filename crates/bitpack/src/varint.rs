//! LEB128 variable-length integers.
//!
//! The byte-aligned comparison codec: the related-work log structures
//! (EveLog/EdgeLog) gap-compress with byte-oriented variable-length codes.
//! The benches use this module to show where fixed-width bit packing wins
//! (uniform small values) and where varints win (heavy-tailed gaps).

/// Appends the LEB128 encoding of `value` to `out`; returns the number of
/// bytes written (1..=10).
pub fn varint_encode(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 value from `bytes` starting at `pos`.
/// Returns `(value, new_pos)`.
///
/// # Panics
///
/// Panics on truncated input or on encodings longer than 10 bytes
/// (which cannot arise from [`varint_encode`]).
pub fn varint_decode(bytes: &[u8], mut pos: usize) -> (u64, usize) {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        assert!(pos < bytes.len(), "truncated varint at byte {pos}");
        assert!(shift < 70, "varint longer than 10 bytes");
        let byte = bytes[pos];
        pos += 1;
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return (value, pos);
        }
        shift += 7;
    }
}

/// Encodes a whole slice; returns the byte stream.
pub fn varint_encode_stream(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        varint_encode(v, &mut out);
    }
    out
}

/// Decodes a stream produced by [`varint_encode_stream`].
///
/// # Panics
///
/// Panics if the stream is truncated.
pub fn varint_decode_stream(bytes: &[u8]) -> Vec<u64> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (v, next) = varint_decode(bytes, pos);
        out.push(v);
        pos = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_values() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            assert_eq!(varint_encode(v, &mut buf), 1);
            assert_eq!(varint_decode(&buf, 0), (v, 1));
        }
    }

    #[test]
    fn boundary_lengths() {
        let cases: [(u64, usize); 6] = [
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::MAX, 10),
            (0, 1),
        ];
        for (v, len) in cases {
            let mut buf = Vec::new();
            assert_eq!(varint_encode(v, &mut buf), len, "v={v}");
            assert_eq!(buf.len(), len);
            assert_eq!(varint_decode(&buf, 0).0, v);
        }
    }

    #[test]
    fn stream_roundtrip() {
        let values: Vec<u64> = (0..1000).map(|i| (i * i * 31) % 1_000_003).collect();
        let bytes = varint_encode_stream(&values);
        assert_eq!(varint_decode_stream(&bytes), values);
    }

    #[test]
    fn stream_of_small_gaps_is_one_byte_each() {
        let gaps = vec![1u64; 500];
        assert_eq!(varint_encode_stream(&gaps).len(), 500);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_input_panics() {
        varint_decode(&[0x80], 0);
    }

    #[test]
    fn decode_at_offset() {
        let mut buf = Vec::new();
        varint_encode(300, &mut buf); // 2 bytes
        varint_encode(7, &mut buf); // 1 byte
        let (v1, p1) = varint_decode(&buf, 0);
        assert_eq!((v1, p1), (300, 2));
        let (v2, p2) = varint_decode(&buf, p1);
        assert_eq!((v2, p2), (7, 3));
    }
}
