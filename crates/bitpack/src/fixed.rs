//! Fixed-width bit packing — the codec of Gopal et al. \[7\] that the paper
//! applies to both CSR arrays.
//!
//! Every value is stored with the same number of bits,
//! `width = ⌈log2(max + 1)⌉`, so element `i` lives at bit offset `i * width`
//! and random access is O(1). This is exactly the property `GetRowFromCSR`
//! \[28\] relies on to fetch a node's row from the packed structure without
//! decompressing anything else.

use crate::bitbuf::BitBuf;
use crate::cursor::RowCursor;

/// Number of bits needed to represent `value` (at least 1, so that a packed
/// array of zeros still occupies addressable slots).
///
/// ```
/// use parcsr_bitpack::bits_needed;
/// assert_eq!(bits_needed(0), 1);
/// assert_eq!(bits_needed(1), 1);
/// assert_eq!(bits_needed(2), 2);
/// assert_eq!(bits_needed(255), 8);
/// assert_eq!(bits_needed(256), 9);
/// assert_eq!(bits_needed(u64::MAX), 64);
/// ```
#[inline]
pub fn bits_needed(value: u64) -> u32 {
    (64 - value.leading_zeros()).max(1)
}

/// A `u64` sequence packed at a uniform bit width with O(1) random access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedArray {
    buf: BitBuf,
    width: u32,
    len: usize,
}

impl PackedArray {
    /// Packs `values` at the minimal uniform width for their maximum.
    pub fn pack(values: &[u64]) -> Self {
        let width = bits_needed(values.iter().copied().max().unwrap_or(0));
        Self::pack_with_width(values, width)
    }

    /// Packs `values` at an explicit width (used by the parallel packer,
    /// where the width is agreed globally before chunks pack independently).
    ///
    /// # Panics
    ///
    /// Panics if any value does not fit in `width` bits, or `width` is 0 or
    /// exceeds 64.
    pub fn pack_with_width(values: &[u64], width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let mut buf = BitBuf::with_capacity(values.len() * width as usize);
        let limit = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        for &v in values {
            assert!(v <= limit, "value {v} does not fit in {width} bits");
            buf.push_bits(v, width);
        }
        PackedArray {
            buf,
            width,
            len: values.len(),
        }
    }

    /// Assembles a packed array from parts produced elsewhere (the parallel
    /// merge path).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != len * width`.
    pub fn from_raw_parts(buf: BitBuf, width: u32, len: usize) -> Self {
        assert_eq!(
            buf.len(),
            len * width as usize,
            "bit buffer length must equal len * width"
        );
        PackedArray { buf, width, len }
    }

    /// Number of packed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per element.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Random access to element `i`. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.buf.read_bits(i * self.width as usize, self.width)
    }

    /// Decodes the whole array.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Iterates over the packed values in order (a streaming cursor, faster
    /// than repeated [`get`](Self::get) because the position advances
    /// incrementally).
    pub fn iter(&self) -> RowCursor<'_> {
        self.range_cursor(0, self.len)
    }

    /// Streaming cursor over elements `[start, start + count)` — the
    /// allocation-free row-extraction primitive. O(1) to create; seekable
    /// via [`RowCursor::advance`].
    ///
    /// # Panics
    ///
    /// Panics if the range reaches past the end of the array.
    pub fn range_cursor(&self, start: usize, count: usize) -> RowCursor<'_> {
        assert!(
            start + count <= self.len,
            "range {start}..{} out of bounds (len {})",
            start + count,
            self.len
        );
        RowCursor::new(&self.buf, self.width, start, count)
    }

    /// Decodes `count` elements starting at index `start` into `out`
    /// (`out` is cleared first). The materializing counterpart of
    /// [`range_cursor`](Self::range_cursor).
    pub fn decode_range_into(&self, start: usize, count: usize, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(count);
        out.extend(self.range_cursor(start, count));
    }

    /// Bytes of bit data when stored compactly.
    pub fn packed_bytes(&self) -> usize {
        self.buf.packed_bytes()
    }

    /// Heap bytes actually held.
    pub fn heap_bytes(&self) -> usize {
        self.buf.heap_bytes()
    }

    /// The underlying bit buffer.
    pub fn bit_buf(&self) -> &BitBuf {
        &self.buf
    }
}

/// Streaming iterator over a whole [`PackedArray`] (a [`RowCursor`] spanning
/// every element).
pub type PackedIter<'a> = RowCursor<'a>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(bits_needed(0), 1);
        for w in 1..=63u32 {
            assert_eq!(bits_needed((1u64 << w) - 1), w.max(1));
            assert_eq!(bits_needed(1u64 << w), w + 1);
        }
    }

    #[test]
    fn pack_roundtrip() {
        let values: Vec<u64> = (0..500).map(|i| i * 997 % 1021).collect();
        let p = PackedArray::pack(&values);
        assert_eq!(p.len(), values.len());
        assert_eq!(p.width(), bits_needed(*values.iter().max().unwrap()));
        assert_eq!(p.to_vec(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn pack_empty() {
        let p = PackedArray::pack(&[]);
        assert!(p.is_empty());
        assert_eq!(p.to_vec(), Vec::<u64>::new());
        assert_eq!(p.packed_bytes(), 0);
    }

    #[test]
    fn pack_all_zeros_still_addressable() {
        let p = PackedArray::pack(&[0, 0, 0]);
        assert_eq!(p.width(), 1);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(1), 0);
    }

    #[test]
    fn pack_64_bit_values() {
        let values = vec![u64::MAX, 0, u64::MAX / 2, 1];
        let p = PackedArray::pack(&values);
        assert_eq!(p.width(), 64);
        assert_eq!(p.to_vec(), values);
    }

    #[test]
    fn explicit_width() {
        let p = PackedArray::pack_with_width(&[1, 2, 3], 20);
        assert_eq!(p.width(), 20);
        assert_eq!(p.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn value_too_wide_panics() {
        PackedArray::pack_with_width(&[16], 4);
    }

    #[test]
    fn decode_range() {
        let values: Vec<u64> = (0..100).collect();
        let p = PackedArray::pack(&values);
        let mut out = Vec::new();
        p.decode_range_into(10, 5, &mut out);
        assert_eq!(out, [10, 11, 12, 13, 14]);
        p.decode_range_into(0, 0, &mut out);
        assert!(out.is_empty());
        p.decode_range_into(99, 1, &mut out);
        assert_eq!(out, [99]);
    }

    #[test]
    fn compression_is_real() {
        // 10k values < 1024 pack at 10 bits: 12.5 kB vs 80 kB raw.
        let values: Vec<u64> = (0..10_000).map(|i| i % 1024).collect();
        let p = PackedArray::pack(&values);
        assert_eq!(p.width(), 10);
        assert!(p.packed_bytes() <= 10_000 * 10 / 8 + 8);
        assert!(p.packed_bytes() * 6 < values.len() * 8);
    }

    #[test]
    fn iter_matches_get() {
        let values: Vec<u64> = (0..77).map(|i| (i * i) % 53).collect();
        let p = PackedArray::pack(&values);
        let via_iter: Vec<u64> = p.iter().collect();
        let via_get: Vec<u64> = (0..p.len()).map(|i| p.get(i)).collect();
        assert_eq!(via_iter, via_get);
        assert_eq!(p.iter().len(), 77);
    }
}
