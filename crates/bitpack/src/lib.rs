#![warn(missing_docs)]

//! Bit-packing compression substrate.
//!
//! The paper compresses both CSR arrays ("our novel technique to store the
//! integer numbers associated with both the degree array iA and the edge
//! column array jA", Section III-A3) with the fixed-width bit-packing scheme
//! of Gopal et al. \[7\], applied chunk-parallel with a final merge of the
//! per-chunk bit arrays (Algorithm 4). This crate is that engine:
//!
//! * [`bitbuf`] — a growable bit array with a [`BitWriter`]/[`BitReader`] pair
//!   that can write and read arbitrary-width (≤ 64 bit) values at arbitrary
//!   bit offsets, including across word boundaries.
//! * [`fixed`] — [`PackedArray`]: a `u64` sequence packed at a uniform width
//!   `⌈log2(max+1)⌉`, with O(1) random access — what the packed `iA`/`jA`
//!   arrays are made of.
//! * [`gap`] — gap (difference) coding of sorted sequences, the standard
//!   pre-transform that shrinks sorted neighbor lists before packing.
//! * [`varint`] — LEB128 variable-length integers, included as the byte-
//!   aligned comparison codec (EveLog/EdgeLog-style gap compression in the
//!   related work).
//! * [`parallel`] — Algorithm 4: split the input into one chunk per
//!   processor, pack every chunk at the globally agreed width, then merge the
//!   resulting bit arrays by bit-level concatenation.
//!
//! # Example
//!
//! ```
//! use parcsr_bitpack::{PackedArray, pack_parallel};
//!
//! let values = vec![3u64, 7, 1, 100, 42, 0, 99];
//! let packed = PackedArray::pack(&values);
//! assert_eq!(packed.width(), 7); // 100 needs 7 bits
//! assert_eq!(packed.get(3), 100);
//! assert_eq!(packed.to_vec(), values);
//!
//! // Same result through the parallel chunk-and-merge path:
//! assert_eq!(pack_parallel(&values, 4).to_vec(), values);
//! ```

pub mod bitbuf;
pub mod cursor;
pub mod fixed;
pub mod gap;
pub mod parallel;
pub mod varint;

pub use bitbuf::{BitBuf, BitReader, BitWriter};
pub use cursor::{GapDecode, RowCursor};
pub use fixed::{bits_needed, PackedArray};
pub use gap::{decode_gaps, decode_gaps_into, encode_gaps, encode_gaps_in_place, max_gap};
pub use parallel::{pack_parallel, pack_parallel_with_width};
pub use varint::{varint_decode, varint_decode_stream, varint_encode, varint_encode_stream};
