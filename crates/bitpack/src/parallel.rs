//! Algorithm 4: chunk-parallel bit packing with a final merge.
//!
//! The paper packs the CSR arrays by splitting them into one chunk per
//! processor, running the bit-pack algorithm of \[7\] on each chunk, storing
//! each resulting bit array "in a global location", and merging them into the
//! final bit array. For the merge to be a plain concatenation the chunks must
//! agree on the element width, so the width is derived from the *global*
//! maximum first (a parallel reduction).

use rayon::prelude::*;

// Per-value cost is uniform (every element packs to `width` bits), so the
// count split is the right plan here; skew-aware planning applies to *rows*,
// not packed values. The shared planner carries the coverage debug-assert a
// private copy once silently dropped.
use parcsr_runtime::chunk_ranges;

use crate::bitbuf::BitBuf;
use crate::fixed::{bits_needed, PackedArray};

/// Packs `values` using `chunks` parallel packers and merges the per-chunk
/// bit arrays (the paper's Algorithm 4). Produces exactly the same
/// [`PackedArray`] as the sequential [`PackedArray::pack`].
pub fn pack_parallel(values: &[u64], chunks: usize) -> PackedArray {
    let max = if values.len() >= 1 << 16 {
        values.par_iter().copied().max().unwrap_or(0)
    } else {
        values.iter().copied().max().unwrap_or(0)
    };
    pack_parallel_with_width(values, chunks, bits_needed(max))
}

/// Packs `values` at an explicit `width` using `chunks` parallel packers.
///
/// # Panics
///
/// Panics if any value does not fit in `width` bits.
pub fn pack_parallel_with_width(values: &[u64], chunks: usize, width: u32) -> PackedArray {
    let ranges = chunk_ranges(values.len(), chunks);
    if ranges.len() <= 1 {
        return PackedArray::pack_with_width(values, width);
    }

    // Each "processor" packs its chunk at the agreed width into its own bit
    // array (Alg. 4 lines 3-4: "The resultant bit array is then stored in a
    // global location").
    let parts: Vec<PackedArray> = ranges
        .into_par_iter()
        .enumerate()
        .map(|(i, r)| {
            let _span = parcsr_obs::enter_with_args(
                "bitpack.chunk",
                parcsr_obs::SpanArgs::new()
                    .chunk(i as u64)
                    .chunk_len(r.len() as u64)
                    .bits(width),
            );
            PackedArray::pack_with_width(&values[r], width)
        })
        .collect();

    // Merge step (Alg. 4 line 5: "merge all bitArrays from global location").
    let merged = parcsr_obs::with_span_args(
        "bitpack.merge",
        parcsr_obs::SpanArgs::new()
            .edges(values.len() as u64)
            .bits(width),
        || {
            let mut merged = BitBuf::with_capacity(values.len() * width as usize);
            for part in &parts {
                merged.extend_from(part.bit_buf());
            }
            merged
        },
    );
    PackedArray::from_raw_parts(merged, width, values.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_equals_sequential() {
        let values: Vec<u64> = (0..10_001).map(|i| (i * 2654435761) % 1_000_000).collect();
        let seq = PackedArray::pack(&values);
        for chunks in [1, 2, 3, 4, 8, 16, 64] {
            let par = pack_parallel(&values, chunks);
            assert_eq!(par, seq, "chunks={chunks}");
        }
    }

    #[test]
    fn empty_input() {
        let p = pack_parallel(&[], 8);
        assert!(p.is_empty());
    }

    #[test]
    fn chunk_boundaries_not_word_aligned() {
        // width 13 with chunk size 7 => per-chunk bit arrays of 91 bits,
        // never word-aligned: exercises the shifted merge path.
        let values: Vec<u64> = (0..70).map(|i| i * 117 % 8000).collect();
        let seq = PackedArray::pack_with_width(&values, 13);
        let par = pack_parallel_with_width(&values, 10, 13);
        assert_eq!(par, seq);
    }

    #[test]
    fn more_chunks_than_values() {
        let values = vec![1u64, 2, 3];
        let par = pack_parallel(&values, 100);
        assert_eq!(par.to_vec(), values);
    }

    #[test]
    fn random_access_after_merge() {
        let values: Vec<u64> = (0..997).map(|i| i % 61).collect();
        let par = pack_parallel(&values, 7);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(par.get(i), v);
        }
    }
}
