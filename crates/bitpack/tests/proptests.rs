//! Property tests for the bit-packing substrate: every codec round-trips on
//! arbitrary inputs, and the parallel pack-and-merge path is bit-identical to
//! the sequential packer.

use proptest::prelude::*;

use parcsr_bitpack::{
    bits_needed, decode_gaps, encode_gaps, pack_parallel, varint_decode_stream,
    varint_encode_stream, BitBuf, PackedArray,
};

proptest! {
    #[test]
    fn packed_array_roundtrip(values in prop::collection::vec(any::<u64>(), 0..1000)) {
        let p = PackedArray::pack(&values);
        prop_assert_eq!(p.to_vec(), values);
    }

    #[test]
    fn packed_array_random_access(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let p = PackedArray::pack(&values);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn packed_width_is_minimal(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let p = PackedArray::pack(&values);
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(p.width(), bits_needed(max));
        // One bit narrower could not represent the maximum.
        if p.width() > 1 {
            let limit = if p.width() - 1 == 64 { u64::MAX } else { (1u64 << (p.width() - 1)) - 1 };
            prop_assert!(max > limit);
        }
    }

    #[test]
    fn parallel_pack_equals_sequential(
        values in prop::collection::vec(any::<u64>(), 0..2000),
        chunks in 1usize..32,
    ) {
        let seq = PackedArray::pack(&values);
        let par = pack_parallel(&values, chunks);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn gap_roundtrip(mut values in prop::collection::vec(0u64..u64::MAX / 2, 0..500)) {
        values.sort_unstable();
        let gaps = encode_gaps(&values);
        prop_assert_eq!(decode_gaps(&gaps), values);
    }

    #[test]
    fn varint_roundtrip(values in prop::collection::vec(any::<u64>(), 0..500)) {
        let bytes = varint_encode_stream(&values);
        prop_assert_eq!(varint_decode_stream(&bytes), values);
    }

    #[test]
    fn bitbuf_write_read(entries in prop::collection::vec((any::<u64>(), 1u32..=64), 0..300)) {
        let mut buf = BitBuf::new();
        let mut masked = Vec::with_capacity(entries.len());
        for &(v, w) in &entries {
            let m = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            buf.push_bits(m, w);
            masked.push((m, w));
        }
        let mut pos = 0usize;
        for &(v, w) in &masked {
            prop_assert_eq!(buf.read_bits(pos, w), v);
            pos += w as usize;
        }
        prop_assert_eq!(buf.len(), pos);
    }

    #[test]
    fn bitbuf_extend_equals_inline(
        a_entries in prop::collection::vec((any::<u64>(), 1u32..=64), 0..100),
        b_entries in prop::collection::vec((any::<u64>(), 1u32..=64), 0..100),
    ) {
        let fill = |entries: &[(u64, u32)]| {
            let mut b = BitBuf::new();
            for &(v, w) in entries {
                let m = if w == 64 { v } else { v & ((1u64 << w) - 1) };
                b.push_bits(m, w);
            }
            b
        };
        let mut joined = fill(&a_entries);
        joined.extend_from(&fill(&b_entries));

        let mut inline = fill(&a_entries);
        for &(v, w) in &b_entries {
            let m = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            inline.push_bits(m, w);
        }
        prop_assert_eq!(joined, inline);
    }

    #[test]
    fn packed_bytes_bound(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        // Compact size is exactly ceil(len * width / 8).
        let p = PackedArray::pack(&values);
        prop_assert_eq!(p.packed_bytes(), (p.len() * p.width() as usize).div_ceil(8));
    }
}
