//! A PCSR-style dynamic graph: the CSR's edge array replaced by a
//! [`Pma`](crate::Pma) of packed `(u, v)` keys.
//!
//! Neighbor queries become ordered range scans over the key space
//! `[u·2³², (u+1)·2³²)`; inserts and deletes are the PMA's amortized
//! `O(log² m)` updates — the trade the related work (PCSR \[9\], PPCSR
//! \[13\]) makes to avoid the static CSR's full-array rebuild per update.
//! [`freeze`](DynamicCsr::freeze) converts back to the static
//! [`parcsr::Csr`] for the compression pipeline.

use parcsr::{Csr, CsrBuilder};
use parcsr_graph::{EdgeList, NodeId};

use crate::pma::Pma;

#[inline]
fn key(u: NodeId, v: NodeId) -> u64 {
    (u64::from(u) << 32) | u64::from(v)
}

/// A mutable directed graph over a fixed node set, backed by a PMA of edge
/// keys.
#[derive(Debug, Clone, Default)]
pub struct DynamicCsr {
    num_nodes: usize,
    edges: Pma,
}

impl DynamicCsr {
    /// Creates an empty graph over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        DynamicCsr {
            num_nodes,
            edges: Pma::new(),
        }
    }

    /// Bulk-loads from an edge list (duplicates collapse — this is a simple
    /// graph structure).
    pub fn from_edge_list(graph: &EdgeList) -> Self {
        let mut g = DynamicCsr::new(graph.num_nodes());
        for &(u, v) in graph.edges() {
            g.insert_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Inserts edge `(u, v)`; returns `false` if already present.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.check(u, v);
        self.edges.insert(key(u, v))
    }

    /// Removes edge `(u, v)`; returns `false` if absent.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.check(u, v);
        self.edges.remove(key(u, v))
    }

    /// Edge existence. `O(log m)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.check(u, v);
        self.edges.contains(key(u, v))
    }

    /// The sorted neighbor list of `u` — a PMA range scan.
    pub fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        assert!((u as usize) < self.num_nodes, "node {u} out of range");
        self.edges
            .range(key(u, 0), u64::from(u + 1) << 32)
            .map(|k| k as NodeId)
            .collect()
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        assert!((u as usize) < self.num_nodes, "node {u} out of range");
        self.edges.count_range(key(u, 0), u64::from(u + 1) << 32)
    }

    /// All edges in `(u, v)` order.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        self.edges
            .iter()
            .map(|k| ((k >> 32) as NodeId, k as NodeId))
            .collect()
    }

    /// Freezes into a static CSR, re-entering the paper's compression
    /// pipeline.
    pub fn freeze(&self) -> Csr {
        CsrBuilder::new().build(&EdgeList::new(self.num_nodes, self.edges()))
    }

    fn check(&self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of range for {} nodes",
            self.num_nodes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_graph::gen::{rmat, RmatParams};

    #[test]
    fn insert_query_remove() {
        let mut g = DynamicCsr::new(10);
        assert!(g.insert_edge(1, 2));
        assert!(g.insert_edge(1, 7));
        assert!(g.insert_edge(1, 4));
        assert!(!g.insert_edge(1, 2), "duplicate");
        assert_eq!(g.neighbors(1), [2, 4, 7]);
        assert_eq!(g.degree(1), 3);
        assert!(g.has_edge(1, 4));
        assert!(g.remove_edge(1, 4));
        assert!(!g.has_edge(1, 4));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn neighbor_ranges_do_not_bleed_between_nodes() {
        let mut g = DynamicCsr::new(4);
        g.insert_edge(1, 3);
        g.insert_edge(2, 0);
        assert_eq!(g.neighbors(1), [3]);
        assert_eq!(g.neighbors(2), [0]);
        assert!(g.neighbors(0).is_empty());
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn extreme_node_ids() {
        // u + 1 << 32 must not overflow the key space logic for the largest
        // legal node id.
        let n = 1 << 20;
        let mut g = DynamicCsr::new(n);
        let last = (n - 1) as u32;
        g.insert_edge(last, 0);
        g.insert_edge(last, last);
        assert_eq!(g.neighbors(last), [0, last]);
    }

    #[test]
    fn freeze_matches_static_builder() {
        let graph = rmat(RmatParams::new(256, 3_000, 13)).deduped();
        let dynamic = DynamicCsr::from_edge_list(&graph);
        let frozen = dynamic.freeze();
        let direct = CsrBuilder::new().build(&graph);
        assert_eq!(frozen, direct);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use std::collections::BTreeSet;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut g = DynamicCsr::new(64);
        let mut reference: BTreeSet<(u32, u32)> = BTreeSet::new();
        for _ in 0..20_000 {
            let (u, v) = (rng.gen_range(0..64u32), rng.gen_range(0..64u32));
            if rng.gen_bool(0.55) {
                assert_eq!(g.insert_edge(u, v), reference.insert((u, v)));
            } else {
                assert_eq!(g.remove_edge(u, v), reference.remove(&(u, v)));
            }
        }
        assert_eq!(g.edges(), reference.iter().copied().collect::<Vec<_>>());
        for u in 0..64u32 {
            let expect: Vec<u32> = reference
                .iter()
                .filter(|&&(s, _)| s == u)
                .map(|&(_, v)| v)
                .collect();
            assert_eq!(g.neighbors(u), expect, "u={u}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = DynamicCsr::new(3);
        g.insert_edge(0, 3);
    }
}
