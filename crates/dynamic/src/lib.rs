#![warn(missing_docs)]

//! `parcsr-dynamic` — the dynamic-graph extension.
//!
//! The paper's related work (Section II) contrasts static CSR with Packed
//! Compressed Sparse Row (PCSR), which "substitutes the edge array in CSR
//! with a Packed Memory Array (PMA), which offers an (amortized)
//! `O(log²|E|)` update cost and asymptotically optimal range queries" — and
//! then explicitly does *not* take that route. This crate takes it, as the
//! extension that closes the static-structure gap: a [`Pma`] over packed
//! edge keys and a [`DynamicCsr`] on top of it supporting edge insertion
//! and deletion while keeping neighbor queries as ordered range scans.
//!
//! A [`DynamicCsr`] converts to the static [`parcsr::Csr`] at any point
//! (freeze-and-pack), connecting the dynamic path back to the paper's
//! compression pipeline.
//!
//! # Example
//!
//! ```
//! use parcsr_dynamic::DynamicCsr;
//!
//! let mut g = DynamicCsr::new(8);
//! g.insert_edge(0, 3);
//! g.insert_edge(0, 1);
//! g.insert_edge(5, 2);
//! assert_eq!(g.neighbors(0), vec![1, 3]);
//! assert!(g.remove_edge(0, 3));
//! assert_eq!(g.neighbors(0), vec![1]);
//!
//! let frozen = g.freeze();
//! assert_eq!(frozen.num_edges(), 2);
//! ```

pub mod pcsr;
pub mod pma;

pub use pcsr::DynamicCsr;
pub use pma::Pma;
