//! A Packed Memory Array: a sorted set of `u64` keys kept in an array with
//! deliberate gaps, so inserts and deletes shift only a bounded
//! neighborhood.
//!
//! Layout: the capacity is a power of two split into equal leaf *segments*
//! of ~`log₂(capacity)` slots. Elements within a leaf are left-justified;
//! gaps sit at each leaf's right end. Density is policed over a conceptual
//! binary tree of windows (leaf → pairs of leaves → … → the whole array):
//! when an insert overfills a leaf, the smallest enclosing window whose
//! density is acceptable is *rebalanced* — its elements redistributed evenly
//! over its leaves — and if even the root is too dense the array doubles
//! (symmetrically for deletes: sparse windows merge, the array halves).
//! This is the classic Itai–Konheim–Rodeh / Bender scheme with the standard
//! amortized `O(log² n)` update bound, in the simplified left-justified-leaf
//! form PCSR uses.

/// Density bounds: leaves may run fuller (and emptier) than the root.
const ROOT_MAX: f64 = 0.70;
const LEAF_MAX: f64 = 0.92;
const ROOT_MIN: f64 = 0.30;
const LEAF_MIN: f64 = 0.08;

/// Minimum capacity (power of two).
const MIN_CAPACITY: usize = 8;

/// A packed memory array of distinct `u64` keys, kept sorted.
#[derive(Debug, Clone)]
pub struct Pma {
    /// Slot storage; only the first `counts[leaf]` slots of each leaf hold
    /// live keys.
    slots: Vec<u64>,
    /// Live keys per leaf segment.
    counts: Vec<usize>,
    /// Slots per leaf segment (power of two).
    segment: usize,
    /// Total live keys.
    len: usize,
}

impl Pma {
    /// Creates an empty PMA.
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAPACITY)
    }

    fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(MIN_CAPACITY);
        let segment = segment_size(capacity);
        Pma {
            slots: vec![0; capacity],
            counts: vec![0; capacity / segment],
            segment,
            len: 0,
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot capacity (for density inspection in tests).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether `key` is present. `O(log n)`.
    pub fn contains(&self, key: u64) -> bool {
        let leaf = self.find_leaf(key);
        self.leaf_slice(leaf).binary_search(&key).is_ok()
    }

    /// Inserts `key`; returns `false` if it was already present.
    /// Amortized `O(log² n)`.
    pub fn insert(&mut self, key: u64) -> bool {
        let leaf = self.find_leaf(key);
        let pos = match self.leaf_slice(leaf).binary_search(&key) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        // Shift the leaf's tail right by one (room is guaranteed: a full
        // leaf is rebalanced *before* the next insert reaches it).
        let base = leaf * self.segment;
        debug_assert!(
            self.counts[leaf] < self.segment,
            "leaf overfull before insert"
        );
        let count = self.counts[leaf];
        self.slots
            .copy_within(base + pos..base + count, base + pos + 1);
        self.slots[base + pos] = key;
        self.counts[leaf] = count + 1;
        self.len += 1;
        self.rebalance_after_insert(leaf);
        true
    }

    /// Removes `key`; returns `false` if it was absent.
    /// Amortized `O(log² n)`.
    pub fn remove(&mut self, key: u64) -> bool {
        let leaf = self.find_leaf(key);
        let pos = match self.leaf_slice(leaf).binary_search(&key) {
            Ok(pos) => pos,
            Err(_) => return false,
        };
        let base = leaf * self.segment;
        let count = self.counts[leaf];
        self.slots
            .copy_within(base + pos + 1..base + count, base + pos);
        self.counts[leaf] = count - 1;
        self.len -= 1;
        self.rebalance_after_remove(leaf);
        true
    }

    /// Iterates all keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.counts.len()).flat_map(move |leaf| self.leaf_slice(leaf).iter().copied())
    }

    /// Iterates keys in `[lo, hi)` in ascending order — the range scan that
    /// makes a PMA-backed edge array support neighbor queries.
    pub fn range(&self, lo: u64, hi: u64) -> impl Iterator<Item = u64> + '_ {
        let start_leaf = self.find_leaf(lo);
        (start_leaf..self.counts.len())
            .flat_map(move |leaf| self.leaf_slice(leaf).iter().copied())
            .skip_while(move |&k| k < lo)
            .take_while(move |&k| k < hi)
    }

    /// Counts keys in `[lo, hi)`.
    pub fn count_range(&self, lo: u64, hi: u64) -> usize {
        self.range(lo, hi).count()
    }

    // ---- internals ----

    fn leaves(&self) -> usize {
        self.counts.len()
    }

    /// Tree height: windows double from leaf (depth `h`) to root (depth 0).
    fn height(&self) -> usize {
        self.leaves().trailing_zeros() as usize
    }

    fn leaf_slice(&self, leaf: usize) -> &[u64] {
        let base = leaf * self.segment;
        &self.slots[base..base + self.counts[leaf]]
    }

    /// The non-empty leaf whose key range covers `key` (the last non-empty
    /// leaf with minimum ≤ `key`); keys below the global minimum resolve to
    /// the first non-empty leaf, and a fully empty PMA to leaf 0. Inserting
    /// at the returned leaf always preserves global order.
    fn find_leaf(&self, key: u64) -> usize {
        if self.len == 0 {
            return 0;
        }
        let (mut lo, mut hi) = (0usize, self.leaves());
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            match self.min_at_or_before(mid) {
                Some(min) if min <= key => lo = mid,
                _ => hi = mid,
            }
        }
        // `lo` may be an empty leaf inheriting its predecessor's range;
        // resolve to the owning non-empty leaf so an insert cannot land
        // between a predecessor's smaller *min* but larger *max*.
        let mut leaf = lo;
        while leaf > 0 && self.counts[leaf] == 0 {
            leaf -= 1;
        }
        if self.counts[leaf] == 0 {
            // key precedes every stored key: the first non-empty leaf owns it.
            leaf = (0..self.leaves())
                .find(|&l| self.counts[l] > 0)
                .expect("len > 0 implies a non-empty leaf");
        }
        leaf
    }

    /// Minimum of the nearest non-empty leaf at or before `leaf`.
    fn min_at_or_before(&self, mut leaf: usize) -> Option<u64> {
        loop {
            if self.counts[leaf] > 0 {
                return Some(self.slots[leaf * self.segment]);
            }
            if leaf == 0 {
                return None;
            }
            leaf -= 1;
        }
    }

    /// Upper density threshold for a window at `depth` (root = 0).
    fn upper(&self, depth: usize) -> f64 {
        let h = self.height().max(1) as f64;
        ROOT_MAX + (LEAF_MAX - ROOT_MAX) * depth as f64 / h
    }

    /// Lower density threshold for a window at `depth`.
    fn lower(&self, depth: usize) -> f64 {
        let h = self.height().max(1) as f64;
        ROOT_MIN - (ROOT_MIN - LEAF_MIN) * depth as f64 / h
    }

    fn window_count(&self, first_leaf: usize, leaves: usize) -> usize {
        self.counts[first_leaf..first_leaf + leaves].iter().sum()
    }

    fn rebalance_after_insert(&mut self, leaf: usize) {
        let mut leaves_in_window = 1;
        let mut depth = self.height();
        loop {
            let first = leaf - (leaf % leaves_in_window);
            let count = self.window_count(first, leaves_in_window);
            let slots = leaves_in_window * self.segment;
            let max_allowed = if leaves_in_window == 1 {
                // A leaf must keep one free slot so the *next* insert has
                // room before its own rebalance runs.
                (self.upper(depth) * slots as f64)
                    .floor()
                    .min((slots - 1) as f64) as usize
            } else {
                (self.upper(depth) * slots as f64).floor() as usize
            };
            if count <= max_allowed {
                if leaves_in_window > 1 {
                    self.redistribute(first, leaves_in_window);
                }
                return;
            }
            if leaves_in_window == self.leaves() {
                self.resize(self.capacity() * 2);
                return;
            }
            leaves_in_window *= 2;
            depth -= 1;
        }
    }

    fn rebalance_after_remove(&mut self, leaf: usize) {
        let mut leaves_in_window = 1;
        let mut depth = self.height();
        loop {
            let first = leaf - (leaf % leaves_in_window);
            let count = self.window_count(first, leaves_in_window);
            let slots = leaves_in_window * self.segment;
            let min_allowed = (self.lower(depth) * slots as f64).ceil() as usize;
            if count >= min_allowed {
                if leaves_in_window > 1 {
                    self.redistribute(first, leaves_in_window);
                }
                return;
            }
            if leaves_in_window == self.leaves() {
                if self.capacity() > MIN_CAPACITY {
                    self.resize(self.capacity() / 2);
                }
                return;
            }
            leaves_in_window *= 2;
            depth -= 1;
        }
    }

    /// Evenly spreads a window's keys over its leaves.
    fn redistribute(&mut self, first_leaf: usize, leaves: usize) {
        let keys: Vec<u64> = (first_leaf..first_leaf + leaves)
            .flat_map(|l| self.leaf_slice(l).to_vec())
            .collect();
        let per = keys.len() / leaves;
        let extra = keys.len() % leaves;
        let mut it = keys.into_iter();
        for i in 0..leaves {
            let leaf = first_leaf + i;
            let take = per + usize::from(i < extra);
            debug_assert!(take <= self.segment, "redistribution overflows a leaf");
            let base = leaf * self.segment;
            for j in 0..take {
                self.slots[base + j] = it.next().expect("key count mismatch");
            }
            self.counts[leaf] = take;
        }
    }

    /// Grows or shrinks to `capacity`, spreading all keys evenly.
    fn resize(&mut self, capacity: usize) {
        let keys: Vec<u64> = self.iter().collect();
        let mut next = Pma::with_capacity(capacity.max(MIN_CAPACITY));
        debug_assert!(keys.len() <= next.capacity());
        let leaves = next.leaves();
        let per = keys.len() / leaves;
        let extra = keys.len() % leaves;
        let mut it = keys.into_iter();
        for i in 0..leaves {
            let take = per + usize::from(i < extra);
            let base = i * next.segment;
            for j in 0..take {
                next.slots[base + j] = it.next().expect("key count mismatch");
            }
            next.counts[i] = take;
        }
        next.len = self.len;
        *self = next;
    }

    /// Checks all structural invariants; `Err` describes the first
    /// violation. Test hook.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.counts.iter().sum::<usize>() != self.len {
            return Err("len does not match leaf counts".into());
        }
        let mut prev: Option<u64> = None;
        for leaf in 0..self.leaves() {
            if self.counts[leaf] > self.segment {
                return Err(format!("leaf {leaf} overfull"));
            }
            for &k in self.leaf_slice(leaf) {
                if let Some(p) = prev {
                    if p >= k {
                        return Err(format!("order violation: {p} >= {k}"));
                    }
                }
                prev = Some(k);
            }
        }
        Ok(())
    }
}

impl Default for Pma {
    fn default() -> Self {
        Pma::new()
    }
}

impl FromIterator<u64> for Pma {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut pma = Pma::new();
        for k in iter {
            pma.insert(k);
        }
        pma
    }
}

/// Leaf segment size for a capacity: the smallest power of two ≥
/// `log₂(capacity)`, clamped to the capacity.
fn segment_size(capacity: usize) -> usize {
    let target = capacity.trailing_zeros().max(1) as usize;
    target.next_power_of_two().min(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_and_contains() {
        let mut pma = Pma::new();
        assert!(pma.insert(5));
        assert!(pma.insert(1));
        assert!(pma.insert(9));
        assert!(!pma.insert(5), "duplicate insert must report false");
        assert!(pma.contains(5));
        assert!(!pma.contains(4));
        assert_eq!(pma.len(), 3);
        assert_eq!(pma.iter().collect::<Vec<_>>(), [1, 5, 9]);
    }

    #[test]
    fn remove() {
        let mut pma: Pma = [3u64, 1, 4, 1, 5].into_iter().collect();
        assert_eq!(pma.len(), 4); // duplicate 1 rejected
        assert!(pma.remove(4));
        assert!(!pma.remove(4));
        assert!(!pma.remove(99));
        assert_eq!(pma.iter().collect::<Vec<_>>(), [1, 3, 5]);
    }

    #[test]
    fn ascending_insertions_grow_cleanly() {
        let mut pma = Pma::new();
        for k in 0..10_000u64 {
            assert!(pma.insert(k));
            if k % 1000 == 0 {
                pma.check_invariants().unwrap();
            }
        }
        assert_eq!(pma.len(), 10_000);
        pma.check_invariants().unwrap();
        assert!(pma.iter().eq(0..10_000));
    }

    #[test]
    fn descending_insertions() {
        let mut pma = Pma::new();
        for k in (0..5_000u64).rev() {
            pma.insert(k);
        }
        pma.check_invariants().unwrap();
        assert!(pma.iter().eq(0..5_000));
    }

    #[test]
    fn random_ops_match_btreeset() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut pma = Pma::new();
        let mut set = BTreeSet::new();
        for step in 0..30_000 {
            let key = rng.gen_range(0..5_000u64);
            if rng.gen_bool(0.6) {
                assert_eq!(pma.insert(key), set.insert(key), "insert {key}");
            } else {
                assert_eq!(pma.remove(key), set.remove(&key), "remove {key}");
            }
            if step % 5_000 == 0 {
                pma.check_invariants().unwrap();
                assert!(pma.iter().eq(set.iter().copied()));
            }
        }
        pma.check_invariants().unwrap();
        assert!(pma.iter().eq(set.iter().copied()));
    }

    #[test]
    fn shrinks_after_mass_deletion() {
        let mut pma = Pma::new();
        for k in 0..4_096u64 {
            pma.insert(k);
        }
        let grown = pma.capacity();
        for k in 0..4_090u64 {
            pma.remove(k);
        }
        pma.check_invariants().unwrap();
        assert!(pma.capacity() < grown, "capacity should shrink");
        assert!(pma.iter().eq(4_090..4_096));
    }

    #[test]
    fn range_scans() {
        let pma: Pma = (0..100u64).map(|k| k * 3).collect();
        assert_eq!(pma.range(10, 22).collect::<Vec<_>>(), [12, 15, 18, 21]);
        assert_eq!(pma.count_range(0, 300), 100);
        assert_eq!(pma.count_range(300, 400), 0);
        assert_eq!(pma.range(297, 10_000).collect::<Vec<_>>(), [297]);
    }

    #[test]
    fn empty_pma() {
        let pma = Pma::new();
        assert!(pma.is_empty());
        assert!(!pma.contains(0));
        assert_eq!(pma.iter().count(), 0);
        assert_eq!(pma.count_range(0, u64::MAX), 0);
        pma.check_invariants().unwrap();
    }

    #[test]
    fn density_stays_within_bounds_during_growth() {
        let mut pma = Pma::new();
        for k in 0..2_000u64 {
            pma.insert(k * 17 % 4_001);
            // Global density never exceeds the leaf bound.
            assert!(pma.len() as f64 <= LEAF_MAX * pma.capacity() as f64 + 1.0);
        }
    }
}
