//! Property tests: the PMA is a drop-in ordered set, and the dynamic CSR
//! tracks a reference edge set under arbitrary operation sequences.

use std::collections::BTreeSet;

use proptest::prelude::*;

use parcsr_dynamic::{DynamicCsr, Pma};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
}

fn arb_ops(max_key: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..max_key).prop_map(Op::Insert),
            (0..max_key).prop_map(Op::Remove),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pma_matches_btreeset(ops in arb_ops(200, 400)) {
        let mut pma = Pma::new();
        let mut set = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(pma.insert(k), set.insert(k), "insert {}", k),
                Op::Remove(k) => prop_assert_eq!(pma.remove(k), set.remove(&k), "remove {}", k),
            }
            prop_assert_eq!(pma.len(), set.len());
        }
        pma.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert!(pma.iter().eq(set.iter().copied()));
    }

    #[test]
    fn pma_range_matches_btreeset_range(
        keys in prop::collection::btree_set(0u64..1000, 0..150),
        lo in 0u64..1000,
        span in 0u64..500,
    ) {
        let pma: Pma = keys.iter().copied().collect();
        let hi = lo.saturating_add(span);
        let got: Vec<u64> = pma.range(lo, hi).collect();
        let want: Vec<u64> = keys.range(lo..hi).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pma_contains_matches(keys in prop::collection::btree_set(0u64..500, 0..200), probe in 0u64..500) {
        let pma: Pma = keys.iter().copied().collect();
        prop_assert_eq!(pma.contains(probe), keys.contains(&probe));
    }

    #[test]
    fn dynamic_csr_tracks_reference(
        ops in prop::collection::vec((any::<bool>(), 0u32..20, 0u32..20), 0..300)
    ) {
        let mut g = DynamicCsr::new(20);
        let mut reference: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (insert, u, v) in ops {
            if insert {
                prop_assert_eq!(g.insert_edge(u, v), reference.insert((u, v)));
            } else {
                prop_assert_eq!(g.remove_edge(u, v), reference.remove(&(u, v)));
            }
        }
        prop_assert_eq!(g.num_edges(), reference.len());
        for u in 0..20u32 {
            let expect: Vec<u32> = reference.iter().filter(|&&(s, _)| s == u).map(|&(_, v)| v).collect();
            prop_assert_eq!(g.degree(u), expect.len());
            prop_assert_eq!(g.neighbors(u), expect, "u={}", u);
        }
    }

    #[test]
    fn freeze_preserves_the_edge_set(
        edges in prop::collection::btree_set((0u32..30, 0u32..30), 0..150)
    ) {
        let mut g = DynamicCsr::new(30);
        for &(u, v) in &edges {
            g.insert_edge(u, v);
        }
        let frozen = g.freeze();
        prop_assert_eq!(frozen.num_edges(), edges.len());
        for &(u, v) in &edges {
            prop_assert!(frozen.has_edge(u, v));
        }
    }
}
