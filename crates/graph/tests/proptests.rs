//! Property tests for the graph substrate.

use std::io::Cursor;

use proptest::prelude::*;

use parcsr_graph::io::{
    read_edge_list, read_temporal_edge_list, write_edge_list, write_temporal_edge_list,
};
use parcsr_graph::{EdgeList, TemporalEdge, TemporalEdgeList};

fn arb_edges(max_node: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_node, 0..max_node), 0..max_len)
}

proptest! {
    #[test]
    fn io_roundtrip(edges in arb_edges(10_000, 300)) {
        let g = EdgeList::from_pairs(edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn sort_is_permutation(edges in arb_edges(1_000, 300)) {
        let g = EdgeList::from_pairs(edges.clone());
        let sorted = g.sorted_by_source();
        prop_assert!(sorted.is_sorted_by_source());
        let mut a = edges;
        a.sort_unstable();
        prop_assert_eq!(sorted.edges(), &a[..]);
    }

    #[test]
    fn degrees_sum_to_edge_count(edges in arb_edges(500, 400)) {
        let g = EdgeList::from_pairs(edges);
        let degrees = g.degrees_sequential();
        let total: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(total as usize, g.num_edges());
    }

    #[test]
    fn symmetrized_contains_both_directions(edges in arb_edges(200, 100)) {
        let g = EdgeList::from_pairs(edges);
        let s = g.symmetrized();
        for &(u, v) in g.edges() {
            prop_assert!(s.edges().contains(&(u, v)));
            if u != v {
                prop_assert!(s.edges().contains(&(v, u)));
            }
        }
    }

    #[test]
    fn temporal_io_roundtrip(
        events in prop::collection::vec((0u32..500, 0u32..500, 0u32..50), 0..200)
    ) {
        let evs: Vec<TemporalEdge> = events.iter().map(|&(u, v, t)| TemporalEdge::new(u, v, t)).collect();
        let num_nodes = if evs.is_empty() { 0 } else { 500 };
        let tl = TemporalEdgeList::new(num_nodes, evs);
        let mut buf = Vec::new();
        write_temporal_edge_list(&tl, &mut buf).unwrap();
        let back = read_temporal_edge_list(Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.events(), tl.events());
    }

    #[test]
    fn snapshot_parity_is_consistent_with_manual_replay(
        events in prop::collection::vec((0u32..20, 0u32..20, 0u32..8), 0..120),
        query_t in 0u32..8,
    ) {
        let evs: Vec<TemporalEdge> = events.iter().map(|&(u, v, t)| TemporalEdge::new(u, v, t)).collect();
        let tl = TemporalEdgeList::new(20, evs.clone());
        let snap = tl.snapshot_at(query_t);
        // Manual parity count per edge.
        for u in 0..20u32 {
            for v in 0..20u32 {
                let count = evs.iter().filter(|e| e.u == u && e.v == v && e.t <= query_t).count();
                let active = snap.binary_search(&(u, v)).is_ok();
                prop_assert_eq!(active, count % 2 == 1, "edge ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn radix_sort_equals_comparison_sort(
        edges in arb_edges(u32::MAX, 400),
        chunks in 1usize..17,
    ) {
        let mut radix = edges.clone();
        parcsr_graph::par_radix_sort_edges(&mut radix, chunks);
        let mut want = edges;
        want.sort_unstable();
        prop_assert_eq!(radix, want);
    }

    #[test]
    fn text_bytes_matches_actual_rendering(edges in arb_edges(100_000, 150)) {
        let g = EdgeList::from_pairs(edges);
        let actual: usize = g
            .edges()
            .iter()
            .map(|&(u, v)| format!("{u}\t{v}\n").len())
            .sum();
        prop_assert_eq!(g.text_bytes(), actual);
    }
}
