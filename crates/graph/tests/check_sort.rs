//! Schedule-exploration tests for the radix-sort scatter pass. Compiled
//! (and run) only under `RUSTFLAGS="--cfg parcsr_check"`.
#![cfg(parcsr_check)]

use parcsr_check as check;
use parcsr_graph::sort::checked::{scatter_pass_model, SortFault};
use parcsr_graph::Edge;

/// One scatter pass equals a stable sort by that pass's digit.
fn reference(edges: &[Edge], pass: u32) -> Vec<Edge> {
    let mut v = edges.to_vec();
    let shift = 16 * pass;
    v.sort_by_key(|&(u, w)| (((u64::from(u) << 32) | u64::from(w)) >> shift) & 0xFFFF);
    v
}

/// The per-(chunk, digit) cursor layout is race-free in every interleaving
/// at p = 2, even when both chunks carry the same digit, and every schedule
/// produces the stable digit sort.
#[test]
fn scatter_race_free_p2_with_shared_digit() {
    let edges: Vec<Edge> = vec![(0, 5), (0, 7), (0, 5), (0, 9)];
    let want = reference(&edges, 0);
    let report = check::model(|| {
        let got = scatter_pass_model(edges.clone(), 2, 0, SortFault::None);
        assert_eq!(got, want);
    });
    // Two chunks × two writes each: C(4, 2) = 6 interleavings.
    assert!(report.executions >= 6, "executions = {}", report.executions);
}

/// Same at p = 3 with digits spread across all chunks.
#[test]
fn scatter_race_free_p3() {
    let edges: Vec<Edge> = vec![(1, 3), (2, 1), (3, 3), (4, 2), (5, 1), (6, 3)];
    let want = reference(&edges, 0);
    check::model(|| {
        let got = scatter_pass_model(edges.clone(), 3, 0, SortFault::None);
        assert_eq!(got, want);
    });
}

/// A high pass exercises the source-node digit (pass 2 reads bits 32..48).
#[test]
fn scatter_race_free_high_pass() {
    let edges: Vec<Edge> = vec![(7, 0), (3, 0), (7, 1), (1, 0)];
    let want = reference(&edges, 2);
    check::model(|| {
        let got = scatter_pass_model(edges.clone(), 2, 2, SortFault::None);
        assert_eq!(got, want);
    });
}

/// Seeded race: sharing chunk 0's cursors makes two chunks write the same
/// destination slot for any digit they share — the unsafe `ScatterTarget`
/// writes would alias, and the checker must say so.
#[test]
fn shared_cursors_race() {
    let edges: Vec<Edge> = vec![(0, 5), (0, 7), (0, 5), (0, 9)];
    let err = check::check(|| {
        scatter_pass_model(edges.clone(), 2, 0, SortFault::SharedCursors);
    })
    .expect_err("shared cursors must produce a write-write race");
    assert_eq!(err.location, "sort.scratch");
    assert_eq!(err.kind, "write-write");
}

/// With fully disjoint digit sets per chunk, even shared cursor *layout*
/// happens to write disjoint slots only if the offsets coincide — here they
/// do not, so the fault is still caught via overlapping destinations.
#[test]
fn shared_cursors_race_disjoint_digits() {
    // Chunk 0 carries digit 1 twice, chunk 1 carries digit 1 once and
    // digit 2 once: destination ranges overlap under the fault.
    let edges: Vec<Edge> = vec![(0, 1), (0, 1), (0, 1), (0, 2)];
    let err = check::check(|| {
        scatter_pass_model(edges.clone(), 2, 0, SortFault::SharedCursors);
    })
    .expect_err("overlapping fault destinations must race");
    assert_eq!(err.location, "sort.scratch");
}
