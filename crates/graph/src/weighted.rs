//! Weighted edge lists — the input for the weighted CSR (`vA` array).
//!
//! Section III: "vA: a value array (if the graph is weighted)". The paper's
//! evaluation uses unweighted social graphs, but the structure is defined
//! for weights, so the reproduction carries them through the whole pipeline
//! (construction, packing, querying).

use rayon::prelude::*;

use crate::types::NodeId;

/// Edge weight. `u32` covers interaction counts / capacities; fixed-width
/// packing applies to it exactly as to node ids.
pub type Weight = u32;

/// A weighted directed edge `u → v` with weight `w`.
pub type WeightedEdge = (NodeId, NodeId, Weight);

/// A directed weighted graph as a flat edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedEdgeList {
    num_nodes: usize,
    edges: Vec<WeightedEdge>,
}

impl WeightedEdgeList {
    /// Builds a weighted edge list over `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn new(num_nodes: usize, edges: Vec<WeightedEdge>) -> Self {
        for &(u, v, _) in &edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            );
        }
        WeightedEdgeList { num_nodes, edges }
    }

    /// Attaches deterministic pseudo-random weights in `1..=max_weight` to
    /// an unweighted edge list (weight = mixed hash of the endpoints, so the
    /// same edge always gets the same weight).
    pub fn from_unweighted(graph: &crate::types::EdgeList, max_weight: Weight) -> Self {
        assert!(max_weight >= 1, "max_weight must be at least 1");
        let edges = graph
            .edges()
            .iter()
            .map(|&(u, v)| {
                let mut h = (u64::from(u) << 32) | u64::from(v);
                h = h.wrapping_mul(0x9E3779B97F4A7C15);
                h ^= h >> 29;
                h = h.wrapping_mul(0xBF58476D1CE4E5B9);
                (u, v, (h % u64::from(max_weight)) as Weight + 1)
            })
            .collect();
        WeightedEdgeList {
            num_nodes: graph.num_nodes(),
            edges,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges.
    pub fn edges(&self) -> &[WeightedEdge] {
        &self.edges
    }

    /// Returns a copy sorted by `(source, target, weight)` (parallel sort).
    pub fn sorted_by_source(&self) -> WeightedEdgeList {
        let mut edges = self.edges.clone();
        edges.par_sort_unstable();
        WeightedEdgeList {
            num_nodes: self.num_nodes,
            edges,
        }
    }

    /// True if sorted by `(source, target)`.
    pub fn is_sorted_by_source(&self) -> bool {
        self.edges
            .windows(2)
            .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1))
    }

    /// Drops the weights.
    pub fn unweighted(&self) -> crate::types::EdgeList {
        crate::types::EdgeList::new(
            self.num_nodes,
            self.edges.iter().map(|&(u, v, _)| (u, v)).collect(),
        )
    }

    /// Maximum weight present (0 for an empty list).
    pub fn max_weight(&self) -> Weight {
        self.edges.iter().map(|&(_, _, w)| w).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, RmatParams};

    #[test]
    fn construction_and_sort() {
        let g = WeightedEdgeList::new(4, vec![(2, 0, 5), (0, 1, 3), (0, 1, 1)]);
        let s = g.sorted_by_source();
        assert!(s.is_sorted_by_source());
        assert_eq!(s.edges()[0], (0, 1, 1));
        assert_eq!(s.edges()[2], (2, 0, 5));
        assert_eq!(g.max_weight(), 5);
    }

    #[test]
    fn from_unweighted_is_deterministic_and_in_range() {
        let base = rmat(RmatParams::new(128, 1_000, 3));
        let a = WeightedEdgeList::from_unweighted(&base, 100);
        let b = WeightedEdgeList::from_unweighted(&base, 100);
        assert_eq!(a, b);
        assert!(a.edges().iter().all(|&(_, _, w)| (1..=100).contains(&w)));
        // Same edge, same weight, even in different positions.
        let duplicated = crate::types::EdgeList::new(4, vec![(1, 2), (0, 3), (1, 2)]);
        let w = WeightedEdgeList::from_unweighted(&duplicated, 50);
        assert_eq!(w.edges()[0].2, w.edges()[2].2);
    }

    #[test]
    fn unweighted_roundtrip() {
        let base = rmat(RmatParams::new(64, 300, 9));
        let w = WeightedEdgeList::from_unweighted(&base, 7);
        assert_eq!(w.unweighted(), base);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoints() {
        WeightedEdgeList::new(2, vec![(0, 2, 1)]);
    }

    #[test]
    fn empty() {
        let g = WeightedEdgeList::new(3, vec![]);
        assert!(g.is_empty());
        assert_eq!(g.max_weight(), 0);
    }
}
