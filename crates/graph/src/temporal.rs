//! Temporal (time-evolving) edge lists — the input of Section IV.
//!
//! The paper models a time-evolving graph as ordered triplets `(u, v, T)`: an
//! occurrence of edge `(u, v)` at time-frame `T` *toggles* the edge — an edge
//! that has appeared an even number of times up to a frame is inactive, odd
//! is active. Inputs are assumed "sorted with respect to the time-frames and
//! then sorted by node numbers for each time-frame"; [`TemporalEdgeList`]
//! enforces exactly that ordering.

use rayon::prelude::*;

use crate::types::{EdgeList, NodeId};

/// Time-frame index.
pub type Timestamp = u32;

/// One toggle event: edge `(u, v)` changes state at frame `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TemporalEdge {
    /// Source node.
    pub u: NodeId,
    /// Target node.
    pub v: NodeId,
    /// Time-frame of the toggle.
    pub t: Timestamp,
}

impl TemporalEdge {
    /// Convenience constructor.
    pub fn new(u: NodeId, v: NodeId, t: Timestamp) -> Self {
        TemporalEdge { u, v, t }
    }
}

/// A time-evolving graph as a list of toggle events, sorted by
/// `(t, u, v)` — the paper's assumed input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalEdgeList {
    num_nodes: usize,
    /// Sorted by (t, u, v).
    events: Vec<TemporalEdge>,
}

impl TemporalEdgeList {
    /// Builds a temporal edge list; events are sorted into the canonical
    /// `(t, u, v)` order (parallel sort).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn new(num_nodes: usize, mut events: Vec<TemporalEdge>) -> Self {
        for e in &events {
            assert!(
                (e.u as usize) < num_nodes && (e.v as usize) < num_nodes,
                "event ({}, {}, {}) out of range for {num_nodes} nodes",
                e.u,
                e.v,
                e.t
            );
        }
        events.par_sort_unstable_by_key(|e| (e.t, e.u, e.v));
        TemporalEdgeList { num_nodes, events }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of toggle events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// True when there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by `(t, u, v)`.
    pub fn events(&self) -> &[TemporalEdge] {
        &self.events
    }

    /// Largest frame index present, or `None` for an empty list.
    pub fn max_frame(&self) -> Option<Timestamp> {
        self.events.last().map(|e| e.t)
    }

    /// Number of frames, taken as `max_frame + 1` (frames with no events
    /// still exist — nothing changed in them).
    pub fn num_frames(&self) -> usize {
        self.max_frame().map_or(0, |t| t as usize + 1)
    }

    /// The events of frame `t` as a sub-slice (binary search; the list is
    /// sorted by frame).
    pub fn frame_events(&self, t: Timestamp) -> &[TemporalEdge] {
        let lo = self.events.partition_point(|e| e.t < t);
        let hi = self.events.partition_point(|e| e.t <= t);
        &self.events[lo..hi]
    }

    /// The edges *added or removed* in frame `t` as a plain edge list (the
    /// per-frame "difference" graph of Figure 4).
    pub fn frame_edge_list(&self, t: Timestamp) -> EdgeList {
        EdgeList::new(
            self.num_nodes,
            self.frame_events(t).iter().map(|e| (e.u, e.v)).collect(),
        )
    }

    /// Sequentially replays all events up to and including frame `t` and
    /// returns the set of *active* edges (odd number of toggles), sorted.
    /// The ground truth for the TCSR snapshot queries — O(events) time,
    /// used only in tests and validation.
    pub fn snapshot_at(&self, t: Timestamp) -> Vec<(NodeId, NodeId)> {
        use std::collections::HashMap;
        let mut parity: HashMap<(NodeId, NodeId), bool> = HashMap::new();
        for e in &self.events {
            if e.t > t {
                break;
            }
            *parity.entry((e.u, e.v)).or_insert(false) ^= true;
        }
        let mut active: Vec<(NodeId, NodeId)> = parity
            .into_iter()
            .filter(|&(_, p)| p)
            .map(|(k, _)| k)
            .collect();
        active.sort_unstable();
        active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TemporalEdgeList {
        // Figure-4-like evolution: edges toggling over 4 frames.
        TemporalEdgeList::new(
            4,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 0),
                TemporalEdge::new(2, 3, 1),
                TemporalEdge::new(0, 1, 2), // delete (0,1)
                TemporalEdge::new(3, 0, 2),
                TemporalEdge::new(0, 1, 3), // re-add (0,1)
            ],
        )
    }

    #[test]
    fn events_are_canonically_sorted() {
        let t = TemporalEdgeList::new(
            3,
            vec![
                TemporalEdge::new(2, 1, 1),
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 0, 1),
            ],
        );
        let order: Vec<_> = t.events().iter().map(|e| (e.t, e.u, e.v)).collect();
        assert_eq!(order, [(0, 0, 1), (1, 1, 0), (1, 2, 1)]);
    }

    #[test]
    fn frame_extraction() {
        let t = sample();
        assert_eq!(t.num_frames(), 4);
        assert_eq!(t.frame_events(0).len(), 2);
        assert_eq!(t.frame_events(1).len(), 1);
        assert_eq!(t.frame_events(2).len(), 2);
        assert_eq!(t.frame_events(3).len(), 1);
        let f2 = t.frame_edge_list(2);
        assert_eq!(f2.edges(), [(0, 1), (3, 0)]);
    }

    #[test]
    fn snapshot_parity_rule() {
        let t = sample();
        assert_eq!(t.snapshot_at(0), [(0, 1), (1, 2)]);
        assert_eq!(t.snapshot_at(1), [(0, 1), (1, 2), (2, 3)]);
        // Frame 2 toggles (0,1) off.
        assert_eq!(t.snapshot_at(2), [(1, 2), (2, 3), (3, 0)]);
        // Frame 3 toggles it back on.
        assert_eq!(t.snapshot_at(3), [(0, 1), (1, 2), (2, 3), (3, 0)]);
    }

    #[test]
    fn empty_list() {
        let t = TemporalEdgeList::new(5, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.num_frames(), 0);
        assert_eq!(t.max_frame(), None);
        assert!(t.snapshot_at(10).is_empty());
        assert!(t.frame_events(0).is_empty());
    }

    #[test]
    fn frame_with_no_events_is_empty_slice() {
        let t = TemporalEdgeList::new(
            3,
            vec![TemporalEdge::new(0, 1, 0), TemporalEdge::new(1, 2, 5)],
        );
        assert_eq!(t.num_frames(), 6);
        assert!(t.frame_events(3).is_empty());
        // Snapshot is unchanged through the quiet frames.
        assert_eq!(t.snapshot_at(3), t.snapshot_at(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_nodes() {
        TemporalEdgeList::new(2, vec![TemporalEdge::new(0, 2, 0)]);
    }
}
