//! Parallel LSD radix sort for edge lists.
//!
//! The paper assumes its input edge lists arrive sorted; in practice the
//! sort dominates preprocessing (compare `BuildTimings::sort_ms` against
//! the rest of the pipeline). Edge pairs are fixed-width 64-bit keys, so a
//! least-significant-digit radix sort applies: four passes of 16-bit
//! digits, each pass a (parallel histogram → prefix sum → parallel scatter)
//! round — the same histogram-plus-prefix-sum shape as the degree/offset
//! computation itself, built on the same `parcsr-scan` machinery.

use rayon::prelude::*;

use parcsr_scan::{chunk_ranges, exclusive_scan_seq};

use crate::types::Edge;

const DIGIT_BITS: u32 = 16;
const RADIX: usize = 1 << DIGIT_BITS;
const PASSES: u32 = 4;

#[inline]
fn key(e: Edge) -> u64 {
    (u64::from(e.0) << 32) | u64::from(e.1)
}

#[inline]
fn digit(e: Edge, pass: u32) -> usize {
    ((key(e) >> (pass * DIGIT_BITS)) & (RADIX as u64 - 1)) as usize
}

/// A raw shared output buffer for the scatter phase. Writers hold disjoint
/// index sets by construction (each (chunk, digit) pair owns the contiguous
/// range the prefix sum assigned to it), which is what makes the unchecked
/// parallel writes sound.
struct ScatterTarget<'a> {
    ptr: *mut Edge,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [Edge]>,
}

// SAFETY: sharing `ScatterTarget` across threads is sound only under the
// disjoint-index invariant: the exclusive prefix sum over per-(chunk, digit)
// histogram counts assigns every (chunk, digit) bucket a contiguous output
// range, the ranges tile the output exactly, and each scatter thread writes
// only inside its own chunk's buckets — so no two threads ever write the
// same index, and nobody reads until the pass's implicit join. That
// invariant is schedule-checked in `checked::scatter_pass_model` (run with
// `--cfg parcsr_check`), including a seeded violation that shares cursors.
unsafe impl Sync for ScatterTarget<'_> {}

impl<'a> ScatterTarget<'a> {
    fn new(buf: &'a mut [Edge]) -> Self {
        ScatterTarget {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    ///
    /// `i` must be in bounds (`i < self.len`) and *owned* by the calling
    /// thread for the duration of the pass: no other thread may write index
    /// `i`, and no thread may read it until the scatter's closing join. The
    /// sort upholds this by giving each (chunk, digit) cursor a private
    /// range carved out by the exclusive prefix sum.
    #[inline]
    unsafe fn write(&self, i: usize, value: Edge) {
        debug_assert!(i < self.len);
        // SAFETY: caller guarantees `i < self.len`, so the offset stays
        // inside the allocation; caller's disjoint-index invariant rules
        // out concurrent access to the same slot.
        unsafe { self.ptr.add(i).write(value) };
    }
}

/// Sorts edges by `(source, target)` with a parallel LSD radix sort using
/// `chunks` logical processors. Stable and deterministic; output equals
/// `edges.sort_unstable()` (ties are full-key equal, so stability is moot).
pub fn par_radix_sort_edges(edges: &mut Vec<Edge>, chunks: usize) {
    let n = edges.len();
    if n <= 1 {
        return;
    }
    let chunks = chunks.max(1).min(n);
    let mut scratch: Vec<Edge> = vec![(0, 0); n];
    let ranges = chunk_ranges(n, chunks);

    // Each pass reads `edges` and scatters into `scratch`, then the two
    // vectors swap contents (an O(1) pointer swap); PASSES is even, so the
    // final result lands back in `edges`.
    for pass in 0..PASSES {
        let src: &[Edge] = edges;
        let dst: &mut [Edge] = &mut scratch;

        // Parallel per-chunk histograms.
        let histograms: Vec<Vec<u64>> = ranges
            .par_iter()
            .map(|r| {
                let mut h = vec![0u64; RADIX];
                for &e in &src[r.clone()] {
                    h[digit(e, pass)] += 1;
                }
                h
            })
            .collect();

        // Global offsets in (digit, chunk) order: an exclusive prefix sum
        // assigns every (chunk, digit) bucket its contiguous output range.
        let mut offsets = vec![0u64; RADIX * chunks];
        for d in 0..RADIX {
            for (c, h) in histograms.iter().enumerate() {
                offsets[d * chunks + c] = h[d];
            }
        }
        exclusive_scan_seq(&mut offsets);

        // Parallel scatter: chunk c writes bucket d into
        // offsets[d * chunks + c] .. + histograms[c][d] — disjoint ranges.
        let target = ScatterTarget::new(dst);
        ranges.par_iter().enumerate().for_each(|(c, r)| {
            let mut cursors: Vec<u64> = (0..RADIX).map(|d| offsets[d * chunks + c]).collect();
            for &e in &src[r.clone()] {
                let d = digit(e, pass);
                // SAFETY: this (chunk, digit) range is owned exclusively by
                // chunk c; cursors never cross into the next bucket because
                // exactly histograms[c][d] elements carry digit d here.
                unsafe { target.write(cursors[d] as usize, e) };
                cursors[d] += 1;
            }
        });

        std::mem::swap(edges, &mut scratch);
    }
}

/// Schedule-checked model of one radix-sort scatter pass (compiled only
/// under `--cfg parcsr_check`).
#[cfg(parcsr_check)]
pub mod checked {
    use std::sync::Arc;

    use parcsr_check as check;
    use parcsr_scan::{chunk_ranges, exclusive_scan_seq};

    use super::{digit, RADIX};
    use crate::types::Edge;

    /// Known-bad variants of the scatter pass, used to validate the checker.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SortFault {
        /// The shipped per-(chunk, digit) cursor layout (must be race-free).
        None,
        /// Every chunk starts its cursors at chunk 0's offsets, as if the
        /// prefix sum had not partitioned the output. Chunks sharing a
        /// digit then write the same destination slots concurrently.
        SharedCursors,
    }

    /// Model of one `par_radix_sort_edges` scatter pass over instrumented
    /// shared memory: the real histogram/offset arithmetic (same `digit`,
    /// same `(digit, chunk)`-order exclusive scan), with the unsafe
    /// `ScatterTarget` writes replaced by checked [`check::Slice`] writes.
    /// Must be called inside [`parcsr_check::model`] /
    /// [`parcsr_check::check`]. Returns the scattered output.
    pub fn scatter_pass_model(
        edges: Vec<Edge>,
        chunks: usize,
        pass: u32,
        fault: SortFault,
    ) -> Vec<Edge> {
        let n = edges.len();
        let chunks = chunks.max(1).min(n.max(1));
        let ranges = chunk_ranges(n, chunks);

        // Histograms and offsets are pre-scatter coordinator work (the real
        // kernel computes them in an earlier rayon phase, separated from
        // the scatter by an implicit sync); the scatter is the phase under
        // test.
        let histograms: Vec<Vec<u64>> = ranges
            .iter()
            .map(|r| {
                let mut h = vec![0u64; RADIX];
                for &e in &edges[r.clone()] {
                    h[digit(e, pass)] += 1;
                }
                h
            })
            .collect();
        let mut offsets = vec![0u64; RADIX * chunks];
        for d in 0..RADIX {
            for (c, h) in histograms.iter().enumerate() {
                offsets[d * chunks + c] = h[d];
            }
        }
        exclusive_scan_seq(&mut offsets);

        let dst = check::Slice::new(vec![(0u32, 0u32); n]).named("sort.scratch");
        let edges = Arc::new(edges);
        let offsets = Arc::new(offsets);
        let workers: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(c, r)| {
                let dst = dst.clone();
                let edges = Arc::clone(&edges);
                let offsets = Arc::clone(&offsets);
                check::spawn(move || {
                    let cursor_chunk = match fault {
                        SortFault::None => c,
                        SortFault::SharedCursors => 0,
                    };
                    let mut cursors: Vec<u64> = (0..RADIX)
                        .map(|d| offsets[d * chunks + cursor_chunk])
                        .collect();
                    for &e in &edges[r.clone()] {
                        let d = digit(e, pass);
                        dst.write(cursors[d] as usize, e);
                        cursors[d] += 1;
                    }
                })
            })
            .collect();
        for h in workers {
            h.join();
        }
        dst.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, RmatParams};

    fn reference(mut v: Vec<Edge>) -> Vec<Edge> {
        v.sort_unstable();
        v
    }

    #[test]
    fn sorts_small_lists() {
        let mut edges = vec![(3u32, 1u32), (0, 9), (3, 0), (2, 5), (0, 1)];
        let want = reference(edges.clone());
        par_radix_sort_edges(&mut edges, 2);
        assert_eq!(edges, want);
    }

    #[test]
    fn matches_std_sort_on_random_input() {
        let g = rmat(RmatParams::new(1 << 12, 50_000, 7));
        for chunks in [1, 2, 3, 8, 16] {
            let mut edges = g.edges().to_vec();
            let want = reference(edges.clone());
            par_radix_sort_edges(&mut edges, chunks);
            assert_eq!(edges, want, "chunks={chunks}");
        }
    }

    #[test]
    fn handles_duplicates_and_extremes() {
        let mut edges = vec![
            (u32::MAX, u32::MAX),
            (0, 0),
            (u32::MAX, 0),
            (0, u32::MAX),
            (0, 0),
            (u32::MAX, u32::MAX),
        ];
        let want = reference(edges.clone());
        par_radix_sort_edges(&mut edges, 3);
        assert_eq!(edges, want);
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty: Vec<Edge> = vec![];
        par_radix_sort_edges(&mut empty, 4);
        assert!(empty.is_empty());
        let mut one = vec![(5u32, 6u32)];
        par_radix_sort_edges(&mut one, 4);
        assert_eq!(one, [(5, 6)]);
    }

    #[test]
    fn already_sorted_is_unchanged() {
        let mut edges: Vec<Edge> = (0..1000u32).map(|i| (i / 4, i % 4)).collect();
        let want = edges.clone();
        par_radix_sort_edges(&mut edges, 8);
        assert_eq!(edges, want);
    }

    #[test]
    fn chunk_count_larger_than_input() {
        let mut edges = vec![(2u32, 0u32), (1, 1), (0, 2)];
        par_radix_sort_edges(&mut edges, 100);
        assert_eq!(edges, [(0, 2), (1, 1), (2, 0)]);
    }
}
