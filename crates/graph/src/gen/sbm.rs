//! Stochastic block model: planted communities.
//!
//! Social networks are community-structured; the SBM makes that structure a
//! controlled parameter. Nodes are split into `blocks` equal communities;
//! each edge endpoint pair lands inside one community with probability
//! `p_in` (normalized against `p_out` mass), otherwise across two distinct
//! communities. Used by the analytics tests (connected components,
//! triangles) to validate behaviour on graphs with known structure.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::types::{Edge, EdgeList, NodeId};

/// Parameters for the block-model generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbmParams {
    /// Number of nodes (split as evenly as possible into blocks).
    pub num_nodes: usize,
    /// Number of edges to emit.
    pub num_edges: usize,
    /// Number of communities.
    pub blocks: usize,
    /// Relative weight of intra-community edges. The probability an edge is
    /// intra-community is `p_in / (p_in + p_out)`.
    pub p_in: f64,
    /// Relative weight of inter-community edges.
    pub p_out: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl SbmParams {
    /// Community-heavy defaults: 90% of edges inside blocks.
    pub fn new(num_nodes: usize, num_edges: usize, blocks: usize, seed: u64) -> Self {
        SbmParams {
            num_nodes,
            num_edges,
            blocks,
            p_in: 0.9,
            p_out: 0.1,
            seed,
        }
    }

    /// Overrides the intra/inter weights.
    pub fn with_mixing(mut self, p_in: f64, p_out: f64) -> Self {
        self.p_in = p_in;
        self.p_out = p_out;
        self
    }
}

const GEN_CHUNK: usize = 1 << 16;

/// The community (block id) of a node under the even split.
pub fn sbm_block_of(node: NodeId, num_nodes: usize, blocks: usize) -> usize {
    let per = num_nodes.div_ceil(blocks);
    (node as usize) / per
}

/// Generates an SBM graph. Parallel and deterministic (per-chunk PRNGs).
pub fn sbm(params: SbmParams) -> EdgeList {
    assert!(params.blocks >= 1, "need at least one block");
    assert!(
        params.num_nodes >= params.blocks,
        "need at least one node per block"
    );
    assert!(
        params.p_in >= 0.0 && params.p_out >= 0.0 && params.p_in + params.p_out > 0.0,
        "mixing weights must be non-negative and not both zero"
    );
    if params.num_edges == 0 {
        return EdgeList::new(params.num_nodes, Vec::new());
    }
    let per = params.num_nodes.div_ceil(params.blocks);
    let intra = params.p_in / (params.p_in + params.p_out);
    let chunks = params.num_edges.div_ceil(GEN_CHUNK);
    let edges: Vec<Edge> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let start = chunk * GEN_CHUNK;
            let count = GEN_CHUNK.min(params.num_edges - start);
            let mut rng = SmallRng::seed_from_u64(
                params.seed ^ (chunk as u64).wrapping_mul(0x94D049BB133111EB),
            );
            (0..count).map(move |_| {
                let b = rng.gen_range(0..params.blocks);
                let block_lo = b * per;
                let block_hi = ((b + 1) * per).min(params.num_nodes);
                let u = rng.gen_range(block_lo..block_hi) as NodeId;
                let v = if params.blocks == 1 || rng.gen_bool(intra) {
                    rng.gen_range(block_lo..block_hi) as NodeId
                } else {
                    // Pick a node in a different block.
                    let mut other = rng.gen_range(0..params.num_nodes) as NodeId;
                    while sbm_block_of(other, params.num_nodes, params.blocks) == b {
                        other = rng.gen_range(0..params.num_nodes) as NodeId;
                    }
                    other
                };
                (u, v)
            })
        })
        .collect();
    EdgeList::new(params.num_nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = SbmParams::new(1_000, 10_000, 4, 7);
        assert_eq!(sbm(p), sbm(p));
    }

    #[test]
    fn counts_and_ranges() {
        let g = sbm(SbmParams::new(100, 2_000, 5, 3));
        assert_eq!(g.num_edges(), 2_000);
        assert!(g.edges().iter().all(|&(u, v)| u < 100 && v < 100));
    }

    #[test]
    fn community_structure_dominates() {
        let params = SbmParams::new(1_000, 50_000, 10, 11);
        let g = sbm(params);
        let intra = g
            .edges()
            .iter()
            .filter(|&&(u, v)| sbm_block_of(u, 1_000, 10) == sbm_block_of(v, 1_000, 10))
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.85, "intra fraction {frac}");
    }

    #[test]
    fn mixing_zero_means_disconnected_blocks() {
        let g = sbm(SbmParams::new(100, 3_000, 4, 5).with_mixing(1.0, 0.0));
        assert!(g
            .edges()
            .iter()
            .all(|&(u, v)| sbm_block_of(u, 100, 4) == sbm_block_of(v, 100, 4)));
    }

    #[test]
    fn single_block_is_erdos_renyi_like() {
        let g = sbm(SbmParams::new(200, 5_000, 1, 9));
        assert_eq!(g.num_edges(), 5_000);
        let stats = crate::stats::DegreeStats::of(&g);
        assert!(stats.gini < 0.3, "no skew expected, gini={}", stats.gini);
    }

    #[test]
    fn zero_edges() {
        assert!(sbm(SbmParams::new(10, 0, 2, 1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "one node per block")]
    fn rejects_more_blocks_than_nodes() {
        sbm(SbmParams::new(3, 10, 5, 1));
    }
}
