//! Time-evolving workload generator for the TCSR pipeline (Section IV).
//!
//! Produces a toggle-event stream over a base R-MAT edge population: each
//! frame activates some new edges and deactivates some currently active ones,
//! mimicking the add/delete evolution of Figure 4. Deterministic per seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::gen::rmat::{rmat, RmatParams};
use crate::temporal::{TemporalEdge, TemporalEdgeList};
use crate::types::Edge;

/// Parameters for the temporal toggle generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalParams {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Size of the underlying edge population (distinct edges that ever
    /// exist).
    pub edge_population: usize,
    /// Number of time-frames.
    pub num_frames: usize,
    /// Toggle events per frame (each toggles a random population edge).
    pub events_per_frame: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl TemporalParams {
    /// Convenience constructor with `events_per_frame` defaulted to
    /// `edge_population / num_frames` (so the graph keeps evolving through
    /// the whole window).
    pub fn new(num_nodes: usize, edge_population: usize, num_frames: usize, seed: u64) -> Self {
        TemporalParams {
            num_nodes,
            edge_population,
            num_frames,
            events_per_frame: (edge_population / num_frames.max(1)).max(1),
            seed,
        }
    }

    /// Overrides the events-per-frame rate.
    pub fn with_events_per_frame(mut self, e: usize) -> Self {
        self.events_per_frame = e;
        self
    }
}

/// Generates a toggle-event stream: frame 0 activates an initial subset of
/// the population; every later frame toggles `events_per_frame` random
/// population edges (an inactive edge becomes active = "edge added", an
/// active one becomes inactive = "edge deleted" — Figure 4's red/dotted
/// edges).
pub fn temporal_toggles(params: TemporalParams) -> TemporalEdgeList {
    assert!(params.num_frames > 0, "need at least one frame");
    // Distinct edge population from an R-MAT sample.
    let population: Vec<Edge> = {
        let g = rmat(RmatParams::new(
            params.num_nodes,
            params.edge_population,
            params.seed,
        ));
        let mut e = g.into_edges();
        e.sort_unstable();
        e.dedup();
        e
    };
    if population.is_empty() {
        return TemporalEdgeList::new(params.num_nodes, Vec::new());
    }

    let mut rng =
        SmallRng::seed_from_u64(params.seed.wrapping_mul(0xA24BAED4963EE407).wrapping_add(1));
    let mut events = Vec::with_capacity(params.num_frames * params.events_per_frame);

    // Frame 0: activate roughly half the population.
    for &e in &population {
        if rng.gen_bool(0.5) {
            events.push(TemporalEdge::new(e.0, e.1, 0));
        }
    }

    // Later frames: random toggles.
    for t in 1..params.num_frames {
        for _ in 0..params.events_per_frame {
            let e = population[rng.gen_range(0..population.len())];
            events.push(TemporalEdge::new(e.0, e.1, t as u32));
        }
    }

    // Within a frame the same edge may have been toggled multiple times;
    // the parity rule handles that, but collapsing even pairs here keeps the
    // stream tidy (a double toggle within one frame is a no-op).
    events.sort_unstable_by_key(|e| (e.t, e.u, e.v));
    let mut collapsed: Vec<TemporalEdge> = Vec::with_capacity(events.len());
    let mut i = 0;
    while i < events.len() {
        let mut j = i + 1;
        while j < events.len() && events[j] == events[i] {
            j += 1;
        }
        if (j - i) % 2 == 1 {
            collapsed.push(events[i]);
        }
        i = j;
    }

    TemporalEdgeList::new(params.num_nodes, collapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = TemporalParams::new(256, 2_000, 8, 3);
        assert_eq!(temporal_toggles(p), temporal_toggles(p));
    }

    #[test]
    fn frames_are_populated() {
        let t = temporal_toggles(TemporalParams::new(512, 4_000, 10, 7));
        assert!(t.num_frames() >= 2, "frames={}", t.num_frames());
        assert!(!t.frame_events(0).is_empty(), "frame 0 seeds the graph");
        assert!(t.num_events() > 100);
    }

    #[test]
    fn no_even_duplicate_within_frame() {
        let t = temporal_toggles(TemporalParams::new(128, 1_000, 6, 11).with_events_per_frame(500));
        // After collapsing, each (u, v) appears at most once per frame.
        let evs = t.events();
        for w in evs.windows(2) {
            assert_ne!(w[0], w[1], "duplicate event {:?}", w[0]);
        }
    }

    #[test]
    fn snapshots_evolve() {
        let t = temporal_toggles(TemporalParams::new(256, 3_000, 6, 5));
        let first = t.snapshot_at(0);
        let last = t.snapshot_at(t.max_frame().unwrap());
        assert_ne!(first, last, "graph should change across frames");
    }

    #[test]
    fn empty_population() {
        let t = temporal_toggles(TemporalParams::new(4, 0, 3, 1));
        assert!(t.is_empty());
    }
}
