//! Deterministic synthetic graph generators.
//!
//! These stand in for the SNAP datasets (DESIGN.md §2): the construction
//! pipeline's behaviour depends on edge count, node count and degree skew,
//! all of which the generators control. Every generator is seeded and
//! deterministic — the same `(params, seed)` produces the same graph on every
//! machine and thread count, because parallel generation seeds one
//! independent PRNG per output chunk.
//!
//! * [`rmat`] — recursive-matrix (Kronecker-like) sampler; power-law-ish
//!   degree distributions matching social networks. The default dataset
//!   stand-in.
//! * [`erdos_renyi`] — uniform G(n, m); the unskewed control.
//! * [`barabasi_albert`] — preferential attachment; an alternative heavy-tail
//!   model (sequential by nature).
//! * [`sbm`] — stochastic block model; planted communities for the analytics
//!   tests that need known structure.
//! * [`temporal_toggles`] — a time-evolving workload for the TCSR pipeline:
//!   edges toggling on/off across frames.

mod ba;
mod er;
mod rmat;
mod sbm;
mod temporal;

pub use ba::{barabasi_albert, BaParams};
pub use er::{erdos_renyi, ErParams};
pub use rmat::{rmat, RmatParams};
pub use sbm::{sbm, sbm_block_of, SbmParams};
pub use temporal::{temporal_toggles, TemporalParams};
