//! Erdős–Rényi G(n, m): m uniformly random directed edges.
//!
//! The unskewed control model: binomial-concentrated degrees, so chunk loads
//! in the parallel pipelines are naturally balanced. Comparing construction
//! scaling on ER vs. R-MAT isolates the cost of degree skew.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::types::{Edge, EdgeList, NodeId};

/// Parameters for G(n, m).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErParams {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of edges sampled uniformly (with replacement — duplicates
    /// possible, as in a raw crawl; call [`EdgeList::deduped`] to simplify).
    pub num_edges: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl ErParams {
    /// Convenience constructor.
    pub fn new(num_nodes: usize, num_edges: usize, seed: u64) -> Self {
        ErParams {
            num_nodes,
            num_edges,
            seed,
        }
    }
}

const GEN_CHUNK: usize = 1 << 16;

/// Generates a G(n, m) graph, parallel and deterministic (per-chunk PRNGs).
pub fn erdos_renyi(params: ErParams) -> EdgeList {
    assert!(
        params.num_nodes > 0 || params.num_edges == 0,
        "edges need nodes"
    );
    if params.num_edges == 0 {
        return EdgeList::new(params.num_nodes, Vec::new());
    }
    let n = params.num_nodes as u64;
    let chunks = params.num_edges.div_ceil(GEN_CHUNK);
    let edges: Vec<Edge> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let start = chunk * GEN_CHUNK;
            let count = GEN_CHUNK.min(params.num_edges - start);
            let mut rng = SmallRng::seed_from_u64(
                params.seed ^ (chunk as u64).wrapping_mul(0xD1B54A32D192ED03),
            );
            (0..count).map(move |_| (rng.gen_range(0..n) as NodeId, rng.gen_range(0..n) as NodeId))
        })
        .collect();
    EdgeList::new(params.num_nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn deterministic() {
        let p = ErParams::new(500, 5_000, 99);
        assert_eq!(erdos_renyi(p), erdos_renyi(p));
    }

    #[test]
    fn counts_and_ranges() {
        let g = erdos_renyi(ErParams::new(100, 1_000, 5));
        assert_eq!(g.num_edges(), 1_000);
        assert!(g.edges().iter().all(|&(u, v)| u < 100 && v < 100));
    }

    #[test]
    fn degrees_are_concentrated() {
        let g = erdos_renyi(ErParams::new(1 << 12, 1 << 16, 21));
        let s = DegreeStats::of(&g);
        // Mean degree 16; binomial spread keeps the max within a small
        // multiple of the mean, unlike a power-law graph.
        assert!(s.max_degree < 16 * 4, "max={}", s.max_degree);
        assert!(s.gini < 0.3, "gini={}", s.gini);
    }

    #[test]
    fn zero_edges_allowed_on_empty_graph() {
        let g = erdos_renyi(ErParams::new(0, 0, 1));
        assert!(g.is_empty());
    }
}
