//! R-MAT (recursive matrix) generator.
//!
//! Each edge is sampled by recursively descending into one of four quadrants
//! of the adjacency matrix with probabilities `(a, b, c, d)`; skewed
//! probabilities concentrate edges on low-id rows, giving the heavy-tailed
//! degree distributions of real social networks. The standard parameters
//! `(0.57, 0.19, 0.19, 0.05)` (Graph500) approximate SNAP-style social
//! graphs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::types::{Edge, EdgeList, NodeId};

/// Parameters for the R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Number of nodes; rounded up internally to a power of two for the
    /// recursion, with out-of-range samples rejected, so the emitted graph
    /// has ids `< num_nodes`.
    pub num_nodes: usize,
    /// Number of edges to emit.
    pub num_edges: usize,
    /// Quadrant probabilities; must be non-negative and sum to ~1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// PRNG seed; same seed, same graph.
    pub seed: u64,
}

impl RmatParams {
    /// Graph500-style defaults: `(a,b,c,d) = (0.57, 0.19, 0.19, 0.05)`.
    pub fn new(num_nodes: usize, num_edges: usize, seed: u64) -> Self {
        RmatParams {
            num_nodes,
            num_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            seed,
        }
    }

    /// Overrides the quadrant probabilities.
    pub fn with_quadrants(mut self, a: f64, b: f64, c: f64, d: f64) -> Self {
        self.a = a;
        self.b = b;
        self.c = c;
        self.d = d;
        self
    }

    fn validate(&self) {
        assert!(self.num_nodes > 0, "R-MAT needs at least one node");
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "quadrant probabilities must be non-negative"
        );
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "quadrant probabilities must sum to 1 (got {sum})"
        );
    }
}

/// Number of edges each parallel generation chunk produces. Small enough to
/// load-balance, large enough to amortize PRNG setup.
const GEN_CHUNK: usize = 1 << 16;

/// Generates an R-MAT graph. Parallel and deterministic: edges are produced
/// in fixed-size chunks, each from its own PRNG seeded by `(seed, chunk
/// index)`, so the output is independent of the thread count.
pub fn rmat(params: RmatParams) -> EdgeList {
    params.validate();
    let scale = params.num_nodes.next_power_of_two().trailing_zeros();
    let chunks = params.num_edges.div_ceil(GEN_CHUNK).max(1);

    let edges: Vec<Edge> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let start = chunk * GEN_CHUNK;
            let count = GEN_CHUNK.min(params.num_edges - start);
            let mut rng = SmallRng::seed_from_u64(
                params.seed ^ (chunk as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            (0..count).map(move |_| sample_edge(&mut rng, scale, &params))
        })
        .collect();

    EdgeList::new(params.num_nodes, edges)
}

/// Samples one edge, rejecting endpoints `>= num_nodes` (needed when
/// `num_nodes` is not a power of two).
fn sample_edge(rng: &mut SmallRng, scale: u32, p: &RmatParams) -> Edge {
    loop {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < p.a {
                (0, 0)
            } else if r < p.a + p.b {
                (0, 1)
            } else if r < p.a + p.b + p.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if (u as usize) < p.num_nodes && (v as usize) < p.num_nodes {
            return (u as NodeId, v as NodeId);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn deterministic_across_runs() {
        let p = RmatParams::new(1 << 10, 10_000, 7);
        let g1 = rmat(p);
        let g2 = rmat(p);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(RmatParams::new(1 << 10, 5_000, 1));
        let b = rmat(RmatParams::new(1 << 10, 5_000, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn respects_counts_and_ranges() {
        let g = rmat(RmatParams::new(1000, 20_000, 3)); // non-power-of-two n
        assert_eq!(g.num_edges(), 20_000);
        assert_eq!(g.num_nodes(), 1000);
        assert!(g
            .edges()
            .iter()
            .all(|&(u, v)| (u as usize) < 1000 && (v as usize) < 1000));
    }

    #[test]
    fn skewed_parameters_give_skewed_degrees() {
        let skewed = rmat(RmatParams::new(1 << 12, 1 << 16, 11));
        let uniform =
            rmat(RmatParams::new(1 << 12, 1 << 16, 11).with_quadrants(0.25, 0.25, 0.25, 0.25));
        let s = DegreeStats::of(&skewed);
        let u = DegreeStats::of(&uniform);
        assert!(
            s.gini > u.gini + 0.15,
            "rmat skew not visible: skewed gini {} vs uniform {}",
            s.gini,
            u.gini
        );
        assert!(s.max_degree > u.max_degree * 2);
    }

    #[test]
    fn single_edge_graph() {
        let g = rmat(RmatParams::new(2, 1, 0));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(RmatParams::new(8, 8, 0).with_quadrants(0.5, 0.5, 0.5, 0.5));
    }

    #[test]
    fn zero_edges() {
        let g = rmat(RmatParams::new(16, 0, 0));
        assert!(g.is_empty());
        assert_eq!(g.num_nodes(), 16);
    }
}
