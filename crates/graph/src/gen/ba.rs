//! Barabási–Albert preferential attachment.
//!
//! Grows the graph one node at a time, attaching each new node to `m`
//! existing nodes chosen proportionally to their current degree (implemented
//! with the standard repeated-endpoints trick: sampling a uniform element of
//! the endpoint log *is* degree-proportional sampling). Inherently
//! sequential — included as the second heavy-tail model and as a sequential
//! workload in the generator benches.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::types::{Edge, EdgeList, NodeId};

/// Parameters for the BA model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaParams {
    /// Final number of nodes.
    pub num_nodes: usize,
    /// Edges added per new node (also the size of the seed clique).
    pub edges_per_node: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl BaParams {
    /// Convenience constructor.
    pub fn new(num_nodes: usize, edges_per_node: usize, seed: u64) -> Self {
        BaParams {
            num_nodes,
            edges_per_node,
            seed,
        }
    }
}

/// Generates a BA graph: `(num_nodes - m) * m` edges, heavy-tailed in-degree.
///
/// # Panics
///
/// Panics if `edges_per_node == 0` or `num_nodes <= edges_per_node`.
pub fn barabasi_albert(params: BaParams) -> EdgeList {
    let m = params.edges_per_node;
    assert!(m > 0, "edges_per_node must be positive");
    assert!(
        params.num_nodes > m,
        "num_nodes ({}) must exceed edges_per_node ({m})",
        params.num_nodes
    );
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut edges: Vec<Edge> = Vec::with_capacity((params.num_nodes - m) * m);
    // Endpoint log for degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(edges.capacity() * 2);

    // Seed stage: node `m` connects to all of 0..m, giving every seed node
    // nonzero degree.
    for v in 0..m {
        edges.push((m as NodeId, v as NodeId));
        endpoints.push(m as NodeId);
        endpoints.push(v as NodeId);
    }

    for u in (m + 1)..params.num_nodes {
        let mut chosen = [0 as NodeId; 0].to_vec();
        chosen.reserve(m);
        // Sample m distinct targets degree-proportionally.
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t as usize != u && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((u as NodeId, t));
            endpoints.push(u as NodeId);
            endpoints.push(t);
        }
    }

    EdgeList::new(params.num_nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn deterministic() {
        let p = BaParams::new(300, 3, 5);
        assert_eq!(barabasi_albert(p), barabasi_albert(p));
    }

    #[test]
    fn edge_count_formula() {
        let g = barabasi_albert(BaParams::new(100, 4, 1));
        assert_eq!(g.num_edges(), (100 - 4) * 4);
    }

    #[test]
    fn no_self_loops_after_seed_stage() {
        let g = barabasi_albert(BaParams::new(200, 2, 9));
        assert!(g.edges().iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn targets_are_distinct_per_node() {
        let g = barabasi_albert(BaParams::new(50, 3, 2));
        for u in 4..50u32 {
            let mut targets: Vec<_> = g
                .edges()
                .iter()
                .filter(|&&(s, _)| s == u)
                .map(|&(_, t)| t)
                .collect();
            let before = targets.len();
            targets.sort_unstable();
            targets.dedup();
            assert_eq!(targets.len(), before, "node {u} repeated a target");
        }
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = barabasi_albert(BaParams::new(4000, 3, 13));
        // BA skews *in*-degree; measure on the reversed graph.
        let reversed = EdgeList::new(
            g.num_nodes(),
            g.edges().iter().map(|&(u, v)| (v, u)).collect(),
        );
        let s = DegreeStats::of(&reversed);
        assert!(
            s.max_degree as f64 > 10.0 * s.mean_degree,
            "max={} mean={}",
            s.max_degree,
            s.mean_degree
        );
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn rejects_tiny_n() {
        barabasi_albert(BaParams::new(3, 3, 0));
    }
}
