//! Profiles of the paper's four evaluation datasets (Table II).
//!
//! The datasets themselves are public (snap.stanford.edu) but not bundled;
//! each profile records the exact published node/edge counts and a
//! skew-matched R-MAT recipe that synthesizes a structural stand-in at any
//! scale. The Table II harness runs on these stand-ins by default and on the
//! real files when given paths (see `parcsr-bench`).

use crate::gen::{rmat, RmatParams};
use crate::types::EdgeList;

/// A published dataset's identity plus a generator recipe for its stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as printed in Table II.
    pub name: &'static str,
    /// Node count published in Table II.
    pub nodes: usize,
    /// Edge count published in Table II.
    pub edges: usize,
    /// Edge-list text size published in Table II, in bytes (approximate —
    /// the paper prints "1.1 GB" etc.).
    pub paper_edgelist_bytes: u64,
    /// Packed-CSR size published in Table II, in bytes.
    pub paper_csr_bytes: u64,
    /// R-MAT quadrant probabilities used for the stand-in. Web graphs are
    /// more locally clustered than social graphs, so WebNotreDame gets a
    /// more skewed diagonal.
    pub quadrants: (f64, f64, f64, f64),
    /// Construction times published in Table II as `(processors, ms)` pairs.
    pub paper_times_ms: &'static [(usize, f64)],
}

impl DatasetProfile {
    /// Synthesizes the stand-in graph at `scale` (1.0 = full published
    /// size). The harness defaults to 1/16 scale so Table II regenerates on
    /// a laptop in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn synthesize(&self, scale: f64, seed: u64) -> EdgeList {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive, got {scale}"
        );
        let nodes = ((self.nodes as f64 * scale) as usize).max(2);
        let edges = ((self.edges as f64 * scale) as usize).max(1);
        let (a, b, c, d) = self.quadrants;
        rmat(RmatParams::new(nodes, edges, seed).with_quadrants(a, b, c, d))
    }

    /// Published single-processor construction time (ms), if recorded.
    pub fn paper_time_at(&self, processors: usize) -> Option<f64> {
        self.paper_times_ms
            .iter()
            .find(|&&(p, _)| p == processors)
            .map(|&(_, t)| t)
    }

    /// Published speed-up percentage at `processors`, relative to 1
    /// processor: `(t1 - tp) / t1 * 100` — how Table II's last column is
    /// defined.
    pub fn paper_speedup_percent(&self, processors: usize) -> Option<f64> {
        let t1 = self.paper_time_at(1)?;
        let tp = self.paper_time_at(processors)?;
        Some((t1 - tp) / t1 * 100.0)
    }
}

const GB: u64 = 1_000_000_000;
const MB: u64 = 1_000_000;

/// The four Table II datasets, in the paper's row order.
pub fn paper_datasets() -> [DatasetProfile; 4] {
    [
        DatasetProfile {
            name: "LiveJournal",
            nodes: 4_847_571,
            edges: 68_993_773,
            paper_edgelist_bytes: (1.1 * GB as f64) as u64,
            paper_csr_bytes: (24.73 * MB as f64) as u64,
            quadrants: (0.57, 0.19, 0.19, 0.05),
            paper_times_ms: &[
                (1, 164.76),
                (4, 57.94),
                (8, 48.35),
                (16, 40.09),
                (64, 17.613),
            ],
        },
        DatasetProfile {
            name: "Pokec",
            nodes: 1_632_803,
            edges: 30_622_564,
            paper_edgelist_bytes: 405 * MB,
            paper_csr_bytes: (197.83 * MB as f64) as u64,
            quadrants: (0.57, 0.19, 0.19, 0.05),
            paper_times_ms: &[(1, 67.41), (4, 28.19), (8, 20.95), (16, 18.21), (64, 6.53)],
        },
        DatasetProfile {
            name: "Orkut",
            nodes: 3_072_627,
            edges: 117_185_083,
            paper_edgelist_bytes: (1.7 * GB as f64) as u64,
            paper_csr_bytes: (313.19 * MB as f64) as u64,
            quadrants: (0.57, 0.19, 0.19, 0.05),
            paper_times_ms: &[
                (1, 235.52),
                (4, 75.09),
                (8, 58.38),
                (16, 55.15),
                (64, 38.09),
            ],
        },
        DatasetProfile {
            name: "WebNotreDame",
            nodes: 325_729,
            edges: 1_497_134,
            paper_edgelist_bytes: 22 * MB,
            paper_csr_bytes: (3.82 * MB as f64) as u64,
            quadrants: (0.65, 0.15, 0.15, 0.05),
            paper_times_ms: &[(1, 7.13), (4, 2.02), (8, 1.1), (16, 0.577), (64, 0.27)],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn profiles_match_table_ii_counts() {
        let ds = paper_datasets();
        assert_eq!(ds[0].nodes, 4_847_571);
        assert_eq!(ds[0].edges, 68_993_773);
        assert_eq!(ds[2].name, "Orkut");
        assert_eq!(ds[2].edges, 117_185_083);
        assert_eq!(ds[3].nodes, 325_729);
    }

    #[test]
    fn synthesize_scales_counts() {
        let d = &paper_datasets()[3]; // smallest
        let g = d.synthesize(0.01, 42);
        assert_eq!(g.num_edges(), (d.edges as f64 * 0.01) as usize);
        assert_eq!(g.num_nodes(), (d.nodes as f64 * 0.01) as usize);
    }

    #[test]
    fn synthesized_graphs_are_skewed() {
        let d = &paper_datasets()[3];
        let g = d.synthesize(0.05, 7);
        let s = DegreeStats::of(&g);
        assert!(
            s.gini > 0.4,
            "stand-in should be heavy-tailed, gini={}",
            s.gini
        );
    }

    #[test]
    fn paper_speedup_matches_published_column() {
        let d = &paper_datasets()[2]; // Orkut
                                      // Table II prints 83.83% at 64 processors.
        let s = d.paper_speedup_percent(64).unwrap();
        assert!((s - 83.83).abs() < 0.05, "computed {s}");
        assert_eq!(d.paper_speedup_percent(3), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn synthesize_rejects_bad_scale() {
        paper_datasets()[0].synthesize(0.0, 1);
    }
}
