//! SNAP text-format I/O.
//!
//! The evaluation datasets come from the Stanford SNAP collection, which
//! distributes graphs as whitespace-separated `u v` lines with `#` comment
//! headers. This module reads and writes that format (plus the `u v t`
//! triplet extension for temporal graphs), so the real datasets can be
//! dropped in next to the synthetic profiles.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::temporal::{TemporalEdge, TemporalEdgeList};
use crate::types::{Edge, EdgeList, NodeId};

/// Errors from parsing SNAP-format text.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line: (1-based line number, content, problem).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
        /// What was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed {
                line,
                content,
                reason,
            } => {
                write!(f, "line {line}: {reason}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn parse_fields<const N: usize>(line: &str, lineno: usize) -> Result<Option<[u64; N]>, ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    let mut out = [0u64; N];
    let mut fields = trimmed.split_whitespace();
    for slot in out.iter_mut() {
        let f = fields.next().ok_or(ParseError::Malformed {
            line: lineno,
            content: line.to_string(),
            reason: "too few fields",
        })?;
        *slot = f.parse().map_err(|_| ParseError::Malformed {
            line: lineno,
            content: line.to_string(),
            reason: "field is not an unsigned integer",
        })?;
    }
    if fields.next().is_some() {
        return Err(ParseError::Malformed {
            line: lineno,
            content: line.to_string(),
            reason: "too many fields",
        });
    }
    Ok(Some(out))
}

fn check_node(x: u64, line: usize, content: &str) -> Result<NodeId, ParseError> {
    NodeId::try_from(x).map_err(|_| ParseError::Malformed {
        line,
        content: content.to_string(),
        reason: "node id exceeds u32",
    })
}

/// Parses SNAP edge-list text (`u v` per line, `#`/`%` comments, blank lines
/// allowed) from any reader. Node count is inferred from the maximum id.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<EdgeList, ParseError> {
    let mut edges: Vec<Edge> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some([u, v]) = parse_fields::<2>(&line, i + 1)? {
            edges.push((check_node(u, i + 1, &line)?, check_node(v, i + 1, &line)?));
        }
    }
    Ok(EdgeList::from_pairs(edges))
}

/// Reads a SNAP edge-list file.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<EdgeList, ParseError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Writes SNAP edge-list text (`u\tv` per line) with a small header comment.
pub fn write_edge_list<W: Write>(graph: &EdgeList, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Nodes: {} Edges: {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for &(u, v) in graph.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Writes a SNAP edge-list file.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &EdgeList, path: P) -> io::Result<()> {
    write_edge_list(graph, File::create(path)?)
}

/// Parses temporal triplet text (`u v t` per line, comments as above).
pub fn read_temporal_edge_list<R: BufRead>(reader: R) -> Result<TemporalEdgeList, ParseError> {
    let mut events = Vec::new();
    let mut max_node: u64 = 0;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some([u, v, t]) = parse_fields::<3>(&line, i + 1)? {
            max_node = max_node.max(u).max(v);
            let t = u32::try_from(t).map_err(|_| ParseError::Malformed {
                line: i + 1,
                content: line.to_string(),
                reason: "timestamp exceeds u32",
            })?;
            events.push(TemporalEdge::new(
                check_node(u, i + 1, &line)?,
                check_node(v, i + 1, &line)?,
                t,
            ));
        }
    }
    let num_nodes = if events.is_empty() {
        0
    } else {
        max_node as usize + 1
    };
    Ok(TemporalEdgeList::new(num_nodes, events))
}

/// Reads a temporal triplet file.
pub fn read_temporal_edge_list_file<P: AsRef<Path>>(
    path: P,
) -> Result<TemporalEdgeList, ParseError> {
    read_temporal_edge_list(BufReader::new(File::open(path)?))
}

/// Writes temporal triplet text (`u\tv\tt` per line).
pub fn write_temporal_edge_list<W: Write>(graph: &TemporalEdgeList, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Nodes: {} Events: {} Frames: {}",
        graph.num_nodes(),
        graph.num_events(),
        graph.num_frames()
    )?;
    for e in graph.events() {
        writeln!(w, "{}\t{}\t{}", e.u, e.v, e.t)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_snap_format() {
        let text = "# Directed graph\n# Nodes: 4 Edges: 3\n0\t1\n1 2\n\n3   0\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.edges(), [(0, 1), (1, 2), (3, 0)]);
    }

    #[test]
    fn percent_comments_and_whitespace() {
        let text = "% matrix-market style comment\n  5 6  \n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.edges(), [(5, 6)]);
        assert_eq!(g.num_nodes(), 7);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list(Cursor::new("0 x\n")).unwrap_err();
        assert!(
            matches!(err, ParseError::Malformed { line: 1, .. }),
            "{err}"
        );

        let err = read_edge_list(Cursor::new("0\n")).unwrap_err();
        assert!(err.to_string().contains("too few fields"));

        let err = read_edge_list(Cursor::new("0 1 2\n")).unwrap_err();
        assert!(err.to_string().contains("too many fields"));
    }

    #[test]
    fn rejects_oversized_node_ids() {
        let err = read_edge_list(Cursor::new("0 4294967296\n")).unwrap_err();
        assert!(err.to_string().contains("exceeds u32"));
    }

    #[test]
    fn roundtrip_edge_list() {
        let g = EdgeList::new(5, vec![(0, 1), (3, 4), (2, 2)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn roundtrip_temporal() {
        let t = TemporalEdgeList::new(
            4,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(2, 3, 1),
                TemporalEdge::new(0, 1, 2),
            ],
        );
        let mut buf = Vec::new();
        write_temporal_edge_list(&t, &mut buf).unwrap();
        let back = read_temporal_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn temporal_parse_checks_triplets() {
        let err = read_temporal_edge_list(Cursor::new("0 1\n")).unwrap_err();
        assert!(err.to_string().contains("too few fields"));
        let ok = read_temporal_edge_list(Cursor::new("# c\n1 2 3\n")).unwrap();
        assert_eq!(ok.num_events(), 1);
        assert_eq!(ok.events()[0], TemporalEdge::new(1, 2, 3));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("# nothing\n")).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("parcsr-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path).unwrap();
        assert_eq!(back.edges(), g.edges());
        std::fs::remove_file(&path).ok();
    }
}
