//! Core graph types: node ids, edges and the edge list the whole pipeline
//! consumes.

use rayon::prelude::*;

/// Node identifier. `u32` covers every graph in the paper's evaluation
/// (largest: LiveJournal, 4.85M nodes) with half the memory traffic of
/// `usize` — the construction pipeline is memory-bandwidth bound, so this
/// matters.
pub type NodeId = u32;

/// A directed edge `u → v`.
pub type Edge = (NodeId, NodeId);

/// A directed graph held as a flat edge list — the input format of the
/// paper's pipeline ("a parallel novel implementation to compress a given
/// edge list into CSR").
///
/// Invariant: every endpoint is `< num_nodes`. Constructors enforce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    num_nodes: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Builds an edge list over `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn new(num_nodes: usize, edges: Vec<Edge>) -> Self {
        for &(u, v) in &edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            );
        }
        EdgeList { num_nodes, edges }
    }

    /// Builds an edge list, inferring `num_nodes` as `max endpoint + 1`
    /// (0 for an empty list).
    pub fn from_pairs(edges: Vec<Edge>) -> Self {
        let num_nodes = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        EdgeList { num_nodes, edges }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True if the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consumes the list, returning the raw edges.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Returns a copy sorted by `(source, target)` — the precondition of the
    /// parallel degree computation (Section III-A2 assumes "each chunk
    /// receives a sorted list of edges"). Parallel sort.
    pub fn sorted_by_source(&self) -> EdgeList {
        let mut edges = self.edges.clone();
        edges.par_sort_unstable();
        EdgeList {
            num_nodes: self.num_nodes,
            edges,
        }
    }

    /// Sorts in place by `(source, target)`. Parallel.
    pub fn sort_by_source(&mut self) {
        self.edges.par_sort_unstable();
    }

    /// Returns a copy sorted by `(source, target)` using the parallel LSD
    /// radix sort (`crate::sort`) with `chunks` logical processors — the
    /// ablation comparator against rayon's comparison sort.
    pub fn sorted_by_source_radix(&self, chunks: usize) -> EdgeList {
        let mut edges = self.edges.clone();
        crate::sort::par_radix_sort_edges(&mut edges, chunks);
        EdgeList {
            num_nodes: self.num_nodes,
            edges,
        }
    }

    /// True if edges are sorted by `(source, target)`.
    pub fn is_sorted_by_source(&self) -> bool {
        self.edges.windows(2).all(|w| w[0] <= w[1])
    }

    /// Returns a copy with duplicate edges removed (requires no sorting on
    /// the caller's side; sorts internally).
    pub fn deduped(&self) -> EdgeList {
        let mut edges = self.edges.clone();
        edges.par_sort_unstable();
        edges.dedup();
        EdgeList {
            num_nodes: self.num_nodes,
            edges,
        }
    }

    /// Returns a copy with every edge mirrored (`u→v` and `v→u`), the usual
    /// directed encoding of an undirected social network. Self-loops are kept
    /// single.
    pub fn symmetrized(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        edges.extend_from_slice(&self.edges);
        edges.extend(
            self.edges
                .iter()
                .filter(|&&(u, v)| u != v)
                .map(|&(u, v)| (v, u)),
        );
        EdgeList {
            num_nodes: self.num_nodes,
            edges,
        }
    }

    /// In-memory binary size: 8 bytes per edge (two `u32` endpoints). The
    /// "EdgeList Size" comparator used in Table II's fourth column, measured
    /// on the binary representation rather than the paper's text files (see
    /// also [`text_bytes`](Self::text_bytes) for the text-format size).
    pub fn binary_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
    }

    /// Size of the graph when written as SNAP text (`"u\tv\n"` per edge) —
    /// how the paper's edge-list sizes were measured. Computed, not
    /// materialized. Parallel.
    pub fn text_bytes(&self) -> usize {
        fn digits(x: NodeId) -> usize {
            x.checked_ilog10().unwrap_or(0) as usize + 1
        }
        self.edges
            .par_iter()
            .map(|&(u, v)| digits(u) + digits(v) + 2)
            .sum()
    }

    /// The degree (out-degree) of each node, computed sequentially: the
    /// ground truth the parallel degree computation is tested against.
    pub fn degrees_sequential(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for &(u, _) in &self.edges {
            deg[u as usize] += 1;
        }
        deg
    }

    /// Maximum endpoint id + 1 actually referenced (≤ `num_nodes`).
    pub fn referenced_nodes(&self) -> usize {
        self.edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(5, vec![(3, 1), (0, 2), (3, 0), (1, 4), (0, 1)])
    }

    #[test]
    fn new_validates_endpoints() {
        let g = sample();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        EdgeList::new(3, vec![(0, 3)]);
    }

    #[test]
    fn from_pairs_infers_node_count() {
        let g = EdgeList::from_pairs(vec![(0, 7), (2, 3)]);
        assert_eq!(g.num_nodes(), 8);
        let empty = EdgeList::from_pairs(vec![]);
        assert_eq!(empty.num_nodes(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn sorted_by_source_orders_pairs() {
        let s = sample().sorted_by_source();
        assert!(s.is_sorted_by_source());
        assert_eq!(s.edges(), [(0, 1), (0, 2), (1, 4), (3, 0), (3, 1)]);
        assert!(!sample().is_sorted_by_source());
    }

    #[test]
    fn dedup_removes_duplicates() {
        let g = EdgeList::new(3, vec![(0, 1), (0, 1), (1, 2), (0, 1)]);
        let d = g.deduped();
        assert_eq!(d.num_edges(), 2);
        assert_eq!(d.edges(), [(0, 1), (1, 2)]);
    }

    #[test]
    fn symmetrize_mirrors_and_keeps_loops_single() {
        let g = EdgeList::new(3, vec![(0, 1), (2, 2)]);
        let s = g.symmetrized();
        let mut e = s.edges().to_vec();
        e.sort_unstable();
        assert_eq!(e, [(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn degrees_sequential_counts_out_edges() {
        let g = sample();
        assert_eq!(g.degrees_sequential(), [2, 1, 0, 2, 0]);
    }

    #[test]
    fn size_accounting() {
        let g = EdgeList::new(11, vec![(0, 1), (10, 9)]);
        assert_eq!(g.binary_bytes(), 16);
        // "0\t1\n" = 4 bytes, "10\t9\n" = 5 bytes.
        assert_eq!(g.text_bytes(), 9);
    }

    #[test]
    fn referenced_nodes_vs_declared() {
        let g = EdgeList::new(100, vec![(0, 5), (3, 2)]);
        assert_eq!(g.referenced_nodes(), 6);
        assert_eq!(g.num_nodes(), 100);
    }
}
