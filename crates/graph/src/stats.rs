//! Degree statistics — used to validate that the synthetic stand-ins for the
//! SNAP datasets reproduce the degree skew the paper's speed-ups depend on.

use rayon::prelude::*;

use crate::types::EdgeList;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
    /// Gini coefficient of the degree distribution in `[0, 1)`:
    /// 0 = perfectly uniform, →1 = extremely skewed. Social networks sit
    /// well above random graphs of the same density.
    pub gini: f64,
}

impl DegreeStats {
    /// Computes statistics from an edge list.
    pub fn of(graph: &EdgeList) -> Self {
        let degrees = graph.degrees_sequential();
        Self::of_degrees(&degrees, graph.num_edges())
    }

    /// Computes statistics from a precomputed degree array.
    pub fn of_degrees(degrees: &[u32], num_edges: usize) -> Self {
        let n = degrees.len();
        if n == 0 {
            return DegreeStats {
                num_nodes: 0,
                num_edges: 0,
                max_degree: 0,
                mean_degree: 0.0,
                isolated: 0,
                gini: 0.0,
            };
        }
        let max_degree = degrees.par_iter().copied().max().unwrap_or(0);
        let isolated = degrees.par_iter().filter(|&&d| d == 0).count();
        let total: u64 = degrees.par_iter().map(|&d| u64::from(d)).sum();
        let mean_degree = total as f64 / n as f64;

        // Gini via the sorted-rank formula:
        // G = (2 * Σ i·x_(i) / (n · Σ x)) - (n + 1)/n, with 1-based ranks.
        let gini = if total == 0 {
            0.0
        } else {
            let mut sorted = degrees.to_vec();
            sorted.par_sort_unstable();
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
        };

        DegreeStats {
            num_nodes: n,
            num_edges,
            max_degree,
            mean_degree,
            isolated,
            gini,
        }
    }
}

/// Degree histogram on a log2 scale: `bucket[k]` counts nodes with degree in
/// `[2^k, 2^(k+1))`; bucket 0 additionally counts degree-0 nodes separately
/// via the returned `(zero, buckets)` pair. A quick skew fingerprint for the
/// generator validation tests.
pub fn log2_degree_histogram(degrees: &[u32]) -> (usize, Vec<usize>) {
    let mut zero = 0usize;
    let mut buckets: Vec<usize> = Vec::new();
    for &d in degrees {
        if d == 0 {
            zero += 1;
            continue;
        }
        let b = d.ilog2() as usize;
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    (zero, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EdgeList;

    #[test]
    fn basic_stats() {
        let g = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.mean_degree, 1.0);
        assert_eq!(s.isolated, 2); // nodes 2, 3 have out-degree 0
    }

    #[test]
    fn empty_graph() {
        let s = DegreeStats::of(&EdgeList::new(0, vec![]));
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn gini_uniform_is_near_zero() {
        let degrees = vec![5u32; 1000];
        let s = DegreeStats::of_degrees(&degrees, 5000);
        assert!(s.gini.abs() < 1e-9, "gini={}", s.gini);
    }

    #[test]
    fn gini_single_hub_is_near_one() {
        let mut degrees = vec![0u32; 1000];
        degrees[0] = 10_000;
        let s = DegreeStats::of_degrees(&degrees, 10_000);
        assert!(s.gini > 0.99, "gini={}", s.gini);
    }

    #[test]
    fn gini_ordering_matches_skew() {
        let uniform = DegreeStats::of_degrees(&vec![10u32; 100], 1000);
        let mixed: Vec<u32> = (0..100).map(|i| if i < 10 { 91 } else { 1 }).collect();
        let skewed = DegreeStats::of_degrees(&mixed, 1000);
        assert!(skewed.gini > uniform.gini + 0.3);
    }

    #[test]
    fn histogram_buckets() {
        let degrees = vec![0, 1, 1, 2, 3, 4, 7, 8, 1000];
        let (zero, buckets) = log2_degree_histogram(&degrees);
        assert_eq!(zero, 1);
        assert_eq!(buckets[0], 2); // degree 1
        assert_eq!(buckets[1], 2); // degrees 2-3
        assert_eq!(buckets[2], 2); // degrees 4-7
        assert_eq!(buckets[3], 1); // degree 8
        assert_eq!(buckets[9], 1); // degree 1000 in [512, 1024)
    }

    #[test]
    fn histogram_empty() {
        let (zero, buckets) = log2_degree_histogram(&[]);
        assert_eq!(zero, 0);
        assert!(buckets.is_empty());
    }
}
