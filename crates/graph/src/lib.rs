#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! Graph substrate: edge lists, temporal edge lists, SNAP-format I/O,
//! deterministic synthetic generators, and degree statistics.
//!
//! The paper evaluates on four SNAP graphs (LiveJournal, Pokec, Orkut,
//! WebNotreDame). Those datasets are public but not bundled here; instead
//! [`datasets`] ships their *profiles* (node/edge counts, degree-skew shape)
//! and synthesizes structurally matched RMAT graphs, while [`io`] reads the
//! real SNAP text files when they are available on disk. Everything the
//! construction pipeline measures — edge count, node count, degree skew,
//! sortedness — is preserved by the profile-matched generator (see DESIGN.md
//! §2 for the substitution argument).
//!
//! # Example
//!
//! ```
//! use parcsr_graph::{gen, EdgeList};
//!
//! // A deterministic RMAT graph: same seed, same graph, on any machine.
//! let g: EdgeList = gen::rmat(gen::RmatParams::new(1 << 10, 8 << 10, 42));
//! assert!(g.num_nodes() <= 1 << 10);
//! assert_eq!(g.num_edges(), 8 << 10);
//!
//! let sorted = g.sorted_by_source();
//! assert!(sorted.is_sorted_by_source());
//! ```

pub mod datasets;
pub mod gen;
pub mod io;
pub mod sort;
pub mod stats;
pub mod temporal;
pub mod types;
pub mod weighted;

pub use datasets::{paper_datasets, DatasetProfile};
pub use sort::par_radix_sort_edges;
pub use stats::DegreeStats;
pub use temporal::{TemporalEdge, TemporalEdgeList, Timestamp};
pub use types::{Edge, EdgeList, NodeId};
pub use weighted::{Weight, WeightedEdge, WeightedEdgeList};
