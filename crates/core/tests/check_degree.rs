//! Schedule-exploration tests for the parallel degree kernel (Algorithms
//! 2–3). Compiled (and run) only under `RUSTFLAGS="--cfg parcsr_check"`.
#![cfg(parcsr_check)]

use parcsr::degree::checked::{degrees_model, DegreeFault};
use parcsr_check as check;
use parcsr_graph::Edge;

fn reference(edges: &[Edge], num_nodes: usize) -> Vec<u32> {
    let mut d = vec![0u32; num_nodes];
    for &(u, _) in edges {
        d[u as usize] += 1;
    }
    d
}

/// Figure-3-shaped input: node 1 straddles the p = 2 chunk boundary. The
/// shipped side-array structure must be race-free in every interleaving,
/// and every schedule must produce the sequential degrees.
#[test]
fn side_array_race_free_p2() {
    let edges: Vec<Edge> = vec![(0, 1), (1, 0), (1, 2), (1, 3), (2, 0), (2, 1)];
    let want = reference(&edges, 3);
    let report = check::model(|| {
        let got = degrees_model(edges.clone(), 3, 2, DegreeFault::None);
        assert_eq!(got, want);
    });
    assert!(report.executions >= 2, "executions = {}", report.executions);
}

/// A hub whose run spans all three chunks at p = 3: every chunk's head is
/// the hub, so all three counts flow through the side array and the merge
/// accumulates them. Race-free in all schedules.
#[test]
fn hub_spanning_three_chunks_p3() {
    let mut edges: Vec<Edge> = (0..7).map(|i| (1u32, i % 3)).collect();
    edges.push((2, 0));
    edges.sort_unstable();
    let want = reference(&edges, 3);
    let report = check::model(|| {
        let got = degrees_model(edges.clone(), 3, 3, DegreeFault::None);
        assert_eq!(got, want);
    });
    assert!(report.executions >= 6, "executions = {}", report.executions);
}

/// Seeded race: dropping the side array makes both chunks write the
/// straddling node's slot concurrently — the checker must flag exactly that
/// slot.
#[test]
fn dropping_side_array_races_on_straddling_node() {
    let edges: Vec<Edge> = vec![(0, 1), (1, 0), (1, 2), (1, 3), (2, 0), (2, 1)];
    let err = check::check(|| {
        degrees_model(edges.clone(), 3, 2, DegreeFault::DropSideArray);
    })
    .expect_err("in-chunk head writes must race on the straddling node");
    assert_eq!(err.location, "degree.global");
    assert_eq!(err.index, 1, "the race is on the boundary-straddling node");
}

/// With no straddling node (chunk boundary falls between runs) even the
/// faulty variant happens to be race-free — evidence the checker's verdicts
/// track the actual overlap structure rather than flagging wholesale.
#[test]
fn boundary_between_runs_hides_the_seeded_fault() {
    // p = 2 splits 4 edges at index 2, exactly between node 0's and node
    // 1's runs; heads never collide.
    let edges: Vec<Edge> = vec![(0, 1), (0, 2), (1, 0), (1, 2)];
    let want = reference(&edges, 2);
    check::model(|| {
        let got = degrees_model(edges.clone(), 2, 2, DegreeFault::DropSideArray);
        assert_eq!(got, want);
    });
}
