//! Property tests for the core pipeline: construction equivalence, packed
//! round-trips, and query correctness on arbitrary graphs.

use proptest::prelude::*;

use parcsr::query::{
    edge_exists_split, edge_exists_split_binary, edges_exist_batch, edges_exist_batch_binary,
    neighbors_batch,
};
use parcsr::{degrees_parallel, BitPackedCsr, Csr, CsrBuilder, PackedCsrMode};
use parcsr_graph::EdgeList;
use parcsr_scan::ScanAlgorithm;

fn arb_graph(max_node: u32, max_edges: usize) -> impl Strategy<Value = EdgeList> {
    (
        1..max_node,
        prop::collection::vec((0u32..max_node, 0u32..max_node), 0..max_edges),
    )
        .prop_map(|(n_extra, edges)| {
            let n = edges
                .iter()
                .map(|&(u, v)| u.max(v) + 1)
                .max()
                .unwrap_or(0)
                .max(n_extra);
            let edges = edges
                .into_iter()
                .map(|(u, v)| (u % n, v % n))
                .collect::<Vec<_>>();
            EdgeList::new(n as usize, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_build_equals_sequential(g in arb_graph(300, 600), p in 1usize..17) {
        let want = Csr::from_edge_list_sequential(&g);
        let got = CsrBuilder::new().processors(p).build(&g);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn degrees_parallel_equals_histogram(g in arb_graph(200, 500), p in 1usize..33) {
        let sorted = g.sorted_by_source();
        let got = degrees_parallel(sorted.edges(), sorted.num_nodes(), p);
        prop_assert_eq!(got, g.degrees_sequential());
    }

    #[test]
    fn csr_neighbors_is_sorted_multiset_of_targets(g in arb_graph(150, 400)) {
        let csr = CsrBuilder::new().build(&g);
        prop_assert_eq!(csr.validate(), Ok(()));
        for u in 0..g.num_nodes() as u32 {
            let mut expect: Vec<u32> = g
                .edges()
                .iter()
                .filter(|&&(s, _)| s == u)
                .map(|&(_, t)| t)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(csr.neighbors(u), &expect[..]);
        }
    }

    #[test]
    fn packed_roundtrip(g in arb_graph(200, 500), p in 1usize..9) {
        let csr = CsrBuilder::new().build(&g);
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, p);
            let mut row = Vec::new();
            for u in 0..csr.num_nodes() as u32 {
                packed.row_into(u, &mut row);
                prop_assert_eq!(&row[..], csr.neighbors(u), "mode {} node {}", mode.name(), u);
            }
            prop_assert_eq!(packed.packed_bytes() > 0, csr.num_edges() > 0 || csr.num_nodes() > 0);
        }
    }

    #[test]
    fn batch_queries_agree_with_ground_truth(
        g in arb_graph(120, 300),
        queries in prop::collection::vec((0u32..120, 0u32..120), 0..80),
        p in 1usize..9,
    ) {
        let csr = CsrBuilder::new().build(&g);
        let n = csr.num_nodes() as u32;
        let queries: Vec<(u32, u32)> = queries.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let want: Vec<bool> = queries.iter().map(|&(u, v)| csr.has_edge(u, v)).collect();

        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, p);
        prop_assert_eq!(edges_exist_batch(&csr, &queries, p), want.clone());
        prop_assert_eq!(edges_exist_batch(&packed, &queries, p), want.clone());
        prop_assert_eq!(edges_exist_batch_binary(&packed, &queries, p), want);
    }

    #[test]
    fn neighborhood_batch_agrees(
        g in arb_graph(100, 250),
        raw_queries in prop::collection::vec(0u32..100, 0..60),
        p in 1usize..9,
    ) {
        let csr = CsrBuilder::new().build(&g);
        let n = csr.num_nodes() as u32;
        let queries: Vec<u32> = raw_queries.into_iter().map(|u| u % n).collect();
        let got = neighbors_batch(&csr, &queries, p);
        prop_assert_eq!(got.len(), queries.len());
        for (i, &u) in queries.iter().enumerate() {
            prop_assert_eq!(&got[i][..], csr.neighbors(u));
        }
    }

    #[test]
    fn single_edge_split_agrees(
        g in arb_graph(80, 300),
        u in 0u32..80,
        v in 0u32..80,
        p in 1usize..9,
    ) {
        let csr = CsrBuilder::new().build(&g);
        let n = csr.num_nodes() as u32;
        let (u, v) = (u % n, v % n);
        let want = csr.has_edge(u, v);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 2);
        prop_assert_eq!(edge_exists_split(&packed, u, v, p), want);
        prop_assert_eq!(edge_exists_split_binary(&packed, u, v, p), want);
    }

    #[test]
    fn scan_algorithm_choice_is_invisible(g in arb_graph(150, 400)) {
        let base = CsrBuilder::new().scan_algorithm(ScanAlgorithm::Sequential).build(&g);
        for alg in ScanAlgorithm::ALL {
            let other = CsrBuilder::new().processors(5).scan_algorithm(alg).build(&g);
            prop_assert_eq!(&other, &base, "{}", alg.name());
        }
    }

    #[test]
    fn row_iter_equals_row_into_equals_neighbors(g in arb_graph(200, 500)) {
        // The streaming cursor, the materializing decode, and the plain CSR
        // must agree row by row, in both packing modes, no matter how many
        // processors packed the structure.
        let csr = CsrBuilder::new().build(&g);
        let mut row = Vec::new();
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            for p in [1usize, 2, 7, 64] {
                let packed = BitPackedCsr::from_csr(&csr, mode, p);
                for u in 0..csr.num_nodes() as u32 {
                    let streamed: Vec<u32> = packed.row_iter(u).collect();
                    packed.row_into(u, &mut row);
                    prop_assert_eq!(&streamed[..], &row[..], "iter vs into: mode {} p {} node {}", mode.name(), p, u);
                    prop_assert_eq!(&streamed[..], csr.neighbors(u), "iter vs csr: mode {} p {} node {}", mode.name(), p, u);
                    prop_assert_eq!(packed.row_iter(u).len(), csr.degree(u));
                }
            }
        }
    }

    #[test]
    fn streaming_visitor_equals_row_into(g in arb_graph(150, 400), p in 1usize..9) {
        use parcsr::NeighborSource;
        let csr = CsrBuilder::new().build(&g);
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, p);
            for u in 0..csr.num_nodes() as u32 {
                let mut visited = Vec::new();
                packed.for_each_neighbor(u, &mut |v| visited.push(v));
                prop_assert_eq!(&visited[..], csr.neighbors(u), "mode {} node {}", mode.name(), u);
            }
        }
    }

    #[test]
    fn packed_has_edge_equals_csr(g in arb_graph(100, 300), p in 1usize..5) {
        let csr = CsrBuilder::new().build(&g);
        let n = csr.num_nodes() as u32;
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, p);
            for u in (0..n).step_by(3) {
                for v in (0..n).step_by(5) {
                    prop_assert_eq!(
                        packed.has_edge(u, v),
                        csr.has_edge(u, v),
                        "mode {} ({}, {})", mode.name(), u, v
                    );
                }
            }
        }
    }
}

/// Deterministic edge-shape cases the random generator is unlikely to pin
/// down exactly: empty rows, a hub row, and zero gaps from duplicate
/// neighbors (multigraph rows).
#[test]
fn row_iter_edge_shapes() {
    // Hub node 0 with every other node as a neighbor, node 1 with duplicate
    // (zero-gap) neighbors, nodes 2.. empty.
    let mut edges: Vec<(u32, u32)> = (0..500u32).map(|v| (0, v)).collect();
    edges.extend([(1, 7), (1, 7), (1, 7), (1, 9)]);
    let g = EdgeList::new(500, edges);
    let csr = CsrBuilder::new().build(&g);
    for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
        for p in [1usize, 2, 7, 64] {
            let packed = BitPackedCsr::from_csr(&csr, mode, p);
            let hub: Vec<u32> = packed.row_iter(0).collect();
            assert_eq!(hub, csr.neighbors(0), "hub: mode {} p {p}", mode.name());
            let dup: Vec<u32> = packed.row_iter(1).collect();
            assert_eq!(dup, [7, 7, 7, 9], "dup: mode {} p {p}", mode.name());
            assert!(packed.has_edge(1, 7) && packed.has_edge(1, 9));
            assert!(!packed.has_edge(1, 8));
            for empty in [2u32, 250, 499] {
                assert_eq!(packed.row_iter(empty).count(), 0);
                assert!(!packed.has_edge(empty, 0));
            }
        }
    }
}

/// A sorted edge list dominated by one hub node whose neighbor run is long
/// enough to straddle two or more chunk boundaries at p = 7 (and ~20 at
/// p = 64): `pre` single-edge nodes, then the hub's run, then `post`
/// single-edge nodes.
fn arb_hub_edges() -> impl Strategy<Value = (Vec<(u32, u32)>, usize)> {
    (0usize..40, 300usize..800, 0usize..40).prop_map(|(pre, hub_run, post)| {
        let hub = pre as u32;
        let num_nodes = pre + 1 + post;
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(pre + hub_run + post);
        for u in 0..pre as u32 {
            edges.push((u, u % num_nodes as u32));
        }
        for j in 0..hub_run as u32 {
            edges.push((hub, j % num_nodes as u32));
        }
        for k in 0..post as u32 {
            edges.push((hub + 1 + k, k % num_nodes as u32));
        }
        (edges, num_nodes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2/3's side-array merge must accumulate every in-chunk head
    /// count of a hub whose run spans many chunks — at every paper-relevant
    /// processor count, the result equals the serial histogram.
    #[test]
    fn hub_straddling_degrees_match_serial((edges, num_nodes) in arb_hub_edges()) {
        let mut want = vec![0u32; num_nodes];
        for &(u, _) in &edges {
            want[u as usize] += 1;
        }
        for p in [1usize, 2, 7, 64] {
            let got = degrees_parallel(&edges, num_nodes, p);
            prop_assert_eq!(&got, &want, "p={}", p);
        }
    }

    /// The full parallel CSR build (degrees → offsets scan → fill) over the
    /// same hub shape equals the sequential builder.
    #[test]
    fn hub_straddling_build_matches_serial((edges, num_nodes) in arb_hub_edges()) {
        let g = EdgeList::new(num_nodes, edges);
        let want = Csr::from_edge_list_sequential(&g);
        for p in [1usize, 2, 7, 64] {
            let got = CsrBuilder::new().processors(p).build(&g);
            prop_assert_eq!(&got, &want, "p={}", p);
        }
    }
}
