//! Property tests for the core pipeline: construction equivalence, packed
//! round-trips, and query correctness on arbitrary graphs.

use proptest::prelude::*;

use parcsr::query::{
    edge_exists_split, edge_exists_split_binary, edges_exist_batch, edges_exist_batch_binary,
    neighbors_batch,
};
use parcsr::{degrees_parallel, BitPackedCsr, Csr, CsrBuilder, PackedCsrMode};
use parcsr_graph::EdgeList;
use parcsr_scan::ScanAlgorithm;

fn arb_graph(max_node: u32, max_edges: usize) -> impl Strategy<Value = EdgeList> {
    (1..max_node, prop::collection::vec((0u32..max_node, 0u32..max_node), 0..max_edges)).prop_map(
        |(n_extra, edges)| {
            let n = edges
                .iter()
                .map(|&(u, v)| u.max(v) + 1)
                .max()
                .unwrap_or(0)
                .max(n_extra);
            let edges = edges
                .into_iter()
                .map(|(u, v)| (u % n, v % n))
                .collect::<Vec<_>>();
            EdgeList::new(n as usize, edges)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_build_equals_sequential(g in arb_graph(300, 600), p in 1usize..17) {
        let want = Csr::from_edge_list_sequential(&g);
        let got = CsrBuilder::new().processors(p).build(&g);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn degrees_parallel_equals_histogram(g in arb_graph(200, 500), p in 1usize..33) {
        let sorted = g.sorted_by_source();
        let got = degrees_parallel(sorted.edges(), sorted.num_nodes(), p);
        prop_assert_eq!(got, g.degrees_sequential());
    }

    #[test]
    fn csr_neighbors_is_sorted_multiset_of_targets(g in arb_graph(150, 400)) {
        let csr = CsrBuilder::new().build(&g);
        prop_assert_eq!(csr.validate(), Ok(()));
        for u in 0..g.num_nodes() as u32 {
            let mut expect: Vec<u32> = g
                .edges()
                .iter()
                .filter(|&&(s, _)| s == u)
                .map(|&(_, t)| t)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(csr.neighbors(u), &expect[..]);
        }
    }

    #[test]
    fn packed_roundtrip(g in arb_graph(200, 500), p in 1usize..9) {
        let csr = CsrBuilder::new().build(&g);
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, p);
            let mut row = Vec::new();
            for u in 0..csr.num_nodes() as u32 {
                packed.row_into(u, &mut row);
                prop_assert_eq!(&row[..], csr.neighbors(u), "mode {} node {}", mode.name(), u);
            }
            prop_assert_eq!(packed.packed_bytes() > 0, csr.num_edges() > 0 || csr.num_nodes() > 0);
        }
    }

    #[test]
    fn batch_queries_agree_with_ground_truth(
        g in arb_graph(120, 300),
        queries in prop::collection::vec((0u32..120, 0u32..120), 0..80),
        p in 1usize..9,
    ) {
        let csr = CsrBuilder::new().build(&g);
        let n = csr.num_nodes() as u32;
        let queries: Vec<(u32, u32)> = queries.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let want: Vec<bool> = queries.iter().map(|&(u, v)| csr.has_edge(u, v)).collect();

        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, p);
        prop_assert_eq!(edges_exist_batch(&csr, &queries, p), want.clone());
        prop_assert_eq!(edges_exist_batch(&packed, &queries, p), want.clone());
        prop_assert_eq!(edges_exist_batch_binary(&packed, &queries, p), want);
    }

    #[test]
    fn neighborhood_batch_agrees(
        g in arb_graph(100, 250),
        raw_queries in prop::collection::vec(0u32..100, 0..60),
        p in 1usize..9,
    ) {
        let csr = CsrBuilder::new().build(&g);
        let n = csr.num_nodes() as u32;
        let queries: Vec<u32> = raw_queries.into_iter().map(|u| u % n).collect();
        let got = neighbors_batch(&csr, &queries, p);
        prop_assert_eq!(got.len(), queries.len());
        for (i, &u) in queries.iter().enumerate() {
            prop_assert_eq!(&got[i][..], csr.neighbors(u));
        }
    }

    #[test]
    fn single_edge_split_agrees(
        g in arb_graph(80, 300),
        u in 0u32..80,
        v in 0u32..80,
        p in 1usize..9,
    ) {
        let csr = CsrBuilder::new().build(&g);
        let n = csr.num_nodes() as u32;
        let (u, v) = (u % n, v % n);
        let want = csr.has_edge(u, v);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 2);
        prop_assert_eq!(edge_exists_split(&packed, u, v, p), want);
        prop_assert_eq!(edge_exists_split_binary(&packed, u, v, p), want);
    }

    #[test]
    fn scan_algorithm_choice_is_invisible(g in arb_graph(150, 400)) {
        let base = CsrBuilder::new().scan_algorithm(ScanAlgorithm::Sequential).build(&g);
        for alg in ScanAlgorithm::ALL {
            let other = CsrBuilder::new().processors(5).scan_algorithm(alg).build(&g);
            prop_assert_eq!(&other, &base, "{}", alg.name());
        }
    }
}
