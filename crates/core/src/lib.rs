#![warn(missing_docs)]

//! `parcsr` — parallel construction, bit-packed compression and parallel
//! querying of Compressed Sparse Row graphs.
//!
//! This crate is the paper's primary contribution (Sections III and V):
//!
//! * [`degree`] — Algorithms 2–3: parallel degree computation over a sorted
//!   edge list, with the per-chunk side array (`globalTempDegree`) that
//!   resolves chunk-boundary overlaps without synchronization on the hot
//!   path, plus the atomic-increment ablation comparator.
//! * [`build`] — the parallel CSR constructor: sort → parallel degrees →
//!   prefix-sum offsets (any [`parcsr_scan::ScanAlgorithm`]) → parallel
//!   column fill, with per-stage timings for the evaluation harness.
//! * [`packed`] — Algorithm 4: the bit-packed CSR (`iA` and `jA` compressed
//!   with the fixed-width codec of \[7\], chunk-parallel with merge), the
//!   `GetRowFromCSR` row extraction of \[28\], and the gap-coded variant.
//! * [`query`] — Algorithms 6–9: batch neighborhood queries, batch
//!   edge-existence queries, and single-edge existence with the neighbor
//!   list itself split across processors (including the binary-search
//!   refinement the paper suggests).
//! * [`pool`] — explicit "number of processors" control: every parallel
//!   routine here can be pinned to a `p`-thread pool, which is how the
//!   Table II processor sweep is produced.
//!
//! Beyond the paper's minimal pipeline:
//!
//! * [`weighted`] — the `vA` value array (Section III defines it, the
//!   evaluation drops it) carried through construction and packing;
//! * [`stream`] — streaming construction of the packed CSR (the authors'
//!   refs \[3\]/\[4\] direction): sorted edges in, packed bits out, no
//!   staging buffer;
//! * [`serial`] — a versioned on-disk format for the packed CSR.
//!
//! # Quickstart
//!
//! ```
//! use parcsr::{CsrBuilder, BitPackedCsr, PackedCsrMode};
//! use parcsr::query::{neighbors_batch, edges_exist_batch};
//! use parcsr_graph::gen::{rmat, RmatParams};
//!
//! // A deterministic synthetic social network.
//! let graph = rmat(RmatParams::new(1 << 10, 16 << 10, 42));
//!
//! // Parallel CSR construction.
//! let csr = CsrBuilder::new().build(&graph);
//! assert_eq!(csr.num_edges(), graph.num_edges());
//!
//! // Bit-packed compression (Algorithm 4).
//! let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
//! assert!(packed.packed_bytes() < csr.heap_bytes());
//!
//! // Parallel querying (Algorithms 6, 7).
//! let hoods = neighbors_batch(&packed, &[0, 1, 2], 2);
//! assert_eq!(hoods[0], csr.neighbors(0));
//! let exists = edges_exist_batch(&packed, &[(0, 1), (5, 9)], 2);
//! assert_eq!(exists.len(), 2);
//! ```

pub mod build;
pub mod chunked;
pub mod degree;
pub mod packed;
pub mod pool;
pub mod query;
pub mod serial;
pub mod stream;
pub mod weighted;

pub use build::{BuildTimings, Csr, CsrBuilder};
pub use chunked::{run_chunked, run_chunked_plan, Chunk, ChunkPolicy};
pub use degree::{degrees_atomic, degrees_parallel};
pub use packed::{BitPackedCsr, PackedCsrMode, PackedRowIter};
pub use pool::with_processors;
pub use query::NeighborSource;
pub use serial::ReadError;
pub use stream::{StreamError, StreamingCsrPacker};
pub use weighted::WeightedCsr;
