//! Weighted CSR: the paper's `vA` value array, carried through the full
//! pipeline.
//!
//! Section III defines CSR with three arrays — `iA`, `jA`, and `vA` "if the
//! graph is weighted" — and then drops `vA` because the evaluation graphs
//! are unweighted. This module keeps it: the weight array is built by the
//! same parallel fill as the column array (the sorted weighted edge list's
//! weight column *is* `vA`), and packs with the same fixed-width codec,
//! since weights are just more small integers.

use rayon::prelude::*;

use parcsr_bitpack::{bits_needed, pack_parallel_with_width, PackedArray};
use parcsr_graph::{NodeId, Weight, WeightedEdgeList};

use crate::build::{Csr, CsrBuilder};

/// A CSR with an aligned weight array: `weights[i]` belongs to the edge
/// `targets[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedCsr {
    csr: Csr,
    weights: Vec<Weight>,
}

impl WeightedCsr {
    /// Builds from a weighted edge list with `processors` chunks (sorts a
    /// copy; the weight column of the sorted list is `vA`).
    pub fn from_edge_list(graph: &WeightedEdgeList, processors: usize) -> Self {
        let sorted = graph.sorted_by_source();
        let (csr, _) = CsrBuilder::new()
            .processors(processors)
            .build_from_sorted(&sorted.unweighted());
        let weights: Vec<Weight> = sorted.edges().par_iter().map(|&(_, _, w)| w).collect();
        WeightedCsr { csr, weights }
    }

    /// The underlying unweighted CSR.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// The sorted neighbor row of `u` with its aligned weights.
    pub fn neighbors_weighted(&self, u: NodeId) -> (&[NodeId], &[Weight]) {
        let i = u as usize;
        let (s, e) = (
            self.csr.offsets()[i] as usize,
            self.csr.offsets()[i + 1] as usize,
        );
        (&self.csr.targets()[s..e], &self.weights[s..e])
    }

    /// The weight of edge `(u, v)`, if present. When the multigraph stores
    /// several parallel `(u, v)` edges, the first (smallest-weight, given
    /// the canonical `(u, v, w)` sort) is returned.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let (targets, weights) = self.neighbors_weighted(u);
        let idx = targets.partition_point(|&t| t < v);
        (targets.get(idx) == Some(&v)).then(|| weights[idx])
    }

    /// Heap bytes (CSR arrays + weight array).
    pub fn heap_bytes(&self) -> usize {
        self.csr.heap_bytes() + self.weights.len() * std::mem::size_of::<Weight>()
    }

    /// Packs the weight array with Algorithm 4's engine (the `vA` leg of the
    /// "repeat the process" step).
    pub fn pack_weights(&self, processors: usize) -> PackedArray {
        let vals: Vec<u64> = self.weights.iter().map(|&w| u64::from(w)).collect();
        let width = bits_needed(vals.iter().copied().max().unwrap_or(0));
        pack_parallel_with_width(&vals, processors, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_graph::gen::{rmat, RmatParams};

    fn sample() -> WeightedCsr {
        let base = rmat(RmatParams::new(256, 3_000, 11));
        let weighted = WeightedEdgeList::from_unweighted(&base, 200);
        WeightedCsr::from_edge_list(&weighted, 4)
    }

    #[test]
    fn structure_matches_unweighted_build() {
        let base = rmat(RmatParams::new(256, 3_000, 11));
        let weighted = WeightedEdgeList::from_unweighted(&base, 200);
        let wcsr = WeightedCsr::from_edge_list(&weighted, 4);
        let plain = CsrBuilder::new().build(&base);
        assert_eq!(wcsr.csr(), &plain);
    }

    #[test]
    fn weights_align_with_targets() {
        let g = WeightedEdgeList::new(4, vec![(0, 2, 9), (0, 1, 7), (3, 0, 5)]);
        let w = WeightedCsr::from_edge_list(&g, 2);
        let (targets, weights) = w.neighbors_weighted(0);
        assert_eq!(targets, [1, 2]);
        assert_eq!(weights, [7, 9]);
        assert_eq!(w.edge_weight(0, 2), Some(9));
        assert_eq!(w.edge_weight(3, 0), Some(5));
        assert_eq!(w.edge_weight(0, 3), None);
        assert_eq!(w.edge_weight(2, 0), None);
    }

    #[test]
    fn parallel_edges_return_first_weight() {
        let g = WeightedEdgeList::new(2, vec![(0, 1, 9), (0, 1, 3)]);
        let w = WeightedCsr::from_edge_list(&g, 2);
        assert_eq!(w.edge_weight(0, 1), Some(3));
        assert_eq!(w.neighbors_weighted(0).1, [3, 9]);
    }

    #[test]
    fn every_edge_weight_is_preserved() {
        let base = rmat(RmatParams::new(128, 1_500, 5));
        let weighted = WeightedEdgeList::from_unweighted(&base, 50);
        let wcsr = WeightedCsr::from_edge_list(&weighted, 3);
        let mut want: Vec<_> = weighted.edges().to_vec();
        want.sort_unstable();
        let mut got = Vec::new();
        for u in 0..wcsr.num_nodes() as u32 {
            let (ts, ws) = wcsr.neighbors_weighted(u);
            got.extend(ts.iter().zip(ws).map(|(&v, &w)| (u, v, w)));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn packed_weights_roundtrip_and_shrink() {
        let w = sample();
        let packed = w.pack_weights(4);
        assert_eq!(packed.len(), w.num_edges());
        for (i, v) in packed.iter().enumerate() {
            assert_eq!(v, u64::from(w.weights[i]));
        }
        // Weights ≤ 200 pack at 8 bits vs 32 raw.
        assert_eq!(packed.width(), 8);
        assert!(packed.packed_bytes() * 3 < w.weights.len() * 4);
    }

    #[test]
    fn empty_weighted_graph() {
        let g = WeightedEdgeList::new(3, vec![]);
        let w = WeightedCsr::from_edge_list(&g, 2);
        assert_eq!(w.num_edges(), 0);
        assert_eq!(w.edge_weight(0, 1), None);
        assert!(w.pack_weights(2).is_empty());
    }
}
