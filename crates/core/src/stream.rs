//! Streaming construction of the bit-packed CSR.
//!
//! The authors' prior systems (\[3\], \[4\]: "Queryable Compression on
//! Streaming Social Networks") compress the graph *as the edge stream
//! arrives* instead of materializing it first. This module provides that
//! mode for the bit-packed CSR: a [`StreamingCsrPacker`] consumes a
//! source-sorted edge stream and appends each column entry straight into the
//! packed bit array, so the only non-output state is the `O(n)` degree
//! array — the 8-bytes-per-edge staging buffer of the batch pipeline never
//! exists.
//!
//! Only [`PackedCsrMode::Raw`] is producible this way: gap coding at a
//! single uniform width needs the global maximum gap, which is unknowable
//! until the stream ends (the batch path in [`crate::packed`] covers that
//! case).

use parcsr_bitpack::{bits_needed, BitWriter, PackedArray};
use parcsr_graph::NodeId;
use parcsr_scan::exclusive_scan_seq;

use crate::packed::{BitPackedCsr, PackedCsrMode};

/// Errors from feeding a [`StreamingCsrPacker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// An endpoint is `>= num_nodes`.
    NodeOutOfRange {
        /// The offending edge.
        edge: (NodeId, NodeId),
    },
    /// The stream is not sorted by `(source, target)`.
    OutOfOrder {
        /// The previously accepted edge.
        previous: (NodeId, NodeId),
        /// The offending edge.
        edge: (NodeId, NodeId),
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::NodeOutOfRange { edge } => {
                write!(f, "edge {edge:?} references a node out of range")
            }
            StreamError::OutOfOrder { previous, edge } => {
                write!(
                    f,
                    "edge {edge:?} arrived after {previous:?}; stream must be sorted"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Incremental packer: feed sorted edges, finish into a [`BitPackedCsr`].
#[derive(Debug)]
pub struct StreamingCsrPacker {
    num_nodes: usize,
    col_width: u32,
    columns: BitWriter,
    degrees: Vec<u32>,
    previous: Option<(NodeId, NodeId)>,
}

impl StreamingCsrPacker {
    /// Creates a packer for a graph over `num_nodes` nodes. The column
    /// width is fixed up front from the node space (`⌈log2(n)⌉`), which is
    /// what makes per-edge packing possible before the stream ends.
    pub fn new(num_nodes: usize) -> Self {
        StreamingCsrPacker {
            num_nodes,
            col_width: bits_needed(num_nodes.saturating_sub(1) as u64),
            columns: BitWriter::new(),
            degrees: vec![0; num_nodes],
            previous: None,
        }
    }

    /// Accepts the next edge of the sorted stream.
    pub fn push(&mut self, u: NodeId, v: NodeId) -> Result<(), StreamError> {
        if (u as usize) >= self.num_nodes || (v as usize) >= self.num_nodes {
            return Err(StreamError::NodeOutOfRange { edge: (u, v) });
        }
        if let Some(prev) = self.previous {
            if (u, v) < prev {
                return Err(StreamError::OutOfOrder {
                    previous: prev,
                    edge: (u, v),
                });
            }
        }
        self.previous = Some((u, v));
        self.degrees[u as usize] += 1;
        self.columns.write(u64::from(v), self.col_width);
        Ok(())
    }

    /// Edges accepted so far.
    pub fn len(&self) -> usize {
        self.columns.bit_len() / self.col_width as usize
    }

    /// True if no edges have been accepted.
    pub fn is_empty(&self) -> bool {
        self.columns.bit_len() == 0
    }

    /// Finalizes: builds the offset array from the accumulated degrees and
    /// packs it, returning the complete packed CSR.
    pub fn finish(self) -> BitPackedCsr {
        let num_edges = self.len();
        let mut offsets: Vec<u64> = self.degrees.iter().map(|&d| u64::from(d)).collect();
        exclusive_scan_seq(&mut offsets);
        offsets.push(num_edges as u64);
        let offsets = PackedArray::pack_with_width(&offsets, bits_needed(num_edges as u64));
        let columns = PackedArray::from_raw_parts(self.columns.finish(), self.col_width, num_edges);
        BitPackedCsr::from_parts(
            self.num_nodes,
            num_edges,
            PackedCsrMode::Raw,
            offsets,
            columns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CsrBuilder;
    use parcsr_graph::gen::{rmat, RmatParams};
    use parcsr_graph::EdgeList;

    #[test]
    fn streaming_equals_batch_raw_packing() {
        let graph = rmat(RmatParams::new(512, 6_000, 13)).sorted_by_source();
        let mut packer = StreamingCsrPacker::new(graph.num_nodes());
        for &(u, v) in graph.edges() {
            packer.push(u, v).unwrap();
        }
        let streamed = packer.finish();

        let csr = CsrBuilder::new().build_from_sorted(&graph).0;
        let batch = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 4);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn rejects_out_of_order() {
        let mut packer = StreamingCsrPacker::new(4);
        packer.push(1, 2).unwrap();
        let err = packer.push(0, 3).unwrap_err();
        assert!(matches!(err, StreamError::OutOfOrder { .. }), "{err}");
        // Equal duplicate edges are in order and accepted.
        packer.push(1, 2).unwrap();
    }

    #[test]
    fn rejects_out_of_range() {
        let mut packer = StreamingCsrPacker::new(3);
        let err = packer.push(0, 3).unwrap_err();
        assert_eq!(err, StreamError::NodeOutOfRange { edge: (0, 3) });
    }

    #[test]
    fn empty_stream() {
        let packer = StreamingCsrPacker::new(5);
        assert!(packer.is_empty());
        let packed = packer.finish();
        assert_eq!(packed.num_edges(), 0);
        assert_eq!(packed.num_nodes(), 5);
        assert!(packed.row(3).is_empty());
    }

    #[test]
    fn queries_work_on_streamed_structure() {
        let graph = EdgeList::new(6, vec![(0, 2), (0, 5), (2, 1), (5, 0)]);
        let mut packer = StreamingCsrPacker::new(6);
        for &(u, v) in graph.sorted_by_source().edges() {
            packer.push(u, v).unwrap();
        }
        let packed = packer.finish();
        assert_eq!(packed.row(0), [2, 5]);
        assert!(packed.has_edge(5, 0));
        assert!(!packed.has_edge(1, 2));
        assert_eq!(packed.degree(2), 1);
    }

    #[test]
    fn len_tracks_pushes() {
        let mut packer = StreamingCsrPacker::new(4);
        assert_eq!(packer.len(), 0);
        packer.push(0, 1).unwrap();
        packer.push(0, 2).unwrap();
        assert_eq!(packer.len(), 2);
    }
}
