//! Algorithm 4: the bit-packed CSR.
//!
//! Both CSR arrays are compressed with the fixed-width codec of Gopal et al.
//! \[7\], chunk-parallel with a bit-array merge (`parcsr_bitpack::parallel`):
//!
//! * the offset array `iA` packs at `⌈log2(m+1)⌉` bits per entry;
//! * the column array `jA` packs at `⌈log2(n)⌉` bits per entry in
//!   [`PackedCsrMode::Raw`], or — in [`PackedCsrMode::Gap`] — each row is
//!   first gap-coded (head absolute, tail as consecutive differences), which
//!   lowers the uniform width on clustered neighbor lists.
//!
//! Because every `jA` element occupies the same number of bits, row `u`
//! starts at bit `offsets[u] · width` — the property `GetRowFromCSR` \[28\]
//! needs to extract a row straight out of the bit array without touching
//! anything else. That extraction is [`BitPackedCsr::row_into`].

use rayon::prelude::*;

use parcsr_bitpack::{bits_needed, pack_parallel_with_width, GapDecode, PackedArray, RowCursor};
use parcsr_graph::NodeId;

use crate::build::Csr;
use crate::chunked::{run_chunked, Chunk, ChunkPolicy};

/// How the column array is transformed before packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackedCsrMode {
    /// Pack absolute neighbor ids.
    Raw,
    /// Gap-code each row (head absolute, tail as differences), then pack.
    /// Same O(1) row addressing; decoding a row is a running sum.
    Gap,
}

impl PackedCsrMode {
    /// Stable name for bench output.
    pub fn name(self) -> &'static str {
        match self {
            PackedCsrMode::Raw => "raw",
            PackedCsrMode::Gap => "gap",
        }
    }
}

/// A CSR with both arrays bit-packed (the output of Algorithm 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPackedCsr {
    num_nodes: usize,
    num_edges: usize,
    mode: PackedCsrMode,
    /// Packed `iA`: `num_nodes + 1` row offsets.
    offsets: PackedArray,
    /// Packed `jA`: `num_edges` entries (absolute or gap-coded per row).
    columns: PackedArray,
}

impl BitPackedCsr {
    /// Packs a CSR using `processors` parallel packers per array
    /// (Algorithm 4 runs the bit-pack once for `iA` and once for `jA`),
    /// splitting the gap encode by edge count ([`ChunkPolicy::Edges`], the
    /// workspace default — hub rows spread across workers instead of
    /// dragging one chunk; `--chunk-policy rows` on the binaries restores
    /// the historical row-count split).
    pub fn from_csr(csr: &Csr, mode: PackedCsrMode, processors: usize) -> Self {
        Self::from_csr_with_chunking(csr, mode, processors, ChunkPolicy::default())
    }

    /// [`from_csr`](Self::from_csr) with an explicit chunk-splitting policy
    /// for the gap encode. The policy only changes *which rows each worker
    /// encodes* — the output is byte-identical across policies and processor
    /// counts; [`ChunkPolicy::Edges`] balances hub-skewed graphs (see
    /// `examples/imbalance.rs` for the measured utilization gap).
    pub fn from_csr_with_chunking(
        csr: &Csr,
        mode: PackedCsrMode,
        processors: usize,
        policy: ChunkPolicy,
    ) -> Self {
        parcsr_obs::span!("pack", edges = csr.num_edges() as u64);
        let offset_width = bits_needed(csr.num_edges() as u64);
        let offsets = parcsr_obs::with_span_args(
            "pack.offsets",
            parcsr_obs::SpanArgs::new().bits(offset_width),
            || pack_parallel_with_width(csr.offsets(), processors, offset_width),
        );

        let column_values: Vec<u64> = parcsr_obs::with_span_args(
            "pack.encode",
            parcsr_obs::SpanArgs::new().edges(csr.num_edges() as u64),
            || match mode {
                PackedCsrMode::Raw => csr.targets().par_iter().map(|&v| u64::from(v)).collect(),
                PackedCsrMode::Gap => {
                    // Gap-code rows in parallel chunks; the policy decides
                    // whether chunk boundaries balance row counts or edge
                    // counts. Rows are whole within a chunk, so the output
                    // slice splits cleanly at chunk edge boundaries.
                    let mut out = vec![0u64; csr.num_edges()];
                    let plan = policy.plan(csr.offsets(), processors);
                    let edge_ranges: Vec<std::ops::Range<usize>> = plan
                        .iter()
                        .map(|c| {
                            csr.offsets()[c.range.start] as usize
                                ..csr.offsets()[c.range.end] as usize
                        })
                        .collect();
                    let slices = parcsr_scan::split_mut_by_ranges(&mut out, &edge_ranges);
                    let work: Vec<(Chunk, &mut [u64])> = plan.into_iter().zip(slices).collect();
                    run_chunked("pack.encode.chunk", work, |chunk, slice| {
                        let base = csr.offsets()[chunk.range.start] as usize;
                        for u in chunk.range.clone() {
                            let s = csr.offsets()[u] as usize - base;
                            let neigh = csr.neighbors(u as NodeId);
                            if let Some((&head, tail)) = neigh.split_first() {
                                slice[s] = u64::from(head);
                                let mut prev = head;
                                for (slot, &v) in slice[s + 1..s + neigh.len()].iter_mut().zip(tail)
                                {
                                    *slot = u64::from(v - prev);
                                    prev = v;
                                }
                            }
                        }
                    });
                    out
                }
            },
        );

        let columns = parcsr_obs::with_span_args(
            "pack.columns",
            parcsr_obs::SpanArgs::new().edges(csr.num_edges() as u64),
            || {
                let col_width = bits_needed(column_values.iter().copied().max().unwrap_or(0));
                pack_parallel_with_width(&column_values, processors, col_width)
            },
        );

        BitPackedCsr {
            num_nodes: csr.num_nodes(),
            num_edges: csr.num_edges(),
            mode,
            offsets,
            columns,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Packing mode of the column array.
    pub fn mode(&self) -> PackedCsrMode {
        self.mode
    }

    /// Out-degree of `u`, read from the packed offset array.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let i = u as usize;
        assert!(i < self.num_nodes, "node {u} out of range");
        (self.offsets.get(i + 1) - self.offsets.get(i)) as usize
    }

    /// `GetRowFromCSR` \[28\] as a stream: an iterator over `u`'s sorted
    /// neighbor row, decoded lazily out of the packed bit array. O(1) to
    /// create (two offset probes position a cursor at bit
    /// `offsets[u] · width`); each `next()` is one fixed-width bit read, plus
    /// the running gap sum in [`PackedCsrMode::Gap`]. No heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    // LINT: hot — per-lookup decode kernel; must stay allocation-free.
    pub fn row_iter(&self, u: NodeId) -> PackedRowIter<'_> {
        let i = u as usize;
        assert!(i < self.num_nodes, "node {u} out of range");
        let start = self.offsets.get(i) as usize;
        let deg = self.offsets.get(i + 1) as usize - start;
        let cursor = self.columns.range_cursor(start, deg);
        match self.mode {
            PackedCsrMode::Raw => PackedRowIter::Raw(cursor),
            PackedCsrMode::Gap => PackedRowIter::Gap(GapDecode::new(cursor)),
        }
    }

    /// `GetRowFromCSR` \[28\]: decodes `u`'s neighbor row out of the packed
    /// bit array into `out` (cleared first). O(deg(u)) bit reads starting at
    /// bit `offsets[u] · width`. The materializing counterpart of
    /// [`row_iter`](Self::row_iter).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        let _t = parcsr_obs::time_histogram(&parcsr_obs::metrics::wellknown::ROW_ITER_NS);
        let it = self.row_iter(u);
        out.clear();
        out.reserve(it.len());
        out.extend(it);
    }

    /// Allocating convenience wrapper over [`row_into`](Self::row_into).
    pub fn row(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.row_into(u, &mut out);
        out
    }

    /// Edge existence straight off the packed bit array — the primitive the
    /// query algorithms batch and split. No allocation in either mode:
    ///
    /// * [`PackedCsrMode::Raw`] rows store sorted absolute ids at a fixed
    ///   width, so the row supports O(1) random access and the probe is a
    ///   binary search of O(log deg) direct bit reads.
    /// * [`PackedCsrMode::Gap`] rows must be prefix-summed from the head, so
    ///   the probe streams the row with an early exit once the running sum
    ///   reaches `v` (rows are sorted, so the sum is non-decreasing).
    // LINT: hot — per-lookup probe kernel; must stay allocation-free.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let _t = parcsr_obs::time_histogram(&parcsr_obs::metrics::wellknown::HAS_EDGE_NS);
        let i = u as usize;
        assert!(i < self.num_nodes, "node {u} out of range");
        let start = self.offsets.get(i) as usize;
        let deg = self.offsets.get(i + 1) as usize - start;
        let target = u64::from(v);
        match self.mode {
            PackedCsrMode::Raw => {
                let (mut lo, mut hi) = (start, start + deg);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.columns.get(mid) < target {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo < start + deg && self.columns.get(lo) == target
            }
            PackedCsrMode::Gap => {
                for w in GapDecode::new(self.columns.range_cursor(start, deg)) {
                    if w >= target {
                        return w == target;
                    }
                }
                false
            }
        }
    }

    /// Total compact size in bytes (both packed arrays).
    pub fn packed_bytes(&self) -> usize {
        self.offsets.packed_bytes() + self.columns.packed_bytes()
    }

    /// Bits per column entry.
    pub fn column_width(&self) -> u32 {
        self.columns.width()
    }

    /// Bits per offset entry.
    pub fn offset_width(&self) -> u32 {
        self.offsets.width()
    }

    /// The packed offset array (`iA`) — exposed for serialization.
    pub fn offsets_array(&self) -> &PackedArray {
        &self.offsets
    }

    /// The packed column array (`jA`) — exposed for serialization.
    pub fn columns_array(&self) -> &PackedArray {
        &self.columns
    }

    /// Reassembles a packed CSR from its parts (the deserialization path;
    /// callers must have validated the structural invariants).
    pub(crate) fn from_parts(
        num_nodes: usize,
        num_edges: usize,
        mode: PackedCsrMode,
        offsets: PackedArray,
        columns: PackedArray,
    ) -> Self {
        debug_assert_eq!(offsets.len(), num_nodes + 1);
        debug_assert_eq!(columns.len(), num_edges);
        BitPackedCsr {
            num_nodes,
            num_edges,
            mode,
            offsets,
            columns,
        }
    }

    /// Reconstructs the full CSR (used by tests to prove losslessness).
    pub fn unpack(&self) -> Csr {
        let mut edges = Vec::with_capacity(self.num_edges);
        let mut row = Vec::new();
        for u in 0..self.num_nodes {
            self.row_into(u as NodeId, &mut row);
            edges.extend(row.iter().map(|&v| (u as NodeId, v)));
        }
        let graph = parcsr_graph::EdgeList::new(self.num_nodes, edges);
        Csr::from_edge_list_sequential(&graph)
    }
}

/// Streaming iterator over one packed neighbor row (the return type of
/// [`BitPackedCsr::row_iter`]). Yields sorted absolute neighbor ids in both
/// packing modes; in [`PackedCsrMode::Gap`] the running sum is maintained
/// internally.
#[derive(Debug, Clone)]
pub enum PackedRowIter<'a> {
    /// Raw mode: the cursor yields absolute ids directly.
    Raw(RowCursor<'a>),
    /// Gap mode: the cursor yields gaps, decoded by the running-sum adapter.
    Gap(GapDecode<RowCursor<'a>>),
}

impl Iterator for PackedRowIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            PackedRowIter::Raw(c) => c.next().map(|v| v as NodeId),
            PackedRowIter::Gap(g) => g.next().map(|v| v as NodeId),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PackedRowIter::Raw(c) => c.size_hint(),
            PackedRowIter::Gap(g) => g.size_hint(),
        }
    }
}

impl ExactSizeIterator for PackedRowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CsrBuilder;
    use parcsr_graph::gen::{rmat, RmatParams};
    use parcsr_graph::EdgeList;

    fn sample_csr() -> Csr {
        let g = rmat(RmatParams::new(512, 6_000, 21));
        CsrBuilder::new().build(&g)
    }

    #[test]
    fn roundtrip_raw_and_gap() {
        let csr = sample_csr();
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, 4);
            assert_eq!(packed.unpack(), csr, "{}", mode.name());
        }
    }

    #[test]
    fn rows_match_unpacked() {
        let csr = sample_csr();
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        for u in 0..csr.num_nodes() as NodeId {
            assert_eq!(packed.row(u), csr.neighbors(u), "row {u}");
            assert_eq!(packed.degree(u), csr.degree(u));
        }
    }

    #[test]
    fn has_edge_agrees_with_csr() {
        let csr = sample_csr();
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, 3);
            for u in (0..512u32).step_by(7) {
                for v in (0..512u32).step_by(11) {
                    assert_eq!(
                        packed.has_edge(u, v),
                        csr.has_edge(u, v),
                        "({u}, {v}) {}",
                        mode.name()
                    );
                }
            }
        }
    }

    #[test]
    fn packing_compresses() {
        let csr = sample_csr();
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 4);
        assert!(
            packed.packed_bytes() < csr.heap_bytes(),
            "{} !< {}",
            packed.packed_bytes(),
            csr.heap_bytes()
        );
        // 512 nodes -> 9-bit columns vs 32-bit raw.
        assert_eq!(packed.column_width(), 9);
    }

    #[test]
    fn gap_mode_never_wider_than_raw() {
        let csr = sample_csr();
        let raw = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 4);
        let gap = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        assert!(gap.column_width() <= raw.column_width());
    }

    #[test]
    fn processor_count_does_not_change_output() {
        let csr = sample_csr();
        let base = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 1);
        for p in [2, 3, 8, 64] {
            assert_eq!(BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, p), base);
        }
    }

    #[test]
    fn chunking_policy_does_not_change_output() {
        let csr = sample_csr();
        let base = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 1);
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let rows = BitPackedCsr::from_csr_with_chunking(&csr, mode, 1, ChunkPolicy::Rows);
            for p in [1, 2, 3, 8, 64] {
                for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
                    assert_eq!(
                        BitPackedCsr::from_csr_with_chunking(&csr, mode, p, policy),
                        rows,
                        "{mode:?} p={p} {policy:?}"
                    );
                }
            }
        }
        assert_eq!(
            BitPackedCsr::from_csr_with_chunking(&csr, PackedCsrMode::Gap, 4, ChunkPolicy::Edges),
            base
        );
    }

    #[test]
    fn empty_graph() {
        let csr = CsrBuilder::new().build(&EdgeList::new(0, vec![]));
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 4);
        assert_eq!(packed.num_nodes(), 0);
        assert_eq!(packed.num_edges(), 0);
    }

    #[test]
    fn graph_with_empty_rows() {
        let g = EdgeList::new(8, vec![(1, 7), (1, 2), (6, 0)]);
        let csr = CsrBuilder::new().build(&g);
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, 4);
            assert!(packed.row(0).is_empty());
            assert_eq!(packed.row(1), [2, 7]);
            assert!(packed.row(5).is_empty());
            assert_eq!(packed.row(6), [0]);
            assert_eq!(packed.degree(7), 0);
        }
    }

    #[test]
    fn duplicate_neighbors_roundtrip_in_gap_mode() {
        // Multigraph row [3, 3] gives a zero gap.
        let g = EdgeList::new(5, vec![(0, 3), (0, 3), (0, 4)]);
        let csr = CsrBuilder::new().build(&g);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 2);
        assert_eq!(packed.row(0), [3, 3, 4]);
        assert!(packed.has_edge(0, 3));
    }

    #[test]
    fn single_node_self_loop() {
        let g = EdgeList::new(1, vec![(0, 0)]);
        let csr = CsrBuilder::new().build(&g);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 2);
        assert_eq!(packed.row(0), [0]);
        assert!(packed.has_edge(0, 0));
    }
}
