//! Chunk planning and span-instrumented chunked execution.
//!
//! The implementation lives in the shared [`parcsr_runtime`] crate (one
//! planner for the scan, degree, pack, query-batch and TCSR pipelines);
//! this module re-exports it under the historical `parcsr::chunked` path.
//! See `parcsr_runtime` for the policy semantics and
//! `examples/imbalance.rs` for the measured A/B.

pub use parcsr_runtime::{run_chunked, run_chunked_plan, Chunk, ChunkPolicy};
