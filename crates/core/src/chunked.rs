//! Chunk planning and span-instrumented chunked execution.
//!
//! The paper's kernels all open with "divide the rows into `p` chunks" —
//! and on a social graph that division is exactly where load imbalance is
//! born: a hub row carries orders of magnitude more edges than the median,
//! so equal *row counts* give one worker most of the *work*. This module
//! makes the split policy explicit and observable:
//!
//! * [`ChunkPolicy`] plans row chunks over a CSR offsets array — by row
//!   count ([`ChunkPolicy::Rows`], the historical default) or by edge count
//!   ([`ChunkPolicy::Edges`], weighted by `degree + 1` so empty-row runs
//!   still spread out);
//! * [`run_chunked`] executes one planned chunk per parallel task, wrapping
//!   each in a span carrying the `chunk`/`chunk_len`/`edges` payloads that
//!   `parcsr_obs::analyze` turns into imbalance statistics (chunk-duration
//!   CV, duration-vs-size correlation, straggler id).
//!
//! `examples/imbalance.rs` A/B-tests the two policies on a skewed hub graph
//! and EXPERIMENTS.md records the measured utilization gap.

use std::ops::Range;

use rayon::prelude::*;

use parcsr_scan::{chunk_ranges, chunk_ranges_weighted};

/// How a row range is divided into parallel chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkPolicy {
    /// Near-equal row counts per chunk (`chunk_ranges`): the right default
    /// when per-row cost is uniform.
    Rows,
    /// Near-equal edge counts per chunk (`chunk_ranges_weighted` over
    /// `degree + 1` weights): resists hub-row skew at the cost of reading
    /// the offsets array during planning.
    Edges,
}

impl ChunkPolicy {
    /// Stable name for reports and experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChunkPolicy::Rows => "rows",
            ChunkPolicy::Edges => "edges",
        }
    }

    /// Plans row chunks for a CSR-shaped `offsets` array (length `n + 1`,
    /// non-decreasing). Returns at most `chunks` non-empty [`Chunk`]s
    /// covering `0..n` contiguously; empty when `n == 0`.
    #[must_use]
    pub fn plan(self, offsets: &[u64], chunks: usize) -> Vec<Chunk> {
        let n = offsets.len().saturating_sub(1);
        let ranges = match self {
            ChunkPolicy::Rows => chunk_ranges(n, chunks),
            ChunkPolicy::Edges => {
                // `+ 1` charges each row's constant cost, so long runs of
                // empty rows still spread across chunks.
                let weights: Vec<u64> = offsets.windows(2).map(|w| w[1] - w[0] + 1).collect();
                chunk_ranges_weighted(&weights, chunks)
            }
        };
        ranges
            .into_iter()
            .enumerate()
            .map(|(index, range)| {
                let edges = offsets[range.end] - offsets[range.start];
                Chunk {
                    index,
                    range,
                    edges,
                }
            })
            .collect()
    }
}

/// One planned chunk of rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Chunk index within the plan (also the span's `chunk` payload).
    pub index: usize,
    /// Row range covered by this chunk.
    pub range: Range<usize>,
    /// Edges contained in the row range (the span's `edges` payload).
    pub edges: u64,
}

/// Runs `f` once per `(chunk, payload)` pair in parallel, each call wrapped
/// in a span named `span_name` carrying the chunk's `chunk`/`chunk_len`/
/// `edges` payloads. Results come back in chunk order. `span_name` should
/// end in `.chunk` so `cargo xtask check-trace` enforces its payload.
pub fn run_chunked<T, R, F>(span_name: &'static str, work: Vec<(Chunk, T)>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&Chunk, T) -> R + Sync + Send,
{
    work.into_par_iter()
        .map(|(chunk, payload)| {
            parcsr_obs::with_span_args(
                span_name,
                parcsr_obs::SpanArgs::new()
                    .chunk(chunk.index as u64)
                    .chunk_len(chunk.range.len() as u64)
                    .edges(chunk.edges),
                || f(&chunk, payload),
            )
        })
        .collect()
}

/// [`run_chunked`] without per-chunk payloads.
pub fn run_chunked_plan<R, F>(span_name: &'static str, plan: Vec<Chunk>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Chunk) -> R + Sync + Send,
{
    let work: Vec<(Chunk, ())> = plan.into_iter().map(|c| (c, ())).collect();
    run_chunked(span_name, work, |c, ()| f(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Offsets of a 6-row CSR where row 0 is a hub: degrees 12,1,1,1,1,0.
    const HUB: [u64; 7] = [0, 12, 13, 14, 15, 16, 16];

    #[test]
    fn row_policy_balances_rows_not_edges() {
        let plan = ChunkPolicy::Rows.plan(&HUB, 2);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].range, 0..3);
        assert_eq!(plan[1].range, 3..6);
        assert_eq!(plan[0].edges, 14);
        assert_eq!(plan[1].edges, 2);
    }

    #[test]
    fn edge_policy_isolates_the_hub() {
        let plan = ChunkPolicy::Edges.plan(&HUB, 2);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].range, 0..1, "hub row gets its own chunk");
        assert_eq!(plan[1].range, 1..6);
        assert_eq!(plan[0].edges, 12);
        assert_eq!(plan[1].edges, 4);
    }

    #[test]
    fn plans_cover_rows_exactly_once() {
        for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
            for chunks in [1usize, 2, 3, 7, 64] {
                let plan = policy.plan(&HUB, chunks);
                let mut prev = 0;
                let mut edges = 0;
                for (i, c) in plan.iter().enumerate() {
                    assert_eq!(c.index, i);
                    assert_eq!(c.range.start, prev);
                    assert!(!c.range.is_empty());
                    prev = c.range.end;
                    edges += c.edges;
                }
                assert_eq!(prev, 6, "{policy:?} x{chunks}");
                assert_eq!(edges, 16);
            }
        }
        assert!(ChunkPolicy::Rows.plan(&[0], 4).is_empty());
        assert!(ChunkPolicy::Edges.plan(&[], 4).is_empty());
    }

    #[test]
    fn run_chunked_preserves_chunk_order() {
        let plan = ChunkPolicy::Edges.plan(&HUB, 3);
        let indices = run_chunked_plan("test.chunk", plan.clone(), |c| c.index);
        assert_eq!(indices, (0..plan.len()).collect::<Vec<_>>());

        let sums: Vec<u64> = run_chunked(
            "test.chunk",
            plan.iter().cloned().map(|c| (c, 2u64)).collect(),
            |c, factor| c.edges * factor,
        );
        assert_eq!(sums.iter().sum::<u64>(), 32);
    }
}
