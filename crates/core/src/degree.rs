//! Algorithms 2 and 3: parallel degree computation.
//!
//! The edge list, sorted by source node, is split into one chunk per
//! processor. Because it is sorted, the only node that can be shared between
//! two adjacent chunks is the one straddling the boundary — so every chunk
//! counts its *first* node into a per-processor side array
//! (`globalTempDegree` in the paper), writes the counts of all its remaining
//! nodes straight into the global degree array (guaranteed conflict-free),
//! and a final merge pass folds the side array back in (Figure 3).
//!
//! Rust cannot express "these plain stores are disjoint by construction"
//! safely, so the global array is a `Vec<AtomicU32>` written with relaxed
//! stores — free of read-modify-write traffic on the hot path, which is the
//! actual point of the paper's side-array design. The [`degrees_atomic`]
//! ablation shows what the design avoids: one `fetch_add` per *edge* instead
//! of one store per *node run*.

// ORDERING: Relaxed throughout — every store/fetch_add hits its own
// node's cell, and all cells are read only after the chunk collect()
// barrier (the paper's sync()).
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

use rayon::prelude::*;

use parcsr_graph::{Edge, NodeId};
use parcsr_scan::chunk_ranges;

/// One chunk of Algorithm 2 over a source-sorted `chunk`: emits every
/// complete (non-head) node run through `emit` and returns the head node
/// with its in-chunk count — the entry destined for the side array.
///
/// Shared between the shipped kernel (where `emit` is a relaxed store into
/// the global degree array) and the `cfg(parcsr_check)` model (where `emit`
/// writes an instrumented [`parcsr_check::Slice`]), so the checker verifies
/// the very run-splitting logic that ships.
fn count_chunk_runs(
    chunk: &[Edge],
    num_nodes: usize,
    mut emit: impl FnMut(NodeId, u32),
) -> (NodeId, u32) {
    let head = chunk[0].0;
    assert!((head as usize) < num_nodes, "node {head} out of range");
    let mut i = 0;
    while i < chunk.len() && chunk[i].0 == head {
        i += 1;
    }
    let head_count = i as u32;

    while i < chunk.len() {
        let node = chunk[i].0;
        assert!((node as usize) < num_nodes, "node {node} out of range");
        let run_start = i;
        while i < chunk.len() && chunk[i].0 == node {
            i += 1;
        }
        // Disjointness argument: `node` is not the chunk's head, and a
        // sorted list means any node spanning a boundary is the *head* of
        // every later chunk it touches — so exactly one chunk emits `node`.
        emit(node, (i - run_start) as u32);
    }
    (head, head_count)
}

/// Computes the out-degree array of a **source-sorted** edge list using
/// `processors` chunks (Algorithms 2–3).
///
/// Equivalent to [`parcsr_graph::EdgeList::degrees_sequential`] for every
/// sorted input and every processor count.
///
/// # Panics
///
/// Panics if the edge list is not sorted by source, or if an endpoint is
/// `>= num_nodes`.
pub fn degrees_parallel(edges: &[Edge], num_nodes: usize, processors: usize) -> Vec<u32> {
    assert!(
        edges.windows(2).all(|w| w[0].0 <= w[1].0),
        "degrees_parallel requires an edge list sorted by source"
    );
    let global: Vec<AtomicU32> = (0..num_nodes).map(|_| AtomicU32::new(0)).collect();
    let ranges = chunk_ranges(edges.len(), processors);

    // Algorithm 2, per chunk: count the head node into the side array, write
    // every other node's run length directly to the global array. The plain
    // relaxed stores are sound by `count_chunk_runs`'s disjointness
    // argument (schedule-checked in `checked::degrees_model`).
    let temp_degrees: Vec<(NodeId, u32)> = ranges
        .par_iter()
        .enumerate()
        .map(|(i, r)| {
            let _span = parcsr_obs::enter_with_args(
                "degree.chunk",
                parcsr_obs::SpanArgs::new()
                    .chunk(i as u64)
                    .chunk_len(r.len() as u64),
            );
            count_chunk_runs(&edges[r.clone()], num_nodes, |node, run_len| {
                global[node as usize].store(run_len, Relaxed);
            })
        })
        .collect();
    // The collect() above is the paper's sync(): all chunk passes complete
    // before the merge.

    let mut degrees: Vec<u32> = global.into_iter().map(AtomicU32::into_inner).collect();

    // Algorithm 3's merge: fold each chunk's head count back in. Multiple
    // chunks may share a head node (a hub spanning several chunks), hence
    // `+=` rather than a store.
    parcsr_obs::with_span("degree.merge", || {
        for (node, count) in temp_degrees {
            degrees[node as usize] += count;
        }
    });
    degrees
}

/// Ablation comparator: degree counting with one atomic `fetch_add` per edge,
/// no sortedness requirement. Benchmarked against [`degrees_parallel`] to
/// quantify the value of the paper's side-array design (DESIGN.md ablation
/// "boundary side-array").
pub fn degrees_atomic(edges: &[Edge], num_nodes: usize) -> Vec<u32> {
    let global: Vec<AtomicU32> = (0..num_nodes).map(|_| AtomicU32::new(0)).collect();
    edges.par_iter().for_each(|&(u, _)| {
        assert!((u as usize) < num_nodes, "node {u} out of range");
        global[u as usize].fetch_add(1, Relaxed);
    });
    global.into_iter().map(AtomicU32::into_inner).collect()
}

/// Schedule-checked model of Algorithms 2–3 (compiled only under
/// `--cfg parcsr_check`).
#[cfg(parcsr_check)]
pub mod checked {
    use std::sync::Arc;

    use parcsr_check as check;
    use parcsr_graph::{Edge, NodeId};
    use parcsr_scan::chunk_ranges;

    use super::count_chunk_runs;

    /// Known-bad variants of the degree kernel, used to validate the checker.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum DegreeFault {
        /// The shipped side-array structure (must be race-free).
        None,
        /// Drops the side array: each chunk writes its head node's in-chunk
        /// count straight into the global array. Racy whenever a node's run
        /// straddles a chunk boundary — exactly the overlap the paper's
        /// `globalTempDegree` exists to avoid.
        DropSideArray,
    }

    /// Model of `degrees_parallel` over instrumented shared memory: one
    /// logical thread per chunk writing the shared degree array through
    /// [`check::Slice`], joins as the sync before the side-array merge. Runs
    /// the *same* `count_chunk_runs` chunk pass as the shipped kernel. Must
    /// be called inside [`parcsr_check::model`] / [`parcsr_check::check`].
    pub fn degrees_model(
        edges: Vec<Edge>,
        num_nodes: usize,
        processors: usize,
        fault: DegreeFault,
    ) -> Vec<u32> {
        let ranges = chunk_ranges(edges.len(), processors);
        let degrees = check::Slice::new(vec![0u32; num_nodes]).named("degree.global");
        let edges = Arc::new(edges);

        let workers: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let degrees = degrees.clone();
                let edges = Arc::clone(&edges);
                check::spawn(move || {
                    let (head, head_count) =
                        count_chunk_runs(&edges[r], num_nodes, |node, run_len| {
                            degrees.write(node as usize, run_len);
                        });
                    match fault {
                        // Shipped: the head count goes to the side array,
                        // carried back through join.
                        DegreeFault::None => Some((head, head_count)),
                        // Seeded race: write the head in-chunk. Two chunks
                        // sharing a straddling node now write its slot
                        // concurrently.
                        DegreeFault::DropSideArray => {
                            let prev = degrees.read(head as usize);
                            degrees.write(head as usize, prev + head_count);
                            None
                        }
                    }
                })
            })
            .collect();
        let side: Vec<Option<(NodeId, u32)>> = workers.into_iter().map(|h| h.join()).collect();
        // All joins above are the sync(); the merge below runs on the
        // coordinator, ordered after every chunk write.

        for (node, count) in side.into_iter().flatten() {
            let prev = degrees.read(node as usize);
            degrees.write(node as usize, prev + count);
        }
        degrees.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_graph::gen::{rmat, RmatParams};

    fn sorted_edges(n: usize, m: usize, seed: u64) -> (Vec<Edge>, usize) {
        let g = rmat(RmatParams::new(n, m, seed)).sorted_by_source();
        let n = g.num_nodes();
        (g.into_edges(), n)
    }

    #[test]
    fn matches_sequential_for_all_processor_counts() {
        let (edges, n) = sorted_edges(1 << 10, 20_000, 3);
        let want = {
            let mut d = vec![0u32; n];
            for &(u, _) in &edges {
                d[u as usize] += 1;
            }
            d
        };
        for p in [1, 2, 3, 4, 7, 8, 16, 64, 1000] {
            assert_eq!(degrees_parallel(&edges, n, p), want, "p={p}");
        }
        assert_eq!(degrees_atomic(&edges, n), want);
    }

    #[test]
    fn figure_3_example() {
        // Mirrors the paper's Figure 3: chunks overlapping on boundary nodes.
        let edges: Vec<Edge> = vec![
            (0, 1),
            (0, 2),
            (1, 0), // chunk 1 ends inside node 1's run
            (1, 2),
            (2, 0),
            (2, 1), // chunk 2: head 1 (overlap), then 2
            (3, 0),
            (4, 0),
            (5, 1),
            (5, 2),
            (5, 3),
            (5, 4), // node 5 spans two chunks
        ];
        for p in [1, 2, 3, 4, 6, 12] {
            assert_eq!(degrees_parallel(&edges, 6, p), [2, 2, 2, 1, 1, 4], "p={p}");
        }
    }

    #[test]
    fn hub_spanning_many_chunks() {
        // One node owns nearly every edge: with many chunks, most chunks'
        // head is that node and the merge accumulates all the side counts.
        let mut edges: Vec<Edge> = (0..1000).map(|i| (5u32, (i % 64) as u32)).collect();
        edges.push((7, 0));
        edges.sort_unstable();
        let d = degrees_parallel(&edges, 64, 16);
        assert_eq!(d[5], 1000);
        assert_eq!(d[7], 1);
        assert_eq!(d.iter().map(|&x| x as usize).sum::<usize>(), 1001);
    }

    #[test]
    fn empty_edges() {
        assert_eq!(degrees_parallel(&[], 5, 4), vec![0; 5]);
        assert_eq!(degrees_atomic(&[], 5), vec![0; 5]);
    }

    #[test]
    fn single_edge() {
        assert_eq!(degrees_parallel(&[(2, 0)], 4, 8), [0, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "sorted by source")]
    fn rejects_unsorted() {
        degrees_parallel(&[(3, 0), (1, 0)], 4, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        degrees_parallel(&[(0, 0), (9, 0)], 5, 2);
    }

    #[test]
    fn isolated_trailing_nodes_have_zero_degree() {
        let d = degrees_parallel(&[(0, 1), (1, 0)], 10, 2);
        assert_eq!(&d[2..], &[0; 8]);
    }
}
