//! Explicit processor-count control.
//!
//! The paper's evaluation sweeps the number of processors (Table II's sixth
//! column: p ∈ {1, 4, 8, 16, 64}). Rayon's global pool is sized once at
//! startup, so the sweep instead pins each measurement to a dedicated
//! `p`-thread pool via [`with_processors`]. All parallel routines in this
//! workspace use rayon's *current* pool, so running them inside the closure
//! confines them to exactly `p` worker threads. `p` may exceed the physical
//! core count (the paper itself ran 64 threads on a 32-core machine).

/// Runs `f` on a dedicated rayon pool with exactly `processors` threads and
/// returns its result.
///
/// # Panics
///
/// Panics if the pool cannot be built (e.g. `processors == 0`).
pub fn with_processors<R: Send>(processors: usize, f: impl FnOnce() -> R + Send) -> R {
    assert!(processors > 0, "need at least one processor");
    rayon::ThreadPoolBuilder::new()
        .num_threads(processors)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_width() {
        for p in [1usize, 2, 4] {
            let seen = with_processors(p, rayon::current_num_threads);
            assert_eq!(seen, p);
        }
    }

    #[test]
    fn oversubscription_is_allowed() {
        let logical = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let p = logical * 2;
        assert_eq!(with_processors(p, rayon::current_num_threads), p);
    }

    #[test]
    fn returns_closure_value() {
        let v = with_processors(2, || (0..100).sum::<u64>());
        assert_eq!(v, 4950);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_processors_rejected() {
        with_processors(0, || ());
    }
}
