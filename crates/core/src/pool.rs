//! Explicit processor-count control.
//!
//! The implementation lives in the shared [`parcsr_runtime`] crate, next to
//! the chunk planner and executors it feeds (one parallel-runtime home for
//! planning, execution, and pool pinning); this module re-exports it under
//! the historical `parcsr::pool` path. See `parcsr_runtime::pool` for the
//! caching semantics and the observability counters it publishes.

pub use parcsr_runtime::pool::with_processors;
