//! Parallel CSR construction (Section III).
//!
//! Pipeline: sort the edge list by source (precondition of Algorithm 2) →
//! compute the degree array in parallel (Algorithms 2–3) → prefix-sum the
//! degrees into row offsets (Algorithm 1 / any scan in `parcsr-scan`) →
//! fill the column array in parallel. Because the edge list is sorted by
//! `(source, target)`, the column array *is* the target column of the sorted
//! list, so the fill is a parallel copy and every row comes out sorted —
//! which the query algorithms exploit for binary search.

use std::time::Instant;

use parcsr_graph::{EdgeList, NodeId};
use parcsr_runtime::split_mut_by_ranges;
use parcsr_scan::{ScanAlgorithm, Scanner};

use crate::chunked::{run_chunked, ChunkPolicy};
use crate::degree::degrees_parallel;

/// A Compressed Sparse Row graph: `offsets` (the paper's `iA`, as row start
/// indices) and `targets` (the paper's `jA`). Unweighted, so there is no
/// value array (`vA`) — "an unweighted array is also a boolean array".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    num_nodes: usize,
    /// `num_nodes + 1` row offsets; row `u` occupies
    /// `targets[offsets[u]..offsets[u+1]]`.
    offsets: Vec<u64>,
    /// Concatenated neighbor lists, each sorted ascending.
    targets: Vec<NodeId>,
}

impl Csr {
    /// Sequential reference constructor (counting sort). The `p = 1` ground
    /// truth the parallel builder is verified against.
    pub fn from_edge_list_sequential(graph: &EdgeList) -> Csr {
        let n = graph.num_nodes();
        let degrees = graph.degrees_sequential();
        let mut offsets = vec![0u64; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + u64::from(degrees[u]);
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; graph.num_edges()];
        for &(u, v) in graph.edges() {
            let slot = cursor[u as usize];
            targets[slot as usize] = v;
            cursor[u as usize] += 1;
        }
        // Counting sort preserves input order within a row; sort each row so
        // all constructors agree on a canonical CSR.
        for u in 0..n {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            targets[s..e].sort_unstable();
        }
        Csr {
            num_nodes: n,
            offsets,
            targets,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        assert!(u < self.num_nodes, "node {u} out of range");
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// The sorted neighbor list of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let i = u as usize;
        assert!(i < self.num_nodes, "node {u} out of range");
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Edge-existence via binary search on the sorted row. `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The row offset array (`iA`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The column array (`jA`).
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Heap bytes of the uncompressed structure (offsets + targets).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }

    /// The transposed CSR (every edge reversed): in-neighbor queries on the
    /// original graph become out-neighbor queries on the transpose. Built
    /// with the parallel pipeline.
    pub fn transposed(&self) -> Csr {
        let mut edges = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_nodes as NodeId {
            edges.extend(self.neighbors(u).iter().map(|&v| (v, u)));
        }
        CsrBuilder::new().build(&EdgeList::new(self.num_nodes, edges))
    }

    /// Internal consistency check: offsets monotone, bounds meet the edge
    /// count, rows sorted, targets in range. Used by tests and debug
    /// assertions; `O(n + m)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.num_nodes + 1 {
            return Err(format!(
                "offsets length {} != num_nodes + 1 = {}",
                self.offsets.len(),
                self.num_nodes + 1
            ));
        }
        if self.offsets.first() != Some(&0) {
            return Err("offsets must start at 0".into());
        }
        if *self.offsets.last().unwrap() != self.targets.len() as u64 {
            return Err(format!(
                "last offset {} != edge count {}",
                self.offsets.last().unwrap(),
                self.targets.len()
            ));
        }
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets must be non-decreasing".into());
            }
        }
        for u in 0..self.num_nodes {
            let row = &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize];
            if !row.windows(2).all(|w| w[0] <= w[1]) {
                return Err(format!("row {u} is not sorted"));
            }
            if let Some(&bad) = row.iter().find(|&&v| v as usize >= self.num_nodes) {
                return Err(format!("row {u} references out-of-range node {bad}"));
            }
        }
        Ok(())
    }
}

/// Wall-clock milliseconds per construction stage — what Figure 6's curves
/// decompose into.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BuildTimings {
    /// Parallel sort of the edge list (0 when the input was pre-sorted).
    pub sort_ms: f64,
    /// Parallel degree computation (Algorithms 2–3).
    pub degree_ms: f64,
    /// Prefix-sum of the degree array (Algorithm 1).
    pub scan_ms: f64,
    /// Parallel column-array fill.
    pub fill_ms: f64,
}

impl BuildTimings {
    /// Total construction time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.sort_ms + self.degree_ms + self.scan_ms + self.fill_ms
    }
}

/// Configurable parallel CSR builder.
#[derive(Debug, Clone, Copy)]
pub struct CsrBuilder {
    processors: usize,
    scan: ScanAlgorithm,
    chunk_policy: ChunkPolicy,
}

impl CsrBuilder {
    /// Builder with the paper's defaults: chunked scan, one chunk per
    /// current rayon thread, edge-weighted chunking.
    pub fn new() -> Self {
        CsrBuilder {
            processors: rayon::current_num_threads(),
            scan: ScanAlgorithm::Chunked,
            chunk_policy: ChunkPolicy::default(),
        }
    }

    /// Sets the logical processor count (number of chunks).
    pub fn processors(mut self, p: usize) -> Self {
        self.processors = p.max(1);
        self
    }

    /// Sets the scan algorithm used for the offset array.
    pub fn scan_algorithm(mut self, alg: ScanAlgorithm) -> Self {
        self.scan = alg;
        self
    }

    /// Sets the chunking policy for the column-fill stage. The output CSR is
    /// identical either way; only the parallel work split changes.
    pub fn chunk_policy(mut self, policy: ChunkPolicy) -> Self {
        self.chunk_policy = policy;
        self
    }

    /// Builds the CSR, sorting a copy of the edge list first.
    pub fn build(&self, graph: &EdgeList) -> Csr {
        self.build_timed(graph).0
    }

    /// Builds the CSR and reports per-stage timings.
    pub fn build_timed(&self, graph: &EdgeList) -> (Csr, BuildTimings) {
        let mut timings = BuildTimings::default();
        let t = Instant::now();
        let sorted = parcsr_obs::with_span_args(
            "sort",
            parcsr_obs::SpanArgs::new().edges(graph.num_edges() as u64),
            || graph.sorted_by_source(),
        );
        timings.sort_ms = ms_since(t);
        let csr = self.build_from_sorted_inner(&sorted, &mut timings);
        (csr, timings)
    }

    /// Builds from an already-sorted edge list (the paper's assumed input;
    /// skips the sort stage).
    ///
    /// # Panics
    ///
    /// Panics if the edge list is not sorted by source.
    pub fn build_from_sorted(&self, graph: &EdgeList) -> (Csr, BuildTimings) {
        let mut timings = BuildTimings::default();
        let csr = self.build_from_sorted_inner(graph, &mut timings);
        (csr, timings)
    }

    fn build_from_sorted_inner(&self, sorted: &EdgeList, timings: &mut BuildTimings) -> Csr {
        let n = sorted.num_nodes();
        let p = self.processors;

        // Algorithms 2-3: parallel degree array.
        let t = Instant::now();
        let degrees = parcsr_obs::with_span_args(
            "degree",
            parcsr_obs::SpanArgs::new().edges(sorted.num_edges() as u64),
            || degrees_parallel(sorted.edges(), n, p),
        );
        timings.degree_ms = ms_since(t);

        // Algorithm 1: prefix sum -> row offsets (exclusive scan, one extra
        // trailing slot holding the total).
        let t = Instant::now();
        let offsets =
            parcsr_obs::with_span_args("scan", parcsr_obs::SpanArgs::new().edges(n as u64), || {
                let degrees64: Vec<u64> = degrees.iter().map(|&d| u64::from(d)).collect();
                let scanner = Scanner::with_chunks(self.scan, p);
                let mut offsets = scanner.exclusive_scan(&degrees64);
                offsets.push(sorted.num_edges() as u64);
                offsets
            });
        timings.scan_ms = ms_since(t);

        // Column fill: the sorted edge list's target column, copied in
        // row chunks planned by the chunking policy. Under the default
        // edge-weighted plan a hub row's edges stay inside one worker's chunk
        // instead of inflating whichever row-balanced chunk drew the hub.
        let t = Instant::now();
        let targets: Vec<NodeId> = parcsr_obs::with_span_args(
            "scatter",
            parcsr_obs::SpanArgs::new().edges(sorted.num_edges() as u64),
            || {
                let plan = self.chunk_policy.plan(&offsets, p);
                let edge_ranges: Vec<_> = plan
                    .iter()
                    .map(|c| offsets[c.range.start] as usize..offsets[c.range.end] as usize)
                    .collect();
                let mut targets = vec![0 as NodeId; sorted.num_edges()];
                let outs = split_mut_by_ranges(&mut targets, &edge_ranges);
                run_chunked(
                    "scatter.chunk",
                    plan.into_iter().zip(outs).collect(),
                    |chunk, out: &mut [NodeId]| {
                        let first = offsets[chunk.range.start] as usize;
                        let src = &sorted.edges()[first..first + out.len()];
                        for (slot, &(_, v)) in out.iter_mut().zip(src) {
                            *slot = v;
                        }
                    },
                );
                targets
            },
        );
        timings.fill_ms = ms_since(t);

        let csr = Csr {
            num_nodes: n,
            offsets,
            targets,
        };
        debug_assert_eq!(csr.validate(), Ok(()));
        csr
    }
}

impl Default for CsrBuilder {
    fn default() -> Self {
        CsrBuilder::new()
    }
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_graph::gen::{erdos_renyi, rmat, ErParams, RmatParams};

    fn paper_example() -> EdgeList {
        // The 10-node graph of Table I (upper triangular + mirrored rows as
        // printed in the matrix).
        EdgeList::new(
            10,
            vec![
                (0, 5),
                (1, 6),
                (1, 7),
                (2, 7),
                (3, 8),
                (3, 9),
                (4, 9),
                (5, 0),
                (6, 1),
                (7, 1),
                (7, 2),
                (8, 2),
                (8, 3),
                (9, 3),
            ],
        )
    }

    #[test]
    fn paper_table_i_graph() {
        let csr = CsrBuilder::new().build(&paper_example());
        assert_eq!(csr.num_nodes(), 10);
        assert_eq!(csr.num_edges(), 14);
        assert_eq!(csr.neighbors(1), [6, 7]);
        assert_eq!(csr.neighbors(7), [1, 2]);
        assert_eq!(csr.degree(0), 1);
        assert!(csr.has_edge(3, 9));
        assert!(!csr.has_edge(3, 7));
        assert_eq!(csr.validate(), Ok(()));
    }

    #[test]
    fn parallel_matches_sequential_reference() {
        let g = rmat(RmatParams::new(1 << 9, 10_000, 17));
        let want = Csr::from_edge_list_sequential(&g);
        for p in [1, 2, 4, 8, 32] {
            let got = CsrBuilder::new().processors(p).build(&g);
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn all_scan_algorithms_agree() {
        let g = erdos_renyi(ErParams::new(700, 5_000, 5));
        let want = Csr::from_edge_list_sequential(&g);
        for alg in ScanAlgorithm::ALL {
            let got = CsrBuilder::new()
                .processors(6)
                .scan_algorithm(alg)
                .build(&g);
            assert_eq!(got, want, "{}", alg.name());
        }
    }

    #[test]
    fn empty_graph() {
        let g = EdgeList::new(0, vec![]);
        let csr = CsrBuilder::new().build(&g);
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.offsets(), [0]);
        assert_eq!(csr.validate(), Ok(()));
    }

    #[test]
    fn nodes_without_edges() {
        let g = EdgeList::new(6, vec![(2, 3)]);
        let csr = CsrBuilder::new().build(&g);
        assert_eq!(csr.degree(0), 0);
        assert_eq!(csr.degree(2), 1);
        assert_eq!(csr.degree(5), 0);
        assert!(csr.neighbors(5).is_empty());
    }

    #[test]
    fn duplicate_edges_are_preserved() {
        // Multigraph input: CSR stores both copies (dedup is the caller's
        // choice via EdgeList::deduped).
        let g = EdgeList::new(3, vec![(0, 1), (0, 1), (1, 2)]);
        let csr = CsrBuilder::new().build(&g);
        assert_eq!(csr.neighbors(0), [1, 1]);
        assert_eq!(csr.num_edges(), 3);
    }

    #[test]
    fn build_from_sorted_skips_sort() {
        let g = rmat(RmatParams::new(256, 2_000, 9)).sorted_by_source();
        let (csr, timings) = CsrBuilder::new().build_from_sorted(&g);
        assert_eq!(timings.sort_ms, 0.0);
        assert!(timings.total_ms() >= 0.0);
        assert_eq!(csr.num_edges(), 2_000);
    }

    #[test]
    fn timings_cover_all_stages() {
        let g = rmat(RmatParams::new(1 << 10, 50_000, 2));
        let (_, t) = CsrBuilder::new().build_timed(&g);
        assert!(t.sort_ms > 0.0);
        assert!(t.total_ms() >= t.sort_ms + t.degree_ms);
    }

    #[test]
    fn rows_are_sorted_for_binary_search() {
        let g = rmat(RmatParams::new(512, 8_000, 33));
        let csr = CsrBuilder::new().build(&g);
        for u in 0..csr.num_nodes() as NodeId {
            let row = csr.neighbors(u);
            assert!(row.windows(2).all(|w| w[0] <= w[1]), "row {u}");
        }
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = rmat(RmatParams::new(256, 2_000, 41));
        let csr = CsrBuilder::new().build(&g);
        let t = csr.transposed();
        assert_eq!(t.num_edges(), csr.num_edges());
        for u in 0..csr.num_nodes() as NodeId {
            for &v in csr.neighbors(u) {
                assert!(t.has_edge(v, u), "({u}, {v}) missing from transpose");
            }
        }
        // Double transpose is the identity.
        assert_eq!(t.transposed(), csr);
    }

    #[test]
    fn chunk_policy_does_not_change_csr() {
        let g = rmat(RmatParams::new(512, 8_000, 5));
        for p in [1, 2, 7, 64] {
            let rows = CsrBuilder::new()
                .processors(p)
                .chunk_policy(ChunkPolicy::Rows)
                .build(&g);
            let edges = CsrBuilder::new()
                .processors(p)
                .chunk_policy(ChunkPolicy::Edges)
                .build(&g);
            assert_eq!(rows, edges, "p={p}");
        }
    }

    #[test]
    fn validate_catches_corruption() {
        let g = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let mut csr = CsrBuilder::new().build(&g);
        csr.offsets[1] = 99;
        assert!(csr.validate().is_err());
    }

    #[test]
    fn heap_bytes_accounting() {
        let g = EdgeList::new(2, vec![(0, 1)]);
        let csr = CsrBuilder::new().build(&g);
        // 3 offsets * 8 + 1 target * 4.
        assert_eq!(csr.heap_bytes(), 28);
    }
}
