//! On-disk serialization of the bit-packed CSR.
//!
//! A compressed graph store is only useful if the compressed form is what
//! travels: this module defines a small, versioned, little-endian binary
//! format so a graph packed once (Table II's fifth column) can be memory-
//! loaded and queried without ever materializing the edge list again.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   8 B   "PARCSR\0\1"           (includes format version)
//! mode    1 B   0 = raw, 1 = gap
//! n       8 B   num_nodes
//! m       8 B   num_edges
//! off_w   4 B   offset width (bits)    off_n  8 B  offset entry count
//! col_w   4 B   column width (bits)    col_n  8 B  column entry count
//! off_bits 8 B  offset bit length,     then ceil(off_bits/64) words
//! col_bits 8 B  column bit length,     then ceil(col_bits/64) words
//! ```

use std::io::{self, Read, Write};

use parcsr_bitpack::{BitBuf, PackedArray};

use crate::packed::{BitPackedCsr, PackedCsrMode};

/// Magic + format version.
const MAGIC: [u8; 8] = *b"PARCSR\0\x01";

/// Errors from deserializing a packed CSR.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a parcsr file, or an unsupported format version.
    BadMagic([u8; 8]),
    /// Structurally invalid header or payload.
    Corrupt(&'static str),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::BadMagic(m) => write!(f, "bad magic/version {m:02x?}"),
            ReadError::Corrupt(what) => write!(f, "corrupt packed CSR: {what}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl BitPackedCsr {
    /// Serializes into `w`. The format is deterministic: equal structures
    /// produce byte-identical output.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&[match self.mode() {
            PackedCsrMode::Raw => 0u8,
            PackedCsrMode::Gap => 1u8,
        }])?;
        w.write_all(&(self.num_nodes() as u64).to_le_bytes())?;
        w.write_all(&(self.num_edges() as u64).to_le_bytes())?;
        for arr in [self.offsets_array(), self.columns_array()] {
            w.write_all(&arr.width().to_le_bytes())?;
            w.write_all(&(arr.len() as u64).to_le_bytes())?;
        }
        for arr in [self.offsets_array(), self.columns_array()] {
            let buf = arr.bit_buf();
            w.write_all(&(buf.len() as u64).to_le_bytes())?;
            for &word in buf.words() {
                w.write_all(&word.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes from `r`, validating the header and structural
    /// invariants before constructing the value.
    pub fn read_from<R: Read>(r: &mut R) -> Result<BitPackedCsr, ReadError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(ReadError::BadMagic(magic));
        }
        let mode = match read_u8(r)? {
            0 => PackedCsrMode::Raw,
            1 => PackedCsrMode::Gap,
            _ => return Err(ReadError::Corrupt("unknown mode byte")),
        };
        let n = read_u64(r)? as usize;
        let m = read_u64(r)? as usize;
        let off_w = read_u32(r)?;
        let off_n = read_u64(r)? as usize;
        let col_w = read_u32(r)?;
        let col_n = read_u64(r)? as usize;
        if off_n != n + 1 {
            return Err(ReadError::Corrupt("offset count must be num_nodes + 1"));
        }
        if col_n != m {
            return Err(ReadError::Corrupt("column count must be num_edges"));
        }
        if !(1..=64).contains(&off_w) || !(1..=64).contains(&col_w) {
            return Err(ReadError::Corrupt("widths must be in 1..=64"));
        }
        let offsets = read_packed(r, off_w, off_n)?;
        let columns = read_packed(r, col_w, col_n)?;

        // Semantic validation: offsets must be a monotone ramp ending at m.
        let mut prev = 0u64;
        for (i, o) in offsets.iter().enumerate() {
            if i == 0 && o != 0 {
                return Err(ReadError::Corrupt("first offset must be 0"));
            }
            if o < prev {
                return Err(ReadError::Corrupt("offsets must be non-decreasing"));
            }
            prev = o;
        }
        if prev != m as u64 {
            return Err(ReadError::Corrupt("last offset must equal num_edges"));
        }

        Ok(BitPackedCsr::from_parts(n, m, mode, offsets, columns))
    }
}

fn read_packed<R: Read>(r: &mut R, width: u32, len: usize) -> Result<PackedArray, ReadError> {
    let bits = read_u64(r)? as usize;
    if bits != len * width as usize {
        return Err(ReadError::Corrupt("bit length does not match len * width"));
    }
    let words = bits.div_ceil(64);
    let mut buf = BitBuf::with_capacity(bits);
    let mut scratch = [0u8; 8];
    let mut remaining = bits;
    for _ in 0..words {
        r.read_exact(&mut scratch)?;
        let word = u64::from_le_bytes(scratch);
        let take = remaining.min(64) as u32;
        if take < 64 && (word >> take) != 0 {
            return Err(ReadError::Corrupt("padding bits must be zero"));
        }
        buf.push_bits(
            if take == 64 {
                word
            } else {
                word & ((1u64 << take) - 1)
            },
            take,
        );
        remaining -= take as usize;
    }
    Ok(PackedArray::from_raw_parts(buf, width, len))
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, ReadError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ReadError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ReadError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CsrBuilder;
    use parcsr_graph::gen::{rmat, RmatParams};
    use parcsr_graph::EdgeList;

    fn sample(mode: PackedCsrMode) -> BitPackedCsr {
        let g = rmat(RmatParams::new(512, 5_000, 3));
        let csr = CsrBuilder::new().build(&g);
        BitPackedCsr::from_csr(&csr, mode, 4)
    }

    #[test]
    fn roundtrip_both_modes() {
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = sample(mode);
            let mut bytes = Vec::new();
            packed.write_to(&mut bytes).unwrap();
            let back = BitPackedCsr::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(back, packed, "{}", mode.name());
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = sample(PackedCsrMode::Gap);
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        a.write_to(&mut b1).unwrap();
        a.write_to(&mut b2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn file_size_tracks_packed_size() {
        let packed = sample(PackedCsrMode::Gap);
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        // Header is ~70 bytes; payload within a word of packed_bytes.
        assert!(bytes.len() <= packed.packed_bytes() + 128);
    }

    #[test]
    fn empty_graph_roundtrip() {
        let csr = CsrBuilder::new().build(&EdgeList::new(0, vec![]));
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 1);
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        let back = BitPackedCsr::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, packed);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = BitPackedCsr::read_from(&mut &b"NOTPARCS rest"[..]).unwrap_err();
        assert!(matches!(err, ReadError::BadMagic(_)), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let packed = sample(PackedCsrMode::Raw);
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        for cut in [4usize, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = BitPackedCsr::read_from(&mut &bytes[..cut]).unwrap_err();
            assert!(matches!(err, ReadError::Io(_)), "cut={cut}: {err}");
        }
    }

    #[test]
    fn corrupt_offsets_rejected() {
        let packed = sample(PackedCsrMode::Raw);
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        // Flip bits inside the offsets payload (past the 57-byte header).
        bytes[80] ^= 0xFF;
        let result = BitPackedCsr::read_from(&mut bytes.as_slice());
        assert!(
            matches!(result, Err(ReadError::Corrupt(_))),
            "corruption must not produce a structure silently"
        );
    }

    #[test]
    fn queries_work_after_roundtrip() {
        let packed = sample(PackedCsrMode::Gap);
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        let back = BitPackedCsr::read_from(&mut bytes.as_slice()).unwrap();
        for u in (0..512u32).step_by(31) {
            assert_eq!(back.row(u), packed.row(u));
        }
    }
}
