//! Parallel querying (Section V, Algorithms 6–9).
//!
//! Three query shapes, all generic over any structure that can produce a
//! node's neighbor row ([`NeighborSource`] — implemented by both the plain
//! [`Csr`] and the compressed [`BitPackedCsr`], since the whole point of the
//! paper is querying the *compressed* structure directly):
//!
//! * [`neighbors_batch`] (Algorithm 6 / Algorithm 9 first block): an array of
//!   neighborhood queries split across processors; each processor extracts
//!   rows with `GetRowFromCSR` for its slice of the query array.
//! * [`edges_exist_batch`] (Algorithm 7 / second block): an array of edge
//!   queries split across processors; each processor fetches the source row
//!   and scans it for the target. [`edges_exist_batch_binary`] is the
//!   binary-search refinement the paper mentions.
//! * [`edge_exists_split`] (Algorithm 8 / third block): a *single* query
//!   whose neighbor row is itself split into `p` chunks searched in
//!   parallel — worthwhile only for hub nodes, which the benches show.
//!
//! The batch drivers weight each query by the degree of its subject node
//! (plus a constant per-query charge) and split the batch with the shared
//! [`ChunkPolicy`] planner, so a run of hub queries no longer lands in one
//! processor's chunk. [`ChunkPolicy::Rows`] restores the historical
//! query-count split.
//!
//! Every individual query is additionally accounted into the serving
//! telemetry slabs (`parcsr_obs::serve`): latency per [`QueryKind`] per
//! degree class, feeding the sliding-window qps/percentile view the
//! closed-loop load driver and the future query server report against an
//! SLO. Like the spans, this compiles to nothing without the obs feature
//! and allocates nothing on the query path when it is on.

use rayon::prelude::*;

use parcsr_obs::serve::QueryKind;

use parcsr_graph::NodeId;
use parcsr_scan::chunk_ranges;

use crate::build::Csr;
use crate::chunked::{run_chunked_plan, ChunkPolicy};
use crate::packed::{BitPackedCsr, PackedCsrMode};

/// Anything that can produce a node's sorted neighbor row. The query
/// algorithms are written against this so they run identically on the plain
/// and the bit-packed CSR.
pub trait NeighborSource: Sync {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Out-degree of `u`.
    fn degree(&self, u: NodeId) -> usize;

    /// Decodes `u`'s sorted neighbor row into `out` (cleared first).
    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>);

    /// Edge existence using the source's native access path (binary search
    /// on a plain CSR; packed-probe binary search or gap-stream scan on a
    /// packed one).
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// Streams `u`'s sorted neighbor row in order, calling `visit` on each
    /// neighbor until it returns `false` (early exit) or the row ends.
    ///
    /// The default implementation materializes the row through
    /// [`row_into`](Self::row_into) — correct for any source. Sources with a
    /// native streaming path (the bit-packed CSR's row cursor, the plain
    /// CSR's row slice) override this to visit neighbors without touching
    /// the heap; the batch query drivers below rely on that to stay
    /// allocation-free per query.
    fn for_each_neighbor_while(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        // LINT: alloc-ok(default fallback for sources without a native streaming path; both in-tree sources override it allocation-free)
        let mut row = Vec::with_capacity(self.degree(u));
        self.row_into(u, &mut row);
        for &v in &row {
            if !visit(v) {
                return;
            }
        }
    }

    /// Streams `u`'s full sorted neighbor row through `visit` (no early
    /// exit).
    fn for_each_neighbor(&self, u: NodeId, visit: &mut dyn FnMut(NodeId)) {
        self.for_each_neighbor_while(u, &mut |v| {
            visit(v);
            true
        });
    }
}

impl NeighborSource for Csr {
    fn num_nodes(&self) -> usize {
        Csr::num_nodes(self)
    }

    fn degree(&self, u: NodeId) -> usize {
        Csr::degree(self, u)
    }

    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.neighbors(u));
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Csr::has_edge(self, u, v)
    }

    fn for_each_neighbor_while(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        for &v in self.neighbors(u) {
            if !visit(v) {
                return;
            }
        }
    }
}

impl NeighborSource for BitPackedCsr {
    fn num_nodes(&self) -> usize {
        BitPackedCsr::num_nodes(self)
    }

    fn degree(&self, u: NodeId) -> usize {
        BitPackedCsr::degree(self, u)
    }

    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        BitPackedCsr::row_into(self, u, out)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        BitPackedCsr::has_edge(self, u, v)
    }

    fn for_each_neighbor_while(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        for v in self.row_iter(u) {
            if !visit(v) {
                return;
            }
        }
    }
}

/// Cumulative degrees of a query batch's subject nodes: `prefix[i+1] -
/// prefix[i]` is the degree of query `i`, which is exactly the prefix-sum
/// shape [`ChunkPolicy::plan`] weights by (the planner adds the constant
/// per-query charge itself).
fn degree_prefix<S: NeighborSource>(
    source: &S,
    nodes: impl Iterator<Item = NodeId>,
    len: usize,
) -> Vec<u64> {
    // LINT: alloc-ok(one exactly-sized planner array per batch call, not per query)
    let mut prefix = Vec::with_capacity(len + 1);
    let mut cum = 0u64;
    prefix.push(cum);
    for u in nodes {
        cum += source.degree(u) as u64;
        prefix.push(cum);
    }
    prefix
}

/// Algorithm 6: answers an array of neighborhood queries, the query array
/// split into `processors` chunks answered concurrently. Result `i` is the
/// sorted neighbor row of `queries[i]`. Splits with the default
/// [`ChunkPolicy`] (edge-weighted); see [`neighbors_batch_with_chunking`].
pub fn neighbors_batch<S: NeighborSource>(
    source: &S,
    queries: &[NodeId],
    processors: usize,
) -> Vec<Vec<NodeId>> {
    neighbors_batch_with_chunking(source, queries, processors, ChunkPolicy::default())
}

/// [`neighbors_batch`] with an explicit chunking policy: queries are
/// weighted by `degree + 1` under [`ChunkPolicy::Edges`] so hub-heavy
/// batches spread across processors, or split by query count under
/// [`ChunkPolicy::Rows`]. The result is identical either way.
pub fn neighbors_batch_with_chunking<S: NeighborSource>(
    source: &S,
    queries: &[NodeId],
    processors: usize,
    policy: ChunkPolicy,
) -> Vec<Vec<NodeId>> {
    let prefix = degree_prefix(source, queries.iter().copied(), queries.len());
    let _span = parcsr_obs::enter_with_args(
        "query.neighbors",
        parcsr_obs::SpanArgs::new().edges(*prefix.last().unwrap_or(&0)),
    );
    let plan = policy.plan(&prefix, processors);
    let chunks: Vec<Vec<Vec<NodeId>>> = run_chunked_plan("query.neighbors.chunk", plan, |chunk| {
        // LINT: alloc-ok(one exactly-sized result container per chunk; the rows it holds are the API output)
        let mut out = Vec::with_capacity(chunk.range.len());
        for &u in &queries[chunk.range.clone()] {
            let deg = source.degree(u);
            let mut q = parcsr_obs::serve::query_start();
            q.source(u as u64);
            // The result row is the one unavoidable allocation (it is
            // the output); sized exactly from the packed degree so the
            // streaming fill never reallocates.
            // LINT: alloc-ok(the result row is the output, sized exactly from the packed degree so the streaming fill never reallocates)
            let mut row = Vec::with_capacity(deg);
            source.for_each_neighbor(u, &mut |v| row.push(v));
            q.finish(QueryKind::Neighbors, || deg);
            out.push(row);
        }
        out
    });
    // LINT: alloc-ok(flattening chunk outputs into the single result vector the API returns)
    chunks.into_iter().flatten().collect()
}

/// Algorithm 7: answers an array of edge-existence queries, the query array
/// split into `processors` chunks. Each processor streams the source row
/// through [`NeighborSource::for_each_neighbor_while`] and exits at the
/// first neighbor ≥ the target (the paper's linear scan with early exit on
/// the sorted row) — no row materialization, no per-query allocation.
pub fn edges_exist_batch<S: NeighborSource>(
    source: &S,
    queries: &[(NodeId, NodeId)],
    processors: usize,
) -> Vec<bool> {
    edges_exist_batch_with_chunking(source, queries, processors, ChunkPolicy::default())
}

/// [`edges_exist_batch`] with an explicit chunking policy: queries are
/// weighted by the source node's `degree + 1` under [`ChunkPolicy::Edges`]
/// (a linear scan's cost is the row length), or split by query count under
/// [`ChunkPolicy::Rows`]. The result is identical either way.
pub fn edges_exist_batch_with_chunking<S: NeighborSource>(
    source: &S,
    queries: &[(NodeId, NodeId)],
    processors: usize,
    policy: ChunkPolicy,
) -> Vec<bool> {
    batch_edge_queries(
        source,
        queries,
        processors,
        policy,
        QueryKind::EdgeScan,
        |source, u, v| {
            let mut found = false;
            source.for_each_neighbor_while(u, &mut |w| {
                if w >= v {
                    found = w == v;
                    false
                } else {
                    true
                }
            });
            found
        },
    )
}

/// The binary-search refinement of Algorithm 7 ("this could also be extended
/// to a binary search to speed up the process"): each query goes through the
/// source's native [`NeighborSource::has_edge`] path — binary search on a
/// plain CSR row slice, O(log deg) direct bit probes on a raw-mode packed
/// CSR, streaming early-exit scan on a gap-mode one (where random access
/// inside a row does not exist). No per-query allocation in any of those.
pub fn edges_exist_batch_binary<S: NeighborSource>(
    source: &S,
    queries: &[(NodeId, NodeId)],
    processors: usize,
) -> Vec<bool> {
    edges_exist_batch_binary_with_chunking(source, queries, processors, ChunkPolicy::default())
}

/// [`edges_exist_batch_binary`] with an explicit chunking policy. The
/// binary-search probe costs `O(log deg)` rather than `O(deg)`, but on a
/// gap-coded row the native path is still a stream scan, so the same
/// `degree + 1` weighting applies.
pub fn edges_exist_batch_binary_with_chunking<S: NeighborSource>(
    source: &S,
    queries: &[(NodeId, NodeId)],
    processors: usize,
    policy: ChunkPolicy,
) -> Vec<bool> {
    batch_edge_queries(
        source,
        queries,
        processors,
        policy,
        QueryKind::EdgeBinary,
        |source, u, v| source.has_edge(u, v),
    )
}

fn batch_edge_queries<S: NeighborSource>(
    source: &S,
    queries: &[(NodeId, NodeId)],
    processors: usize,
    policy: ChunkPolicy,
    kind: QueryKind,
    probe: impl Fn(&S, NodeId, NodeId) -> bool + Sync,
) -> Vec<bool> {
    let prefix = degree_prefix(source, queries.iter().map(|&(u, _)| u), queries.len());
    let _span = parcsr_obs::enter_with_args(
        "query.edges",
        parcsr_obs::SpanArgs::new().edges(*prefix.last().unwrap_or(&0)),
    );
    let plan = policy.plan(&prefix, processors);
    let chunks: Vec<Vec<bool>> = run_chunked_plan("query.edges.chunk", plan, |chunk| {
        queries[chunk.range.clone()]
            .iter()
            .map(|&(u, v)| {
                let mut q = parcsr_obs::serve::query_start();
                q.source(u as u64);
                let hit = probe(source, u, v);
                q.finish(kind, || source.degree(u));
                hit
            })
            // LINT: alloc-ok(one exactly-sized bool vector per chunk; flattened below into the API result)
            .collect()
    });
    // LINT: alloc-ok(flattening chunk outputs into the single result vector the API returns)
    chunks.into_iter().flatten().collect()
}

/// Algorithm 8 (+ Algorithm 9 third block): single-edge existence with the
/// neighbor list split across `processors`. The row of `u` is fetched once,
/// divided into `p` chunks, and every chunk is scanned concurrently; any
/// processor finding `v` reports presence.
pub fn edge_exists_split<S: NeighborSource>(
    source: &S,
    u: NodeId,
    v: NodeId,
    processors: usize,
) -> bool {
    // Splitting one row across workers needs random access into it, so this
    // is the one query where materialization is unavoidable on a streaming
    // source; the buffer is sized exactly once from the degree.
    let mut q = parcsr_obs::serve::query_start();
    q.source(u as u64);
    // LINT: alloc-ok(row must be materialized for random-access splitting; sized exactly once from the degree)
    let mut row = Vec::with_capacity(source.degree(u));
    source.row_into(u, &mut row);
    let ranges = chunk_ranges(row.len(), processors);
    let found = ranges.par_iter().any(|r| row[r.clone()].contains(&v));
    q.finish(QueryKind::SplitSearch, || row.len());
    found
}

/// The binary-search variant of the single-edge query: each processor binary
/// searches its chunk of the sorted row.
pub fn edge_exists_split_binary<S: NeighborSource>(
    source: &S,
    u: NodeId,
    v: NodeId,
    processors: usize,
) -> bool {
    let mut q = parcsr_obs::serve::query_start();
    q.source(u as u64);
    // LINT: alloc-ok(row must be materialized for random-access splitting; sized exactly once from the degree)
    let mut row = Vec::with_capacity(source.degree(u));
    source.row_into(u, &mut row);
    let ranges = chunk_ranges(row.len(), processors);
    let found = ranges
        .par_iter()
        .any(|r| row[r.clone()].binary_search(&v).is_ok());
    q.finish(QueryKind::SplitSearch, || row.len());
    found
}

/// Convenience: run the three parallel query algorithms of Algorithm 9 in
/// one call against a packed CSR built on the fly. Mostly useful in examples
/// and smoke tests.
pub fn query_compressed(
    csr: &Csr,
    neighbor_queries: &[NodeId],
    edge_queries: &[(NodeId, NodeId)],
    single: Option<(NodeId, NodeId)>,
    processors: usize,
) -> (Vec<Vec<NodeId>>, Vec<bool>, Option<bool>) {
    let packed = BitPackedCsr::from_csr(csr, PackedCsrMode::Gap, processors);
    (
        neighbors_batch(&packed, neighbor_queries, processors),
        edges_exist_batch(&packed, edge_queries, processors),
        single.map(|(u, v)| edge_exists_split(&packed, u, v, processors)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CsrBuilder;
    use parcsr_graph::gen::{rmat, RmatParams};
    use parcsr_graph::EdgeList;

    fn fixtures() -> (Csr, BitPackedCsr) {
        let g = rmat(RmatParams::new(256, 4_000, 77));
        let csr = CsrBuilder::new().build(&g);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        (csr, packed)
    }

    #[test]
    fn neighbors_batch_matches_direct_access() {
        let (csr, packed) = fixtures();
        let queries: Vec<NodeId> = (0..256).step_by(3).collect();
        for p in [1, 2, 8] {
            let on_csr = neighbors_batch(&csr, &queries, p);
            let on_packed = neighbors_batch(&packed, &queries, p);
            for (i, &u) in queries.iter().enumerate() {
                assert_eq!(on_csr[i], csr.neighbors(u), "csr p={p} u={u}");
                assert_eq!(on_packed[i], csr.neighbors(u), "packed p={p} u={u}");
            }
        }
    }

    #[test]
    fn neighbors_batch_preserves_query_order_with_duplicates() {
        let (csr, _) = fixtures();
        let queries = vec![5, 5, 0, 200, 5];
        let r = neighbors_batch(&csr, &queries, 3);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], r[1]);
        assert_eq!(r[0], r[4]);
        assert_eq!(r[3], csr.neighbors(200));
    }

    #[test]
    fn edges_exist_batch_matches_has_edge() {
        let (csr, packed) = fixtures();
        let queries: Vec<(NodeId, NodeId)> = (0..256u32)
            .flat_map(|u| [(u, (u * 7) % 256), (u, (u * 13 + 1) % 256)])
            .collect();
        let want: Vec<bool> = queries.iter().map(|&(u, v)| csr.has_edge(u, v)).collect();
        for p in [1, 3, 16] {
            assert_eq!(edges_exist_batch(&csr, &queries, p), want, "csr p={p}");
            assert_eq!(
                edges_exist_batch(&packed, &queries, p),
                want,
                "packed p={p}"
            );
            assert_eq!(
                edges_exist_batch_binary(&packed, &queries, p),
                want,
                "binary p={p}"
            );
        }
    }

    #[test]
    fn single_edge_split_agrees() {
        let (csr, packed) = fixtures();
        for u in (0..256u32).step_by(17) {
            for v in (0..256u32).step_by(23) {
                let want = csr.has_edge(u, v);
                for p in [1, 2, 4] {
                    assert_eq!(edge_exists_split(&packed, u, v, p), want, "({u},{v}) p={p}");
                    assert_eq!(
                        edge_exists_split_binary(&packed, u, v, p),
                        want,
                        "bin ({u},{v}) p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_query_arrays() {
        let (csr, _) = fixtures();
        assert!(neighbors_batch(&csr, &[], 4).is_empty());
        assert!(edges_exist_batch(&csr, &[], 4).is_empty());
    }

    #[test]
    fn queries_on_isolated_nodes() {
        let g = EdgeList::new(10, vec![(0, 1)]);
        let csr = CsrBuilder::new().build(&g);
        let r = neighbors_batch(&csr, &[9, 0], 2);
        assert!(r[0].is_empty());
        assert_eq!(r[1], [1]);
        assert!(!edge_exists_split(&csr, 9, 0, 4));
    }

    #[test]
    fn split_search_on_hub_row() {
        // A hub with a long row: the split search must find targets in every
        // chunk position.
        let edges: Vec<(NodeId, NodeId)> = (0..1000).map(|v| (0, v)).collect();
        let g = EdgeList::new(1001, edges);
        let csr = CsrBuilder::new().build(&g);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        for v in [0u32, 1, 499, 500, 998, 999] {
            assert!(edge_exists_split(&packed, 0, v, 8), "v={v}");
        }
        assert!(!edge_exists_split(&packed, 0, 1000, 8));
    }

    #[test]
    fn query_compressed_smoke() {
        let (csr, _) = fixtures();
        let (hoods, exists, single) =
            query_compressed(&csr, &[1, 2], &[(1, 2), (2, 1)], Some((3, 4)), 4);
        assert_eq!(hoods.len(), 2);
        assert_eq!(exists.len(), 2);
        assert_eq!(single, Some(csr.has_edge(3, 4)));
        assert_eq!(hoods[0], csr.neighbors(1));
    }

    #[test]
    fn chunk_policy_does_not_change_query_results() {
        let (csr, packed) = fixtures();
        // Front-load hub queries so the weighted plan actually differs from
        // the count split.
        let mut queries: Vec<NodeId> = (0..256).collect();
        queries.sort_by_key(|&u| std::cmp::Reverse(csr.degree(u)));
        let edge_queries: Vec<(NodeId, NodeId)> =
            queries.iter().map(|&u| (u, (u * 31) % 256)).collect();
        for p in [1, 2, 7, 64] {
            let rows = neighbors_batch_with_chunking(&packed, &queries, p, ChunkPolicy::Rows);
            let edges = neighbors_batch_with_chunking(&packed, &queries, p, ChunkPolicy::Edges);
            assert_eq!(rows, edges, "neighbors p={p}");
            let rows =
                edges_exist_batch_with_chunking(&packed, &edge_queries, p, ChunkPolicy::Rows);
            let edges =
                edges_exist_batch_with_chunking(&packed, &edge_queries, p, ChunkPolicy::Edges);
            assert_eq!(rows, edges, "edges p={p}");
            let rows = edges_exist_batch_binary_with_chunking(
                &packed,
                &edge_queries,
                p,
                ChunkPolicy::Rows,
            );
            let edges = edges_exist_batch_binary_with_chunking(
                &packed,
                &edge_queries,
                p,
                ChunkPolicy::Edges,
            );
            assert_eq!(rows, edges, "binary p={p}");
        }
    }

    #[test]
    fn results_independent_of_processors() {
        let (_, packed) = fixtures();
        let queries: Vec<NodeId> = (0..256).collect();
        let base = neighbors_batch(&packed, &queries, 1);
        for p in [2, 5, 31, 256] {
            assert_eq!(neighbors_batch(&packed, &queries, p), base, "p={p}");
        }
    }
}
