//! `parcsr-check`: a loom-lite deterministic schedule explorer with a
//! vector-clock happens-before race detector, sized for the chunk-parallel
//! kernels in this workspace.
//!
//! The paper's algorithms are correct only because of delicate chunk-boundary
//! handling: Algorithm 3's `globalTempDegree` side array exists precisely so
//! two processors whose chunks share a node never write the same degree slot,
//! and the TCSR build merges boundary frames for the same reason. This crate
//! makes those disjointness arguments *checkable*:
//!
//! * A model is a closure run under [`model`] / [`check`]. Inside it,
//!   [`spawn`]/[`JoinHandle::join`] create logical threads (each backed by a
//!   real OS thread, but only one ever runs at a time), and [`Slice`]/[`Cell`]
//!   provide instrumented shared memory.
//! * Every instrumented operation is a *schedule point*: the scheduler may
//!   switch to any runnable thread there. The driver explores **every**
//!   distinct interleaving at that granularity, depth-first, replaying a
//!   recorded decision prefix and branching on the last unexplored choice.
//! * Each access is checked against the location's history with vector
//!   clocks (fork and join are the happens-before edges). Two accesses to
//!   the same location, at least one a write, with no happens-before edge
//!   between them, are reported as a [`Race`] — in *whatever* interleaving
//!   the explorer happens to be running, which is why even one execution of
//!   a racy model is typically enough to catch it.
//!
//! ```
//! use parcsr_check as check;
//!
//! // Two threads writing disjoint slots: race-free, all schedules pass.
//! let report = check::model(|| {
//!     let s = check::Slice::new(vec![0u32; 2]).named("out");
//!     let a = { let s = s.clone(); check::spawn(move || s.write(0, 1)) };
//!     let b = { let s = s.clone(); check::spawn(move || s.write(1, 2)) };
//!     a.join();
//!     b.join();
//!     assert_eq!(s.snapshot(), [1, 2]);
//! });
//! assert!(report.executions >= 2);
//!
//! // Two threads writing the *same* slot: flagged as a write-write race.
//! let err = check::check(|| {
//!     let s = check::Slice::new(vec![0u32; 1]).named("shared");
//!     let a = { let s = s.clone(); check::spawn(move || s.write(0, 1)) };
//!     let b = { let s = s.clone(); check::spawn(move || s.write(0, 2)) };
//!     a.join();
//!     b.join();
//! });
//! assert!(err.is_err());
//! ```
//!
//! Scope and deliberate limits:
//!
//! * Fork/join is the only synchronization primitive — exactly what the
//!   paper's `sync()` barriers compile to in the rayon-phase kernels. Locks
//!   and condvars (the lockstep scan) are out of scope.
//! * Relaxed atomic stores in shipped kernels are modeled as **plain**
//!   accesses on purpose: the kernels' correctness claim is
//!   disjointness-by-construction, and that is the claim being verified.
//! * A model body that panics mid-run (a failed assertion) propagates, but
//!   any still-unjoined logical threads leak their parked OS threads; write
//!   assertions after all joins.

mod sched;
mod shared;

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

pub use sched::Race;
pub use shared::{Cell, Slice};

use sched::Exec;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

/// The current `(execution, logical thread id)`; panics outside a model.
fn current() -> (Arc<Exec>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("parcsr-check primitives must be used inside parcsr_check::model / ::check")
    })
}

/// The current execution; panics outside a model.
fn current_exec() -> Arc<Exec> {
    current().0
}

/// Outcome of a completed (race-free) exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub executions: usize,
    /// One entry per execution that produced a non-empty [`trace`] log:
    /// the ordered `(thread id, tag)` pairs observed under that schedule.
    pub traces: Vec<Vec<(usize, u32)>>,
}

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Abort (panic) if the schedule space exceeds this many executions.
    pub max_executions: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_executions: 200_000,
        }
    }
}

/// Handle to a logical thread created by [`spawn`].
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    exec: Arc<Exec>,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    os: std::thread::JoinHandle<()>,
}

impl<T> JoinHandle<T> {
    /// The logical thread id (0 is the model body itself).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Blocks (scheduler-visibly) until the thread finishes and returns its
    /// value, establishing the join happens-before edge. Panics from the
    /// thread propagate.
    pub fn join(self) -> T {
        let (exec, me) = current();
        assert!(
            Arc::ptr_eq(&exec, &self.exec),
            "parcsr-check: join from a different execution"
        );
        exec.join_logical(me, self.tid);
        self.os.join().expect("parcsr-check worker thread");
        match self.result.lock().unwrap().take() {
            Some(Ok(v)) => v,
            Some(Err(panic)) => resume_unwind(panic),
            None => unreachable!("joined thread stored no result"),
        }
    }
}

/// Spawns a logical thread inside a model. The closure runs under scheduler
/// control; every instrumented access in it is an interleaving point.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = current();
    let tid = exec.spawn_register(me);
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let worker_exec = Arc::clone(&exec);
    let worker_result = Arc::clone(&result);
    let os = std::thread::Builder::new()
        .name(format!("parcsr-check-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&worker_exec), tid)));
            worker_exec.wait_first_grant(tid);
            let r = catch_unwind(AssertUnwindSafe(f));
            *worker_result.lock().unwrap() = Some(r);
            worker_exec.finish(tid);
        })
        .expect("spawn parcsr-check worker");
    JoinHandle {
        tid,
        exec,
        result,
        os,
    }
}

/// A pure schedule point: lets the scheduler switch threads here without
/// touching shared memory.
pub fn yield_point() {
    let (exec, me) = current();
    exec.schedule_point(me);
}

/// A schedule point that also appends `(thread id, tag)` to the execution's
/// trace log, collected per execution into [`Report::traces`]. Used by the
/// exhaustiveness tests to prove every interleaving of the trace points is
/// visited.
pub fn trace(tag: u32) {
    let (exec, me) = current();
    exec.schedule_point(me);
    exec.push_trace(me, tag);
}

/// Explores every schedule of `body`; returns the report, or the first
/// detected race (exploration stops at the first racy schedule).
pub fn check<F: Fn()>(body: F) -> Result<Report, Race> {
    check_with(Options::default(), body)
}

/// [`check`] with explicit limits.
pub fn check_with<F: Fn()>(opts: Options, body: F) -> Result<Report, Race> {
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    let mut traces = Vec::new();
    loop {
        executions += 1;
        assert!(
            executions <= opts.max_executions,
            "parcsr-check: schedule space exceeds {} executions — shrink the model",
            opts.max_executions
        );
        let exec = Arc::new(Exec::new(prefix.clone()));
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
        let run = catch_unwind(AssertUnwindSafe(&body));
        CURRENT.with(|c| *c.borrow_mut() = None);
        if let Err(panic) = run {
            resume_unwind(panic);
        }
        exec.assert_all_finished();
        let s = exec.sched.lock().unwrap();
        if let Some(race) = &s.race {
            return Err(race.clone());
        }
        if !s.trace.is_empty() {
            traces.push(s.trace.clone());
        }
        // Depth-first backtrack: advance the deepest pick that still has an
        // unexplored alternative; drop everything after it.
        let mut points = s.points.clone();
        drop(s);
        let next = loop {
            match points.pop() {
                None => break None,
                Some(p) if p.pick + 1 < p.n_enabled => {
                    let mut pre: Vec<usize> = points.iter().map(|q| q.pick).collect();
                    pre.push(p.pick + 1);
                    break Some(pre);
                }
                Some(_) => {}
            }
        };
        match next {
            Some(pre) => prefix = pre,
            None => {
                return Ok(Report { executions, traces });
            }
        }
    }
}

/// Explores every schedule of `body`, panicking on the first detected race.
pub fn model<F: Fn()>(body: F) -> Report {
    match check(body) {
        Ok(report) => report,
        Err(race) => panic!("parcsr-check: race detected: {race}"),
    }
}
