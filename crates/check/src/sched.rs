//! The deterministic scheduler: one OS thread per logical thread, exactly one
//! granted the right to run at any moment, with every scheduling decision
//! recorded so the driver can replay a prefix and branch to the next
//! unexplored interleaving (depth-first over the schedule tree).
//!
//! Scheduling decisions ("picks") happen at *schedule points*: immediately
//! before every instrumented shared-memory access, at [`Exec::finish`] when a
//! logical thread completes, and when a joiner blocks on an unfinished
//! target. Code between two schedule points is invisible to other threads
//! (it touches no instrumented shared state), so interleaving at this
//! granularity is exhaustive over everything the race detector can observe.

use std::sync::{Condvar, Mutex};

/// Sentinel for "no thread granted" (execution complete).
const NO_THREAD: usize = usize::MAX;

/// A vector clock: `get(t)` is the number of events of logical thread `t`
/// known to happen-before the clock's owner.
#[derive(Debug, Clone, Default)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// The component for thread `tid` (0 if never observed).
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component by one event.
    pub(crate) fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum (the happens-before join).
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }
}

/// A detected race: two accesses to the same location with no
/// happens-before edge between them.
#[derive(Debug, Clone)]
pub struct Race {
    /// Name of the [`Slice`](crate::Slice)/[`Cell`](crate::Cell) involved.
    pub location: String,
    /// Index within the slice (0 for cells).
    pub index: usize,
    /// Conflict shape: `"write-write"`, `"read-write"` or `"write-read"`.
    pub kind: &'static str,
    /// Logical thread ids of the (earlier, current) access.
    pub threads: (usize, usize),
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race on `{}`[{}] between logical threads {} and {}",
            self.kind, self.location, self.index, self.threads.0, self.threads.1
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(usize),
    Finished,
}

/// One recorded scheduling decision: the index picked out of the sorted
/// enabled set, and how many threads were enabled (the branching factor).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Point {
    pub(crate) pick: usize,
    pub(crate) n_enabled: usize,
}

#[derive(Debug, Default)]
pub(crate) struct Sched {
    granted: usize,
    status: Vec<Status>,
    clocks: Vec<VClock>,
    /// Picks to replay from the previous executions (DFS prefix).
    prefix: Vec<usize>,
    cursor: usize,
    /// Every pick taken this execution (replayed + fresh).
    pub(crate) points: Vec<Point>,
    pub(crate) race: Option<Race>,
    /// Ordered `(tid, tag)` log from [`crate::trace`] calls.
    pub(crate) trace: Vec<(usize, u32)>,
}

/// Shared state of one execution (one complete run under one schedule).
#[derive(Debug)]
pub(crate) struct Exec {
    pub(crate) sched: Mutex<Sched>,
    cv: Condvar,
}

impl Exec {
    /// Creates an execution that will replay `prefix` then extend it with
    /// first-enabled picks.
    pub(crate) fn new(prefix: Vec<usize>) -> Self {
        let mut clock0 = VClock::default();
        clock0.bump(0);
        Exec {
            sched: Mutex::new(Sched {
                granted: 0,
                status: vec![Status::Runnable],
                clocks: vec![clock0],
                prefix,
                ..Sched::default()
            }),
            cv: Condvar::new(),
        }
    }

    /// Sorted list of runnable thread ids.
    fn enabled(s: &Sched) -> Vec<usize> {
        s.status
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == Status::Runnable)
            .map(|(t, _)| t)
            .collect()
    }

    /// Takes the next scheduling decision: replays the DFS prefix, then
    /// defaults to the lowest-id enabled thread. Records the pick.
    fn pick_next(&self, s: &mut Sched) {
        let enabled = Self::enabled(s);
        if enabled.is_empty() {
            let all_done = s.status.iter().all(|st| *st == Status::Finished);
            assert!(
                all_done,
                "parcsr-check: deadlock — every unfinished thread is blocked \
                 (a join cycle, or a thread was never granted); statuses: {:?}",
                s.status
            );
            s.granted = NO_THREAD;
            return;
        }
        let pick = if s.cursor < s.prefix.len() {
            s.prefix[s.cursor]
        } else {
            0
        };
        s.cursor += 1;
        debug_assert!(pick < enabled.len(), "replayed pick out of range");
        s.points.push(Point {
            pick,
            n_enabled: enabled.len(),
        });
        s.granted = enabled[pick];
    }

    /// Yields at a schedule point: offers the scheduler a choice among all
    /// enabled threads and blocks until this thread is granted again.
    pub(crate) fn schedule_point(&self, me: usize) {
        let mut s = self.sched.lock().unwrap();
        debug_assert_eq!(s.granted, me, "schedule point from a non-granted thread");
        self.pick_next(&mut s);
        if s.granted != me {
            self.cv.notify_all();
            while s.granted != me {
                s = self.cv.wait(s).unwrap();
            }
        }
    }

    /// Registers a child thread spawned by `parent`; returns its id.
    /// Establishes the fork happens-before edge.
    pub(crate) fn spawn_register(&self, parent: usize) -> usize {
        let mut s = self.sched.lock().unwrap();
        debug_assert_eq!(s.granted, parent);
        let tid = s.status.len();
        s.status.push(Status::Runnable);
        let mut child = s.clocks[parent].clone();
        child.bump(tid);
        s.clocks.push(child);
        s.clocks[parent].bump(parent);
        tid
    }

    /// Gate a freshly spawned OS thread until the scheduler first grants it.
    pub(crate) fn wait_first_grant(&self, tid: usize) {
        let mut s = self.sched.lock().unwrap();
        while s.granted != tid {
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Marks `me` finished, wakes any joiner blocked on it, and hands the
    /// turn to the next scheduled thread.
    pub(crate) fn finish(&self, me: usize) {
        let mut s = self.sched.lock().unwrap();
        debug_assert_eq!(s.granted, me);
        s.status[me] = Status::Finished;
        for st in s.status.iter_mut() {
            if *st == Status::Blocked(me) {
                *st = Status::Runnable;
            }
        }
        self.pick_next(&mut s);
        self.cv.notify_all();
    }

    /// Joins logical thread `target` from `me`: blocks (yielding the turn)
    /// until `target` finishes, then absorbs its clock (the join edge).
    pub(crate) fn join_logical(&self, me: usize, target: usize) {
        let mut s = self.sched.lock().unwrap();
        debug_assert_eq!(s.granted, me);
        if s.status[target] != Status::Finished {
            s.status[me] = Status::Blocked(target);
            self.pick_next(&mut s);
            self.cv.notify_all();
            while s.granted != me {
                s = self.cv.wait(s).unwrap();
            }
            debug_assert_eq!(s.status[target], Status::Finished);
        }
        let tc = s.clocks[target].clone();
        s.clocks[me].join(&tc);
        s.clocks[me].bump(me);
    }

    /// Advances `me`'s clock for one shared access and returns a snapshot.
    pub(crate) fn access_clock(&self, me: usize) -> VClock {
        let mut s = self.sched.lock().unwrap();
        s.clocks[me].bump(me);
        s.clocks[me].clone()
    }

    /// Records the first detected race (later ones are dropped — the first
    /// is already a complete counterexample).
    pub(crate) fn set_race(&self, race: Race) {
        let mut s = self.sched.lock().unwrap();
        if s.race.is_none() {
            s.race = Some(race);
        }
    }

    /// Appends to the execution's trace log.
    pub(crate) fn push_trace(&self, me: usize, tag: u32) {
        self.sched.lock().unwrap().trace.push((me, tag));
    }

    /// Panics unless every spawned thread has finished (a model must join
    /// everything it spawns before returning).
    pub(crate) fn assert_all_finished(&self) {
        let s = self.sched.lock().unwrap();
        let leaked = s.status[1..]
            .iter()
            .filter(|st| **st != Status::Finished)
            .count();
        assert!(
            leaked == 0,
            "parcsr-check: model body returned with {leaked} spawned thread(s) not joined"
        );
    }
}
