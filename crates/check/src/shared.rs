//! Instrumented shared memory: every access yields to the scheduler first,
//! then runs a FastTrack-style happens-before check against the location's
//! recorded access history.

use std::sync::{Arc, Mutex};

use crate::sched::{Exec, Race, VClock};
use crate::{current, current_exec};

#[derive(Debug, Default, Clone)]
struct LocMeta {
    /// Last write: `(thread, epoch)` — epoch is the writer's own clock
    /// component at the time of the write.
    write: Option<(usize, u32)>,
    /// Reads since the last write, at most one entry per thread.
    reads: Vec<(usize, u32)>,
}

impl LocMeta {
    /// Conflict check + history update for a read by `me` at clock `vc`.
    fn on_read(&mut self, me: usize, vc: &VClock) -> Option<(&'static str, usize)> {
        let conflict = match self.write {
            Some((wt, we)) if wt != me && vc.get(wt) < we => Some(("write-read", wt)),
            _ => None,
        };
        match self.reads.iter_mut().find(|(rt, _)| *rt == me) {
            Some(entry) => entry.1 = vc.get(me),
            None => self.reads.push((me, vc.get(me))),
        }
        conflict
    }

    /// Conflict check + history update for a write by `me` at clock `vc`.
    fn on_write(&mut self, me: usize, vc: &VClock) -> Option<(&'static str, usize)> {
        let mut conflict = match self.write {
            Some((wt, we)) if wt != me && vc.get(wt) < we => Some(("write-write", wt)),
            _ => None,
        };
        if conflict.is_none() {
            if let Some(&(rt, _)) = self
                .reads
                .iter()
                .find(|&&(rt, re)| rt != me && vc.get(rt) < re)
            {
                conflict = Some(("read-write", rt));
            }
        }
        self.write = Some((me, vc.get(me)));
        self.reads.clear();
        conflict
    }
}

#[derive(Debug)]
struct SliceInner<T> {
    data: Vec<T>,
    meta: Vec<LocMeta>,
    name: String,
}

/// A shared array of `T` whose element accesses are schedule points and are
/// checked for happens-before races. Clone handles to move into
/// [`crate::spawn`]ed closures; all clones view the same storage.
///
/// Plain `read`/`write` model *non-atomic* memory operations. This is
/// deliberate even for code that ships with relaxed atomics: the kernels'
/// correctness argument is disjointness-by-construction, and the checker
/// verifies exactly that claim.
#[derive(Debug)]
pub struct Slice<T> {
    exec: Arc<Exec>,
    inner: Arc<Mutex<SliceInner<T>>>,
}

impl<T> Clone for Slice<T> {
    fn clone(&self) -> Self {
        Slice {
            exec: Arc::clone(&self.exec),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone> Slice<T> {
    /// Creates a shared slice from `init`. Must be called inside a model.
    pub fn new(init: Vec<T>) -> Self {
        let exec = current_exec();
        let meta = vec![LocMeta::default(); init.len()];
        Slice {
            exec,
            inner: Arc::new(Mutex::new(SliceInner {
                data: init,
                meta,
                name: "slice".to_string(),
            })),
        }
    }

    /// Names the slice for race reports.
    pub fn named(self, name: &str) -> Self {
        self.inner.lock().unwrap().name = name.to_string();
        self
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().data.len()
    }

    /// True if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Yields to the scheduler and returns `(me, access clock)`.
    fn access(&self) -> (usize, VClock) {
        let (exec, me) = current();
        assert!(
            Arc::ptr_eq(&exec, &self.exec),
            "parcsr-check: slice used outside the execution that created it"
        );
        self.exec.schedule_point(me);
        let vc = self.exec.access_clock(me);
        (me, vc)
    }

    fn flag(&self, name: String, i: usize, me: usize, conflict: (&'static str, usize)) {
        self.exec.set_race(Race {
            location: name,
            index: i,
            kind: conflict.0,
            threads: (conflict.1, me),
        });
    }

    /// Checked read of element `i`.
    pub fn read(&self, i: usize) -> T {
        let (me, vc) = self.access();
        let mut inner = self.inner.lock().unwrap();
        if let Some(c) = inner.meta[i].on_read(me, &vc) {
            let name = inner.name.clone();
            self.flag(name, i, me, c);
        }
        inner.data[i].clone()
    }

    /// Checked write of element `i`.
    pub fn write(&self, i: usize, value: T) {
        let (me, vc) = self.access();
        let mut inner = self.inner.lock().unwrap();
        if let Some(c) = inner.meta[i].on_write(me, &vc) {
            let name = inner.name.clone();
            self.flag(name, i, me, c);
        }
        inner.data[i] = value;
    }

    /// One schedule point covering a whole mutable range: every index in `r`
    /// is conflict-checked as a write (which also conflicts with foreign
    /// reads), then `f` runs on the range. Use for chunk-local phases (a
    /// per-chunk scan) where the interesting interleavings are *between*
    /// chunks, not within one.
    pub fn with_range<R>(&self, r: std::ops::Range<usize>, f: impl FnOnce(&mut [T]) -> R) -> R {
        let (me, vc) = self.access();
        let mut inner = self.inner.lock().unwrap();
        for i in r.clone() {
            if let Some(c) = inner.meta[i].on_write(me, &vc) {
                let name = inner.name.clone();
                self.flag(name, i, me, c);
                break;
            }
        }
        f(&mut inner.data[r])
    }

    /// One schedule point covering a read of a whole range.
    pub fn read_range(&self, r: std::ops::Range<usize>) -> Vec<T> {
        let (me, vc) = self.access();
        let mut inner = self.inner.lock().unwrap();
        for i in r.clone() {
            if let Some(c) = inner.meta[i].on_read(me, &vc) {
                let name = inner.name.clone();
                self.flag(name, i, me, c);
                break;
            }
        }
        inner.data[r].to_vec()
    }

    /// Checked read of the entire slice (typically after all joins).
    pub fn snapshot(&self) -> Vec<T> {
        let len = self.len();
        self.read_range(0..len)
    }
}

/// A single shared value: a one-element [`Slice`].
#[derive(Debug)]
pub struct Cell<T>(Slice<T>);

impl<T> Clone for Cell<T> {
    fn clone(&self) -> Self {
        Cell(self.0.clone())
    }
}

impl<T: Clone> Cell<T> {
    /// Creates a shared cell holding `value`. Must be called inside a model.
    pub fn new(value: T) -> Self {
        Cell(Slice::new(vec![value]).named("cell"))
    }

    /// Names the cell for race reports.
    pub fn named(self, name: &str) -> Self {
        Cell(self.0.named(name))
    }

    /// Checked read.
    pub fn get(&self) -> T {
        self.0.read(0)
    }

    /// Checked write.
    pub fn set(&self, value: T) {
        self.0.write(0, value);
    }
}
