//! Tier-1 tests for the schedule explorer itself (these run without the
//! `parcsr_check` cfg; the kernel models live in the kernel crates and are
//! cfg-gated).

use std::collections::BTreeSet;
use std::sync::Arc;

use parcsr_check as check;

/// Two threads, two trace points each: the explorer must visit all
/// C(4, 2) = 6 interleavings of the four points.
#[test]
fn exhaustive_two_threads_two_points() {
    let report = check::model(|| {
        let a = check::spawn(|| {
            check::trace(10);
            check::trace(11);
        });
        let b = check::spawn(|| {
            check::trace(20);
            check::trace(21);
        });
        a.join();
        b.join();
    });
    let distinct: BTreeSet<Vec<(usize, u32)>> = report.traces.iter().cloned().collect();
    // Program order within each thread is fixed, so a trace is determined by
    // which of the 4 slots thread A occupies: C(4, 2) = 6.
    assert_eq!(distinct.len(), 6, "traces: {distinct:?}");
    // Both serial orders must be among them.
    assert!(distinct.contains(&vec![(1, 10), (1, 11), (2, 20), (2, 21)]));
    assert!(distinct.contains(&vec![(2, 20), (2, 21), (1, 10), (1, 11)]));
    assert!(report.executions >= 6);
}

/// Three threads, one trace point each: all 3! = 6 orders.
#[test]
fn exhaustive_three_threads() {
    let report = check::model(|| {
        let hs: Vec<_> = (0..3u32)
            .map(|i| check::spawn(move || check::trace(i)))
            .collect();
        for h in hs {
            h.join();
        }
    });
    let distinct: BTreeSet<Vec<(usize, u32)>> = report.traces.iter().cloned().collect();
    assert_eq!(distinct.len(), 6, "traces: {distinct:?}");
}

/// The exploration is deterministic: same model, same execution count.
#[test]
fn deterministic_execution_count() {
    let run = || {
        check::model(|| {
            let s = check::Slice::new(vec![0u64; 4]);
            let hs: Vec<_> = (0..2)
                .map(|i| {
                    let s = s.clone();
                    check::spawn(move || {
                        s.write(i, 1);
                        s.write(i + 2, 2);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
        })
        .executions
    };
    let a = run();
    assert_eq!(a, run());
    assert!(a >= 6);
}

/// Unsynchronized write-write on one slot is caught.
#[test]
fn detects_write_write_race() {
    let err = check::check(|| {
        let s = check::Slice::new(vec![0u32; 1]).named("slot");
        let a = {
            let s = s.clone();
            check::spawn(move || s.write(0, 1))
        };
        let b = {
            let s = s.clone();
            check::spawn(move || s.write(0, 2))
        };
        a.join();
        b.join();
    })
    .expect_err("two unordered writes to one slot must race");
    assert_eq!(err.kind, "write-write");
    assert_eq!(err.location, "slot");
    assert_eq!(err.index, 0);
}

/// A read concurrent with a write is caught (either direction).
#[test]
fn detects_read_write_race() {
    let err = check::check(|| {
        let s = check::Slice::new(vec![7u32; 1]).named("slot");
        let a = {
            let s = s.clone();
            check::spawn(move || s.write(0, 1))
        };
        let b = {
            let s = s.clone();
            check::spawn(move || {
                let _ = s.read(0);
            })
        };
        a.join();
        b.join();
    })
    .expect_err("unordered read/write must race");
    assert!(
        err.kind == "read-write" || err.kind == "write-read",
        "{err}"
    );
}

/// Join is a real happens-before edge: write → join → read is race-free,
/// and the reader always sees the written value.
#[test]
fn join_orders_accesses() {
    let report = check::model(|| {
        let s = check::Slice::new(vec![0u32; 1]).named("slot");
        let a = {
            let s = s.clone();
            check::spawn(move || s.write(0, 42))
        };
        a.join();
        let b = {
            let s = s.clone();
            check::spawn(move || assert_eq!(s.read(0), 42))
        };
        b.join();
    });
    assert!(report.executions >= 1);
}

/// Fork is a happens-before edge: a pre-spawn write is visible, race-free,
/// to every child.
#[test]
fn fork_orders_accesses() {
    check::model(|| {
        let s = check::Slice::new(vec![0u32; 1]);
        s.write(0, 9);
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let s = s.clone();
                check::spawn(move || assert_eq!(s.read(0), 9))
            })
            .collect();
        for h in hs {
            h.join();
        }
    });
}

/// Disjoint `with_range` chunks do not race; overlapping ones do.
#[test]
fn range_ops_check_per_index() {
    check::model(|| {
        let s = check::Slice::new(vec![1u64; 6]);
        let hs: Vec<_> = [0..3usize, 3..6usize]
            .into_iter()
            .map(|r| {
                let s = s.clone();
                check::spawn(move || {
                    s.with_range(r, |chunk| {
                        for x in chunk.iter_mut() {
                            *x += 1;
                        }
                    })
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(s.snapshot(), vec![2; 6]);
    });

    let err = check::check(|| {
        let s = check::Slice::new(vec![1u64; 6]).named("overlap");
        let hs: Vec<_> = [0..4usize, 3..6usize]
            .into_iter()
            .map(|r| {
                let s = s.clone();
                check::spawn(move || s.with_range(r, |_| ()))
            })
            .collect();
        for h in hs {
            h.join();
        }
    })
    .expect_err("overlapping ranges must race");
    assert_eq!(err.index, 3);
}

/// Values cross threads through join: a map-reduce shaped model.
#[test]
fn join_returns_values() {
    check::model(|| {
        let data = Arc::new(vec![1u64, 2, 3, 4, 5, 6]);
        let hs: Vec<_> = [0..3usize, 3..6usize]
            .into_iter()
            .map(|r| {
                let data = Arc::clone(&data);
                check::spawn(move || data[r].iter().sum::<u64>())
            })
            .collect();
        let total: u64 = hs.into_iter().map(|h| h.join()).sum();
        assert_eq!(total, 21);
    });
}

/// Cells are one-slot slices.
#[test]
fn cell_round_trip_and_race() {
    check::model(|| {
        let c = check::Cell::new(5u32);
        c.set(6);
        assert_eq!(c.get(), 6);
    });
    let err = check::check(|| {
        let c = check::Cell::new(0u32).named("counter");
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                // Classic lost-update: read-modify-write without sync.
                check::spawn(move || c.set(c.get() + 1))
            })
            .collect();
        for h in hs {
            h.join();
        }
    })
    .expect_err("concurrent increments must race");
    assert_eq!(err.location, "counter");
}

/// A panic inside a spawned thread propagates at join.
#[test]
#[should_panic(expected = "boom")]
fn spawned_panic_propagates() {
    check::model(|| {
        let h = check::spawn(|| panic!("boom"));
        h.join();
    });
}

/// Leaving a spawned thread unjoined is a model bug and is reported.
#[test]
#[should_panic(expected = "not joined")]
fn leaked_thread_is_reported() {
    // Park the leaked thread on a trace point so it never finishes;
    // the body returning first trips the leak check... but the leaked
    // thread would deadlock the next execution, so keep it schedule-free:
    // a spawned thread with no schedule points runs to completion only
    // when granted, which never happens if the body takes every turn.
    // Simplest deterministic leak: spawn and return without joining.
    check::model(|| {
        let _h = check::spawn(|| ());
    });
}
