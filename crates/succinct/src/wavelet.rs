//! A (levelwise, pointerless) wavelet tree.
//!
//! The CAS/CET structures in the paper's related work \[21\] attach wavelet
//! trees to event sequences for logarithmic-time queries; over a *static*
//! graph the same trick applies to the CSR column array `jA`: `rank(v, ·)`
//! counts occurrences of a target node in any prefix, and `select(v, k)`
//! finds the k-th edge pointing *at* `v` — i.e. in-neighbor queries without
//! materializing the transpose.
//!
//! Layout: one [`RankSelect`] bitvector per bit level, most significant bit
//! first. Queries walk down carrying the node interval `[lo, hi)`; child
//! intervals come from rank differences, so no pointers are stored.

use crate::bitvector::RankSelect;

/// A wavelet tree over a `u32` sequence with alphabet `0..sigma`.
#[derive(Debug, Clone)]
pub struct WaveletTree {
    levels: Vec<RankSelect>,
    len: usize,
    sigma: u32,
}

impl WaveletTree {
    /// Builds from a sequence with symbols in `0..sigma`.
    ///
    /// # Panics
    ///
    /// Panics if a symbol is `>= sigma` or `sigma == 0` with a non-empty
    /// sequence.
    pub fn new(sequence: &[u32], sigma: u32) -> Self {
        if sequence.is_empty() {
            return WaveletTree {
                levels: Vec::new(),
                len: 0,
                sigma,
            };
        }
        assert!(sigma > 0, "non-empty sequence needs a non-empty alphabet");
        for &s in sequence {
            assert!(s < sigma, "symbol {s} out of alphabet 0..{sigma}");
        }
        let bits = if sigma <= 1 {
            1
        } else {
            32 - (sigma - 1).leading_zeros()
        };
        // Depth-first construction: each node appends its bits to its
        // level's buffer, then recurses into its zero- and one-children.
        // Visiting depth-d nodes left to right keeps every level buffer in
        // node order, and partitioning *within* the node (rather than
        // globally) is what keeps sibling subtrees from interleaving.
        let mut level_bits: Vec<Vec<bool>> =
            vec![Vec::with_capacity(sequence.len()); bits as usize];
        fn fill(level_bits: &mut [Vec<bool>], node: Vec<u32>, depth: u32, bits: u32) {
            if depth == bits || node.is_empty() {
                return;
            }
            let shift = bits - 1 - depth;
            let mut zeros = Vec::new();
            let mut ones = Vec::new();
            for s in node {
                if (s >> shift) & 1 == 1 {
                    level_bits[depth as usize].push(true);
                    ones.push(s);
                } else {
                    level_bits[depth as usize].push(false);
                    zeros.push(s);
                }
            }
            fill(level_bits, zeros, depth + 1, bits);
            fill(level_bits, ones, depth + 1, bits);
        }
        fill(&mut level_bits, sequence.to_vec(), 0, bits);
        let levels = level_bits.into_iter().map(RankSelect::from_bits).collect();
        WaveletTree {
            levels,
            len: sequence.len(),
            sigma,
        }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Alphabet bound.
    pub fn sigma(&self) -> u32 {
        self.sigma
    }

    /// The symbol at position `i`. `O(log σ)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn access(&self, i: usize) -> u32 {
        assert!(
            i < self.len,
            "position {i} out of bounds (len {})",
            self.len
        );
        let (mut lo, mut hi, mut pos) = (0usize, self.len, i);
        let mut symbol = 0u32;
        for level in &self.levels {
            symbol <<= 1;
            let zeros_in_node = level.rank0(hi) - level.rank0(lo);
            if level.get(pos) {
                symbol |= 1;
                pos = lo + zeros_in_node + (level.rank1(pos) - level.rank1(lo));
                lo += zeros_in_node;
            } else {
                pos = lo + (level.rank0(pos) - level.rank0(lo));
                hi = lo + zeros_in_node;
            }
        }
        symbol
    }

    /// Number of occurrences of `symbol` in the prefix `[0, i)`. `O(log σ)`.
    ///
    /// # Panics
    ///
    /// Panics if `i > len`.
    pub fn rank(&self, symbol: u32, i: usize) -> usize {
        assert!(i <= self.len, "prefix end {i} out of bounds");
        if symbol >= self.sigma || i == 0 || self.len == 0 {
            return 0;
        }
        let bits = self.levels.len() as u32;
        // `pos` is the (exclusive) prefix end mapped into the current node
        // interval [lo, hi).
        let (mut lo, mut hi, mut pos) = (0usize, self.len, i);
        for (l, level) in self.levels.iter().enumerate() {
            let shift = bits - 1 - l as u32;
            let zeros_in_node = level.rank0(hi) - level.rank0(lo);
            if (symbol >> shift) & 1 == 1 {
                let ones_before = level.rank1(pos) - level.rank1(lo);
                lo += zeros_in_node;
                pos = lo + ones_before;
            } else {
                pos = lo + (level.rank0(pos) - level.rank0(lo));
                hi = lo + zeros_in_node;
            }
            if pos == lo {
                return 0;
            }
        }
        pos - lo
    }

    /// Position of the k-th (0-based) occurrence of `symbol`, or `None`.
    /// Implemented by binary search over [`rank`](Self::rank):
    /// `O(log n · log σ)`.
    pub fn select(&self, symbol: u32, k: usize) -> Option<usize> {
        if symbol >= self.sigma || self.count(symbol) <= k {
            return None;
        }
        // Smallest i with rank(symbol, i + 1) == k + 1 and position i holds
        // the symbol.
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.rank(symbol, mid + 1) > k {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// Total occurrences of `symbol`.
    pub fn count(&self, symbol: u32) -> usize {
        self.rank(symbol, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_rank(seq: &[u32], symbol: u32, i: usize) -> usize {
        seq[..i].iter().filter(|&&s| s == symbol).count()
    }

    #[test]
    fn access_reconstructs_sequence() {
        let seq = vec![3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let wt = WaveletTree::new(&seq, 10);
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(wt.access(i), s, "i={i}");
        }
    }

    #[test]
    fn rank_matches_reference() {
        let seq: Vec<u32> = (0..200).map(|i| (i * 31) % 17).collect();
        let wt = WaveletTree::new(&seq, 17);
        for symbol in 0..17 {
            for i in (0..=seq.len()).step_by(7) {
                assert_eq!(
                    wt.rank(symbol, i),
                    reference_rank(&seq, symbol, i),
                    "symbol={symbol} i={i}"
                );
            }
        }
    }

    #[test]
    fn select_finds_occurrences() {
        let seq = vec![2u32, 7, 2, 2, 5, 7, 2];
        let wt = WaveletTree::new(&seq, 8);
        assert_eq!(wt.select(2, 0), Some(0));
        assert_eq!(wt.select(2, 1), Some(2));
        assert_eq!(wt.select(2, 3), Some(6));
        assert_eq!(wt.select(2, 4), None);
        assert_eq!(wt.select(7, 1), Some(5));
        assert_eq!(wt.select(5, 0), Some(4));
        assert_eq!(wt.select(3, 0), None);
    }

    #[test]
    fn count_per_symbol() {
        let seq = vec![0u32, 1, 0, 2, 0];
        let wt = WaveletTree::new(&seq, 3);
        assert_eq!(wt.count(0), 3);
        assert_eq!(wt.count(1), 1);
        assert_eq!(wt.count(2), 1);
    }

    #[test]
    fn empty_sequence() {
        let wt = WaveletTree::new(&[], 5);
        assert!(wt.is_empty());
        assert_eq!(wt.rank(1, 0), 0);
        assert_eq!(wt.select(1, 0), None);
    }

    #[test]
    fn single_symbol_alphabet() {
        let seq = vec![0u32; 10];
        let wt = WaveletTree::new(&seq, 1);
        assert_eq!(wt.access(5), 0);
        assert_eq!(wt.count(0), 10);
        assert_eq!(wt.select(0, 9), Some(9));
    }

    #[test]
    fn power_of_two_alphabet_boundary() {
        let seq: Vec<u32> = (0..64).collect();
        let wt = WaveletTree::new(&seq, 64);
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(wt.access(i), s);
            assert_eq!(wt.select(s, 0), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of alphabet")]
    fn rejects_out_of_alphabet_symbols() {
        WaveletTree::new(&[5], 5);
    }
}
