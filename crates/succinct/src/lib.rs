#![warn(missing_docs)]

//! `parcsr-succinct` — the compressed-graph structures of the paper's
//! related work (Section II), built so the benches can position the
//! bit-packed CSR against the structures the paper cites:
//!
//! * [`bitvector`] — a rank/select bitvector, the primitive everything else
//!   in this family stands on;
//! * [`wavelet`] — a wavelet tree over the CSR column array, the device the
//!   CAS/CET temporal structures \[21\] use for logarithmic-time queries.
//!   Over `jA` it answers *reverse* (in-neighbor) queries without building
//!   the transpose;
//! * [`k2tree`] — the k²-tree of Brisaboa, Ladra, Navarro \[18\]: the
//!   adjacency matrix as a recursively subdivided quadtree over a bit
//!   vector, with both row and column queries.
//!
//! # Example
//!
//! ```
//! use parcsr_succinct::K2Tree;
//!
//! let edges = vec![(0u32, 5u32), (3, 1), (7, 7)];
//! let tree = K2Tree::from_edges(8, &edges);
//! assert!(tree.has_edge(3, 1));
//! assert!(!tree.has_edge(1, 3));
//! assert_eq!(tree.row(3), vec![1]);
//! assert_eq!(tree.column(7), vec![7]);
//! ```

pub mod bitvector;
pub mod k2tree;
pub mod wavelet;

pub use bitvector::RankSelect;
pub use k2tree::K2Tree;
pub use wavelet::WaveletTree;
