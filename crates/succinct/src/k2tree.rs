//! The k²-tree of Brisaboa, Ladra and Navarro (the paper's \[18\]), with
//! `k = 2`: the adjacency matrix as a recursively subdivided quadtree.
//!
//! The matrix (padded to a power of two) is split into 4 quadrants; each
//! quadrant contributes one bit — 1 if it contains any edge — and non-empty
//! quadrants recurse. All levels' bits concatenate into a single bitvector;
//! the children of the set bit at position `p` live at positions
//! `rank1(p + 1) · 4 …`, so navigation needs only rank. Empty regions cost
//! nothing, which is what makes the structure competitive on sparse
//! clustered matrices (web graphs especially).

use parcsr_graph::NodeId;

use crate::bitvector::RankSelect;

/// A k²-tree (k = 2) over an `n × n` boolean adjacency matrix.
#[derive(Debug, Clone)]
pub struct K2Tree {
    /// All level bits, breadth-first, root level first.
    bits: RankSelect,
    /// Padded matrix side (power of two, ≥ 2).
    side: usize,
    /// Declared (unpadded) node count.
    num_nodes: usize,
    /// Number of edges stored.
    num_edges: usize,
}

impl K2Tree {
    /// Builds from a directed edge set (duplicates collapse).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            );
        }
        let side = num_nodes.next_power_of_two().max(2);
        let mut sorted: Vec<(NodeId, NodeId)> = edges.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let num_edges = sorted.len();

        // Breadth-first subdivision: each queue entry is a quadrant origin
        // (row, column) plus the edges falling inside it, at the current
        // level's quadrant size.
        type QueueEntry = (usize, usize, Vec<(NodeId, NodeId)>);
        let mut levels: Vec<Vec<bool>> = Vec::new();
        let mut queue: Vec<QueueEntry> = vec![(0, 0, sorted)];
        let mut size = side;
        while size > 1 && !queue.is_empty() {
            let half = size / 2;
            let mut level_bits = Vec::with_capacity(queue.len() * 4);
            let mut next: Vec<QueueEntry> = Vec::new();
            for (row0, col0, node_edges) in queue {
                // Quadrant order: (top-left, top-right, bottom-left,
                // bottom-right) — row-major.
                let mut quadrants: [Vec<(NodeId, NodeId)>; 4] =
                    [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
                for (u, v) in node_edges {
                    let r = (u as usize - row0) >= half;
                    let c = (v as usize - col0) >= half;
                    quadrants[usize::from(r) * 2 + usize::from(c)].push((u, v));
                }
                for (q, qedges) in quadrants.into_iter().enumerate() {
                    level_bits.push(!qedges.is_empty());
                    if !qedges.is_empty() && half > 1 {
                        let qrow = row0 + (q / 2) * half;
                        let qcol = col0 + (q % 2) * half;
                        next.push((qrow, qcol, qedges));
                    }
                }
            }
            levels.push(level_bits);
            queue = next;
            size = half;
        }

        let bits = RankSelect::from_bits(levels.into_iter().flatten());
        K2Tree {
            bits,
            side,
            num_nodes,
            num_edges,
        }
    }

    /// Declared node count.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (distinct) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Size of the bit structure in bytes (bits only; the rank index roughly
    /// doubles it).
    pub fn packed_bytes(&self) -> usize {
        self.bits.len().div_ceil(8)
    }

    /// Children base position of the set bit at `pos`.
    #[inline]
    fn children(&self, pos: usize) -> usize {
        self.bits.rank1(pos + 1) * 4
    }

    /// Edge existence: one root-to-leaf descent, `O(log n)` rank queries.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of range"
        );
        if self.num_edges == 0 {
            return false;
        }
        let (mut row, mut col) = (u as usize, v as usize);
        let mut size = self.side / 2;
        // Root children occupy positions 0..4.
        let mut pos = (row / size) * 2 + (col / size);
        loop {
            if !self.bits.get(pos) {
                return false;
            }
            if size == 1 {
                return true;
            }
            row %= size;
            col %= size;
            size /= 2;
            pos = self.children(pos) + (row / size) * 2 + (col / size);
        }
    }

    /// The sorted neighbor row of `u` (forward query).
    pub fn row(&self, u: NodeId) -> Vec<NodeId> {
        assert!((u as usize) < self.num_nodes, "node {u} out of range");
        let mut out = Vec::new();
        if self.num_edges > 0 {
            self.collect_row(u as usize, 0, self.side, usize::MAX, &mut out);
        }
        out
    }

    /// The sorted list of nodes pointing at `v` (reverse query) — the
    /// symmetry CSR lacks without a transpose.
    pub fn column(&self, v: NodeId) -> Vec<NodeId> {
        assert!((v as usize) < self.num_nodes, "node {v} out of range");
        let mut out = Vec::new();
        if self.num_edges > 0 {
            self.collect_column(v as usize, 0, self.side, usize::MAX, &mut out);
        }
        out
    }

    /// DFS over the two column-halves of the quadrants intersecting row
    /// `row` (relative to the current node). `pos == usize::MAX` denotes the
    /// virtual root.
    fn collect_row(&self, row: usize, col0: usize, size: usize, pos: usize, out: &mut Vec<NodeId>) {
        let half = size / 2;
        let base = if pos == usize::MAX {
            0
        } else {
            self.children(pos)
        };
        let r = row / half;
        for c in 0..2 {
            let child = base + r * 2 + c;
            if !self.bits.get(child) {
                continue;
            }
            let child_col0 = col0 + c * half;
            if half == 1 {
                if child_col0 < self.num_nodes {
                    out.push(child_col0 as NodeId);
                }
            } else {
                self.collect_row(row % half, child_col0, half, child, out);
            }
        }
    }

    fn collect_column(
        &self,
        col: usize,
        row0: usize,
        size: usize,
        pos: usize,
        out: &mut Vec<NodeId>,
    ) {
        let half = size / 2;
        let base = if pos == usize::MAX {
            0
        } else {
            self.children(pos)
        };
        let c = col / half;
        for r in 0..2 {
            let child = base + r * 2 + c;
            if !self.bits.get(child) {
                continue;
            }
            let child_row0 = row0 + r * half;
            if half == 1 {
                if child_row0 < self.num_nodes {
                    out.push(child_row0 as NodeId);
                }
            } else {
                self.collect_column(col % half, child_row0, half, child, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<(u32, u32)> {
        vec![(0, 5), (3, 1), (7, 7), (3, 6), (6, 3), (0, 0)]
    }

    #[test]
    fn membership() {
        let t = K2Tree::from_edges(8, &sample_edges());
        for &(u, v) in &sample_edges() {
            assert!(t.has_edge(u, v), "({u}, {v})");
        }
        assert!(!t.has_edge(5, 0));
        assert!(!t.has_edge(1, 3));
        assert!(!t.has_edge(7, 6));
        assert_eq!(t.num_edges(), 6);
    }

    #[test]
    fn rows_and_columns() {
        let t = K2Tree::from_edges(8, &sample_edges());
        assert_eq!(t.row(0), [0, 5]);
        assert_eq!(t.row(3), [1, 6]);
        assert_eq!(t.row(7), [7]);
        assert!(t.row(1).is_empty());
        assert_eq!(t.column(7), [7]);
        assert_eq!(t.column(3), [6]);
        assert_eq!(t.column(6), [3]);
        assert_eq!(t.column(0), [0]);
        assert!(t.column(2).is_empty());
    }

    #[test]
    fn duplicates_collapse() {
        let t = K2Tree::from_edges(4, &[(1, 2), (1, 2), (1, 2)]);
        assert_eq!(t.num_edges(), 1);
        assert_eq!(t.row(1), [2]);
    }

    #[test]
    fn non_power_of_two_nodes() {
        // Padding must not leak phantom nodes into results.
        let t = K2Tree::from_edges(5, &[(4, 4), (0, 4), (4, 0)]);
        assert_eq!(t.row(4), [0, 4]);
        assert_eq!(t.column(4), [0, 4]);
        assert!(t.has_edge(0, 4));
        assert!(!t.has_edge(4, 1));
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..400)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let t = K2Tree::from_edges(n as usize, &edges);
        let set: std::collections::BTreeSet<(u32, u32)> = edges.iter().copied().collect();
        assert_eq!(t.num_edges(), set.len());
        for u in 0..n {
            for v in 0..n {
                assert_eq!(t.has_edge(u, v), set.contains(&(u, v)), "({u}, {v})");
            }
            let row: Vec<u32> = set
                .iter()
                .filter(|&&(s, _)| s == u)
                .map(|&(_, v)| v)
                .collect();
            assert_eq!(t.row(u), row, "row {u}");
            let col: Vec<u32> = set
                .iter()
                .filter(|&&(_, d)| d == u)
                .map(|&(s, _)| s)
                .collect();
            assert_eq!(t.column(u), col, "column {u}");
        }
    }

    #[test]
    fn empty_graph() {
        let t = K2Tree::from_edges(4, &[]);
        assert_eq!(t.num_edges(), 0);
        assert!(!t.has_edge(0, 0));
        assert!(t.row(3).is_empty());
        assert!(t.column(0).is_empty());
    }

    #[test]
    fn single_node_matrix() {
        let t = K2Tree::from_edges(1, &[(0, 0)]);
        assert!(t.has_edge(0, 0));
        assert_eq!(t.row(0), [0]);
    }

    #[test]
    fn clustered_matrix_is_compact() {
        // Edges confined to one corner: the tree prunes the other three
        // quadrants at every level, so size grows ~linearly in edges, far
        // below n²/8 bytes.
        let edges: Vec<(u32, u32)> = (0..64).flat_map(|u| (0..4).map(move |v| (u, v))).collect();
        let t = K2Tree::from_edges(1 << 12, &edges);
        let dense_bytes = (1usize << 12) * (1 << 12) / 8;
        assert!(
            t.packed_bytes() * 100 < dense_bytes,
            "{} vs {}",
            t.packed_bytes(),
            dense_bytes
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edges() {
        K2Tree::from_edges(3, &[(0, 3)]);
    }
}
