//! A rank/select bitvector.
//!
//! `rank1(i)` = number of set bits strictly before position `i`, answered in
//! O(1) from per-word cumulative counts; `select1(k)` = position of the
//! k-th (0-based) set bit, answered by binary search over the rank index.
//! The space overhead is one `u32` per 64-bit word (≈ 50%), a deliberately
//! simple layout — the classic engineered variants (rank9 etc.) shave the
//! overhead but not the asymptotics, and simplicity keeps the structure an
//! honest baseline.

/// An immutable bitvector with O(1) rank and O(log n) select.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankSelect {
    words: Vec<u64>,
    /// `ranks[w]` = number of ones in words `0..w`.
    ranks: Vec<u32>,
    len: usize,
    ones: usize,
}

impl RankSelect {
    /// Builds from a bit iterator.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let mut len = 0usize;
        for bit in bits {
            if len.is_multiple_of(64) {
                words.push(0);
            }
            if bit {
                *words.last_mut().expect("just pushed") |= 1 << (len % 64);
            }
            len += 1;
        }
        Self::from_raw(words, len)
    }

    /// Builds from words and a bit length (bits above `len` must be zero).
    pub fn from_raw(words: Vec<u64>, len: usize) -> Self {
        assert!(len <= words.len() * 64, "len exceeds backing words");
        if let Some(&last) = words.last() {
            let live = len - (words.len() - 1) * 64;
            assert!(
                live == 64 || (last >> live) == 0,
                "bits above len must be zero"
            );
        }
        let mut ranks = Vec::with_capacity(words.len() + 1);
        let mut acc = 0u32;
        ranks.push(0);
        for &w in &words {
            acc += w.count_ones();
            ranks.push(acc);
        }
        let ones = acc as usize;
        RankSelect {
            words,
            ranks,
            len,
            ones,
        }
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// The bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of ones strictly before position `i` (`i` may equal `len`).
    ///
    /// # Panics
    ///
    /// Panics if `i > len`.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank position {i} out of bounds");
        let word = i / 64;
        let within = i % 64;
        let partial = if within == 0 {
            0
        } else {
            (self.words[word] & ((1u64 << within) - 1)).count_ones()
        };
        self.ranks[word] as usize + partial as usize
    }

    /// Number of zeros strictly before position `i`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the k-th set bit (0-based), or `None` if `k >= ones`.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        // Binary search the word whose cumulative rank passes k.
        let mut lo = 0usize;
        let mut hi = self.words.len();
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.ranks[mid] as usize <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let remaining = k - self.ranks[lo] as usize;
        let mut word = self.words[lo];
        for _ in 0..remaining {
            debug_assert!(word != 0, "select ran out of bits");
            word &= word - 1; // clear lowest set bit
        }
        debug_assert!(word != 0, "select ran out of bits");
        Some(lo * 64 + word.trailing_zeros() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(bits: &[bool]) -> RankSelect {
        RankSelect::from_bits(bits.iter().copied())
    }

    #[test]
    fn rank_matches_prefix_counts() {
        let bits: Vec<bool> = (0..300).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let rs = naive(&bits);
        let mut count = 0;
        for i in 0..=bits.len() {
            assert_eq!(rs.rank1(i), count, "i={i}");
            assert_eq!(rs.rank0(i), i - count);
            if i < bits.len() {
                assert_eq!(rs.get(i), bits[i]);
                count += usize::from(bits[i]);
            }
        }
        assert_eq!(rs.count_ones(), count);
    }

    #[test]
    fn select_is_inverse_of_rank() {
        let bits: Vec<bool> = (0..500).map(|i| (i * i) % 5 == 1).collect();
        let rs = naive(&bits);
        for k in 0..rs.count_ones() {
            let pos = rs.select1(k).unwrap();
            assert!(rs.get(pos), "k={k} pos={pos}");
            assert_eq!(rs.rank1(pos), k);
        }
        assert_eq!(rs.select1(rs.count_ones()), None);
    }

    #[test]
    fn empty_and_all_patterns() {
        let empty = RankSelect::from_bits(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.rank1(0), 0);
        assert_eq!(empty.select1(0), None);

        let zeros = RankSelect::from_bits(std::iter::repeat_n(false, 130));
        assert_eq!(zeros.count_ones(), 0);
        assert_eq!(zeros.rank1(130), 0);

        let ones = RankSelect::from_bits(std::iter::repeat_n(true, 130));
        assert_eq!(ones.count_ones(), 130);
        assert_eq!(ones.select1(129), Some(129));
        assert_eq!(ones.rank1(65), 65);
    }

    #[test]
    fn word_boundaries() {
        let mut bits = vec![false; 200];
        for &i in &[0usize, 63, 64, 127, 128, 191, 199] {
            bits[i] = true;
        }
        let rs = naive(&bits);
        assert_eq!(rs.count_ones(), 7);
        assert_eq!(rs.select1(0), Some(0));
        assert_eq!(rs.select1(1), Some(63));
        assert_eq!(rs.select1(2), Some(64));
        assert_eq!(rs.select1(6), Some(199));
        assert_eq!(rs.rank1(64), 2);
        assert_eq!(rs.rank1(128), 4);
    }

    #[test]
    fn from_raw_validates() {
        let rs = RankSelect::from_raw(vec![0b1011], 4);
        assert_eq!(rs.count_ones(), 3);
        assert!(rs.get(3));
    }

    #[test]
    #[should_panic(expected = "above len")]
    fn from_raw_rejects_dirty_padding() {
        RankSelect::from_raw(vec![0b10000], 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rank_bounds_checked() {
        naive(&[true]).rank1(2);
    }
}
