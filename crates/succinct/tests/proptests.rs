//! Property tests for the succinct structures, cross-checked against plain
//! Rust references and against the CSR from the core crate.

use std::collections::BTreeSet;

use proptest::prelude::*;

use parcsr::CsrBuilder;
use parcsr_graph::EdgeList;
use parcsr_succinct::{K2Tree, RankSelect, WaveletTree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitvector_rank_select(bits in prop::collection::vec(any::<bool>(), 0..700)) {
        let rs = RankSelect::from_bits(bits.iter().copied());
        let mut ones = 0usize;
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(rs.rank1(i), ones);
            prop_assert_eq!(rs.get(i), bit);
            if bit {
                prop_assert_eq!(rs.select1(ones), Some(i));
                ones += 1;
            }
        }
        prop_assert_eq!(rs.count_ones(), ones);
        prop_assert_eq!(rs.select1(ones), None);
    }

    #[test]
    fn wavelet_access_rank_select(
        seq in prop::collection::vec(0u32..40, 0..400),
    ) {
        let wt = WaveletTree::new(&seq, 40);
        prop_assert_eq!(wt.len(), seq.len());
        for (i, &s) in seq.iter().enumerate() {
            prop_assert_eq!(wt.access(i), s, "access {}", i);
        }
        for symbol in [0u32, 1, 13, 39] {
            let mut seen = 0usize;
            for i in 0..=seq.len() {
                prop_assert_eq!(wt.rank(symbol, i), seen, "rank({}, {})", symbol, i);
                if i < seq.len() && seq[i] == symbol {
                    prop_assert_eq!(wt.select(symbol, seen), Some(i));
                    seen += 1;
                }
            }
            prop_assert_eq!(wt.count(symbol), seen);
            prop_assert_eq!(wt.select(symbol, seen), None);
        }
    }

    #[test]
    fn k2tree_matches_edge_set(
        raw in prop::collection::vec((0u32..48, 0u32..48), 0..300),
    ) {
        let set: BTreeSet<(u32, u32)> = raw.iter().copied().collect();
        let t = K2Tree::from_edges(48, &raw);
        prop_assert_eq!(t.num_edges(), set.len());
        for u in 0..48u32 {
            let row: Vec<u32> = set.iter().filter(|&&(s, _)| s == u).map(|&(_, v)| v).collect();
            prop_assert_eq!(t.row(u), row, "row {}", u);
            let col: Vec<u32> = set.iter().filter(|&&(_, d)| d == u).map(|&(s, _)| s).collect();
            prop_assert_eq!(t.column(u), col, "column {}", u);
        }
    }

    #[test]
    fn wavelet_over_csr_columns_answers_in_neighbors(
        raw in prop::collection::vec((0u32..30, 0u32..30), 1..200),
    ) {
        // The CAS trick: a wavelet tree over jA answers reverse queries.
        let g = EdgeList::from_pairs(raw).deduped();
        let csr = CsrBuilder::new().build(&g);
        let columns: Vec<u32> = csr.targets().to_vec();
        let wt = WaveletTree::new(&columns, g.num_nodes() as u32);

        for v in 0..g.num_nodes() as u32 {
            // In-degree = total occurrences of v in jA.
            let in_deg = g.edges().iter().filter(|&&(_, t)| t == v).count();
            prop_assert_eq!(wt.count(v), in_deg, "in-degree of {}", v);
            // Each occurrence position maps back to its source row via the
            // offset array.
            for k in 0..in_deg {
                let pos = wt.select(v, k).unwrap();
                let u = csr.offsets().partition_point(|&o| o <= pos as u64) - 1;
                prop_assert!(csr.neighbors(u as u32).contains(&v));
            }
        }
    }

    #[test]
    fn k2tree_agrees_with_csr(
        raw in prop::collection::vec((0u32..40, 0u32..40), 1..250),
    ) {
        let g = EdgeList::from_pairs(raw).deduped();
        let csr = CsrBuilder::new().build(&g);
        let t = K2Tree::from_edges(g.num_nodes(), g.edges());
        for u in 0..g.num_nodes() as u32 {
            prop_assert_eq!(&t.row(u)[..], csr.neighbors(u), "row {}", u);
        }
    }
}
