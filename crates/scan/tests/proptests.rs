//! Property tests: every parallel scan is equivalent to the sequential scan
//! for arbitrary inputs, operators and chunk counts, and the provided
//! operators satisfy the monoid laws.

use proptest::prelude::*;

use parcsr_scan::{
    exclusive_scan_blelloch, exclusive_scan_seq, inclusive_scan_blelloch, inclusive_scan_chunked,
    inclusive_scan_chunked_lockstep, inclusive_scan_seq, inclusive_scan_seq_by,
    inclusive_scan_two_pass, AddOp, MaxOp, ScanAlgorithm, ScanOp, Scanner, XorOp,
};

fn seq_inclusive(v: &[u64]) -> Vec<u64> {
    let mut r = v.to_vec();
    inclusive_scan_seq(&mut r);
    r
}

proptest! {
    #[test]
    fn chunked_equals_sequential(v in prop::collection::vec(any::<u64>(), 0..2000), chunks in 1usize..40) {
        let want = seq_inclusive(&v);
        let mut got = v.clone();
        inclusive_scan_chunked(&mut got, chunks);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lockstep_equals_sequential(v in prop::collection::vec(any::<u64>(), 0..500), chunks in 1usize..12) {
        let want = seq_inclusive(&v);
        let mut got = v.clone();
        inclusive_scan_chunked_lockstep(&mut got, chunks);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn two_pass_equals_sequential(v in prop::collection::vec(any::<u64>(), 0..2000), chunks in 1usize..40) {
        let want = seq_inclusive(&v);
        let mut got = v.clone();
        inclusive_scan_two_pass(&mut got, chunks);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn blelloch_inclusive_equals_sequential(v in prop::collection::vec(any::<u64>(), 0..2000)) {
        let want = seq_inclusive(&v);
        prop_assert_eq!(inclusive_scan_blelloch(&v), want);
    }

    #[test]
    fn blelloch_exclusive_equals_sequential(v in prop::collection::vec(any::<u64>(), 0..2000)) {
        let mut want = v.clone();
        exclusive_scan_seq(&mut want);
        prop_assert_eq!(exclusive_scan_blelloch(&v), want);
    }

    #[test]
    fn scanner_exclusive_consistent_across_algorithms(
        v in prop::collection::vec(any::<u32>(), 0..800),
        chunks in 1usize..17,
    ) {
        let mut want = v.clone();
        exclusive_scan_seq(&mut want);
        for alg in ScanAlgorithm::ALL {
            let s = Scanner::with_chunks(alg, chunks);
            prop_assert_eq!(s.exclusive_scan(&v), want.clone(), "{}", alg.name());
        }
    }

    #[test]
    fn xor_scan_equals_sequential_all_algorithms(
        v in prop::collection::vec(any::<u32>(), 0..600),
        chunks in 1usize..9,
    ) {
        let mut want = v.clone();
        inclusive_scan_seq_by(&mut want, &XorOp);
        for alg in ScanAlgorithm::ALL {
            let s = Scanner::with_chunks(alg, chunks);
            let mut got = v.clone();
            s.inclusive_scan_in_place_by(&mut got, &XorOp);
            prop_assert_eq!(got, want.clone(), "{}", alg.name());
        }
    }

    #[test]
    fn monoid_laws_add(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let op = AddOp;
        prop_assert_eq!(op.combine(a, op.combine(b, c)), op.combine(op.combine(a, b), c));
        prop_assert_eq!(op.combine(op.identity(), a), a);
        prop_assert_eq!(op.combine(a, op.identity()), a);
    }

    #[test]
    fn monoid_laws_max(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let op = MaxOp;
        prop_assert_eq!(op.combine(a, op.combine(b, c)), op.combine(op.combine(a, b), c));
        prop_assert_eq!(op.combine(op.identity(), a), a);
    }

    #[test]
    fn monoid_laws_xor(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let op = XorOp;
        prop_assert_eq!(op.combine(a, op.combine(b, c)), op.combine(op.combine(a, b), c));
        prop_assert_eq!(op.combine(op.identity(), a), a);
        prop_assert_eq!(op.combine(a, a), op.identity());
    }

    #[test]
    fn segmented_scan_equals_per_segment_sequential(
        segments in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..40), 0..30),
    ) {
        // Flatten segments and record offsets.
        let mut data: Vec<u64> = Vec::new();
        let mut offsets: Vec<u64> = vec![0];
        for seg in &segments {
            data.extend_from_slice(seg);
            offsets.push(data.len() as u64);
        }
        let mut got = data.clone();
        parcsr_scan::segmented_inclusive_scan(&mut got, &offsets);

        let mut want: Vec<u64> = Vec::new();
        for seg in &segments {
            let mut s = seg.clone();
            inclusive_scan_seq(&mut s);
            want.extend(s);
        }
        prop_assert_eq!(got, want);

        // And the per-segment sums match the scan's last elements.
        let sums = parcsr_scan::segmented_sum(&data, &offsets);
        for (i, seg) in segments.iter().enumerate() {
            let direct: u64 = seg.iter().fold(0u64, |a, &b| a.wrapping_add(b));
            prop_assert_eq!(sums[i], direct, "segment {}", i);
        }
    }

    #[test]
    fn scan_is_monotone_for_nonnegative_inputs(
        v in prop::collection::vec(0u64..1_000_000, 1..500),
        chunks in 1usize..9,
    ) {
        // With no wrapping possible, inclusive prefix sums are non-decreasing:
        // the key invariant the CSR offset array relies on.
        let mut got = v.clone();
        inclusive_scan_chunked(&mut got, chunks);
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*got.last().unwrap(), v.iter().sum::<u64>());
    }
}

/// A degree-array shape dominated by one hub: a long run of equal values
/// whose span crosses two or more chunk boundaries at p = 7 and many at
/// p = 64 (the offsets-scan input produced by a hub node's neighbor run).
fn arb_hub_degrees() -> impl Strategy<Value = Vec<u64>> {
    (
        prop::collection::vec(0u64..4, 0..40),
        300usize..800,
        1u64..16,
        prop::collection::vec(0u64..4, 0..40),
    )
        .prop_map(|(pre, run, value, post)| {
            let mut v = pre;
            v.extend(std::iter::repeat_n(value, run));
            v.extend(post);
            v
        })
}

proptest! {
    /// Both parallel scan formulations agree with the sequential scan on
    /// hub-dominated inputs at every paper-relevant processor count —
    /// including p = 64, where the hub's run straddles ~20 chunk
    /// boundaries and every carry in between is hub-generated.
    #[test]
    fn hub_straddling_scans_match_serial(v in arb_hub_degrees()) {
        let want = seq_inclusive(&v);
        for chunks in [1usize, 2, 7, 64] {
            let mut got = v.clone();
            inclusive_scan_chunked(&mut got, chunks);
            prop_assert_eq!(&got, &want, "chunked, p={}", chunks);

            let mut got = v.clone();
            inclusive_scan_two_pass(&mut got, chunks);
            prop_assert_eq!(&got, &want, "two-pass, p={}", chunks);

            let mut got = v.clone();
            inclusive_scan_chunked_lockstep(&mut got, chunks);
            prop_assert_eq!(&got, &want, "lockstep, p={}", chunks);
        }
    }
}
