//! Schedule-exploration tests for the scan kernels. Compiled (and run) only
//! under `RUSTFLAGS="--cfg parcsr_check"`; see DESIGN.md §"Concurrency
//! correctness".
#![cfg(parcsr_check)]

use parcsr_check as check;
use parcsr_scan::checked::{chunked_scan_model, two_pass_scan_model, ScanFault};

fn reference(input: &[u64]) -> Vec<u64> {
    let mut out = input.to_vec();
    let mut acc = 0u64;
    for x in out.iter_mut() {
        acc += *x;
        *x = acc;
    }
    out
}

/// The shipped three-phase structure is race-free in every interleaving at
/// p = 2, and every schedule computes the sequential scan.
#[test]
fn chunked_scan_all_schedules_p2() {
    let input = vec![3u64, 1, 4, 1, 5];
    let want = reference(&input);
    let report = check::model(|| {
        let got = chunked_scan_model(input.clone(), 2, ScanFault::None);
        assert_eq!(got, want);
    });
    // Phase 1 alone has two orders of the two chunk scans, so the explorer
    // must run more than one schedule.
    assert!(report.executions >= 2, "executions = {}", report.executions);
}

/// Same at p = 3, where a middle chunk has both a predecessor and a
/// successor (the fullest boundary structure).
#[test]
fn chunked_scan_all_schedules_p3() {
    let input = vec![2u64, 7, 1, 8, 2, 8, 1];
    let want = reference(&input);
    let report = check::model(|| {
        let got = chunked_scan_model(input.clone(), 3, ScanFault::None);
        assert_eq!(got, want);
    });
    assert!(report.executions >= 6, "executions = {}", report.executions);
}

/// Dropping the sync between carry propagation and fix-up is a real race:
/// the carry thread writes chunk 1's tail while chunk 2's fix-up reads it.
#[test]
fn chunked_scan_missing_sync_races() {
    let input = vec![1u64, 2, 3, 4, 5, 6];
    let err = check::check(|| {
        chunked_scan_model(input.clone(), 3, ScanFault::SkipPhase2Sync);
    })
    .expect_err("carry/fix-up overlap must race");
    assert_eq!(err.location, "scan.data");
    assert!(
        err.kind == "read-write" || err.kind == "write-read",
        "unexpected kind: {err}"
    );
}

/// The two-pass formulation is race-free at p = 2 and p = 3: pass-1 readers
/// are ordered before pass-2 writers by the join/fork edges through the
/// coordinator.
#[test]
fn two_pass_scan_all_schedules() {
    for chunks in [2usize, 3] {
        let input = vec![5u64, 0, 2, 9, 1, 1, 7];
        let want = reference(&input);
        let report = check::model(|| {
            let got = two_pass_scan_model(input.clone(), chunks);
            assert_eq!(got, want);
        });
        assert!(report.executions >= 2, "chunks={chunks}");
    }
}

/// Degenerate shapes stay race-free (single chunk, empty input).
#[test]
fn chunked_scan_degenerate_shapes() {
    check::model(|| {
        assert_eq!(
            chunked_scan_model(vec![4u64, 4], 1, ScanFault::None),
            [4, 8]
        );
        assert!(chunked_scan_model(vec![], 3, ScanFault::None).is_empty());
    });
}
