//! Sequential scans — the ground truth every parallel variant is tested
//! against, and the `p = 1` baseline of the paper's Table II.

use crate::op::{AddOp, ScanOp};

/// In-place inclusive scan with a custom operator:
/// `data[i] = op(data[0], …, data[i])`.
pub fn inclusive_scan_seq_by<T, O>(data: &mut [T], op: &O)
where
    T: Copy,
    O: ScanOp<T>,
{
    let mut acc = match data.first() {
        Some(&x) => x,
        None => return,
    };
    for x in data.iter_mut().skip(1) {
        acc = op.combine(acc, *x);
        *x = acc;
    }
}

/// In-place inclusive prefix sum (wrapping addition).
pub fn inclusive_scan_seq<T>(data: &mut [T])
where
    T: Copy,
    AddOp: ScanOp<T>,
{
    inclusive_scan_seq_by(data, &AddOp);
}

/// In-place exclusive scan with a custom operator:
/// `data[i] = op(identity, data[0], …, data[i-1])`.
pub fn exclusive_scan_seq_by<T, O>(data: &mut [T], op: &O)
where
    T: Copy,
    O: ScanOp<T>,
{
    let mut acc = op.identity();
    for x in data.iter_mut() {
        let next = op.combine(acc, *x);
        *x = acc;
        acc = next;
    }
}

/// In-place exclusive prefix sum (wrapping addition). The CSR row-offset
/// array is exactly the exclusive prefix sum of the degree array.
pub fn exclusive_scan_seq<T>(data: &mut [T])
where
    T: Copy,
    AddOp: ScanOp<T>,
{
    exclusive_scan_seq_by(data, &AddOp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MaxOp, XorOp};

    #[test]
    fn inclusive_basic() {
        let mut v = vec![1u64, 2, 3, 4];
        inclusive_scan_seq(&mut v);
        assert_eq!(v, [1, 3, 6, 10]);
    }

    #[test]
    fn exclusive_basic() {
        let mut v = vec![1u64, 2, 3, 4];
        exclusive_scan_seq(&mut v);
        assert_eq!(v, [0, 1, 3, 6]);
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty: Vec<u32> = vec![];
        inclusive_scan_seq(&mut empty);
        exclusive_scan_seq(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![7u32];
        inclusive_scan_seq(&mut one);
        assert_eq!(one, [7]);
        exclusive_scan_seq(&mut one);
        assert_eq!(one, [0]);
    }

    #[test]
    fn inclusive_max() {
        let mut v = vec![3i32, 1, 4, 1, 5];
        inclusive_scan_seq_by(&mut v, &MaxOp);
        assert_eq!(v, [3, 3, 4, 4, 5]);
    }

    #[test]
    fn inclusive_xor_parity() {
        // XOR scan over indicator bits gives "seen an odd number of times so
        // far" — the TCSR activity rule.
        let mut v = vec![1u8, 1, 0, 1, 0];
        inclusive_scan_seq_by(&mut v, &XorOp);
        assert_eq!(v, [1, 0, 0, 1, 1]);
    }

    #[test]
    fn exclusive_shifts_inclusive_by_one() {
        let orig = vec![5u64, 9, 2, 8, 1];
        let mut inc = orig.clone();
        inclusive_scan_seq(&mut inc);
        let mut exc = orig.clone();
        exclusive_scan_seq(&mut exc);
        assert_eq!(exc[0], 0);
        for i in 1..orig.len() {
            assert_eq!(exc[i], inc[i - 1]);
        }
    }

    #[test]
    fn wrapping_does_not_panic() {
        let mut v = vec![u64::MAX, 1, 1];
        inclusive_scan_seq(&mut v);
        assert_eq!(v, [u64::MAX, 0, 1]);
    }
}
