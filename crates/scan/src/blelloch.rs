//! Blelloch's work-efficient tree scan (the paper's reference [12]).
//!
//! The classic two-sweep formulation over a conceptually complete binary tree:
//!
//! * **Up-sweep (reduce)**: for stride `s = 1, 2, 4, …` every node at position
//!   `k·2s + 2s − 1` absorbs the partial sum at `k·2s + s − 1`, building a
//!   reduction tree in place. `O(n)` combines, `O(log n)` parallel steps.
//! * **Down-sweep**: the root is replaced by the identity, then the tree is
//!   walked back down, at each level swapping-and-combining so every element
//!   ends up holding the *exclusive* prefix of everything to its left.
//!
//! Arbitrary lengths are handled by padding a scratch buffer to the next power
//! of two with identity elements (`O(n)` extra space; the chunked algorithm in
//! [`crate::chunked`] is the in-place alternative and is what the CSR builder
//! uses by default).

use rayon::prelude::*;

use crate::op::{AddOp, ScanOp};

/// Minimum stride size below which a level is processed sequentially; for
/// small strides the per-chunk work is too tiny to amortize rayon scheduling.
const PAR_LEVEL_THRESHOLD: usize = 1 << 14;

/// Out-of-place exclusive Blelloch scan:
/// `out[i] = op(identity, data[0], …, data[i-1])`.
pub fn exclusive_scan_blelloch_by<T, O>(data: &[T], op: &O) -> Vec<T>
where
    T: Copy + Send + Sync,
    O: ScanOp<T> + Sync,
{
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let m = n.next_power_of_two();
    let mut buf = Vec::with_capacity(m);
    buf.extend_from_slice(data);
    buf.resize(m, op.identity());

    // Up-sweep.
    let mut stride = 1;
    while stride < m {
        let step = stride * 2;
        sweep_level(&mut buf, step, |chunk| {
            chunk[step - 1] = op.combine(chunk[stride - 1], chunk[step - 1]);
        });
        stride = step;
    }

    // Down-sweep.
    buf[m - 1] = op.identity();
    let mut stride = m / 2;
    while stride >= 1 {
        let step = stride * 2;
        sweep_level(&mut buf, step, |chunk| {
            let t = chunk[stride - 1];
            chunk[stride - 1] = chunk[step - 1];
            chunk[step - 1] = op.combine(t, chunk[step - 1]);
        });
        stride /= 2;
    }

    buf.truncate(n);
    buf
}

/// Runs `f` on every complete `step`-sized chunk of `buf`, in parallel when
/// the level is wide enough to pay for scheduling. `buf.len()` is a power of
/// two and `step` divides it, so every chunk is complete.
fn sweep_level<T, F>(buf: &mut [T], step: usize, f: F)
where
    T: Send,
    F: Fn(&mut [T]) + Sync + Send,
{
    debug_assert_eq!(buf.len() % step, 0);
    if buf.len() / step >= 2 && buf.len() >= PAR_LEVEL_THRESHOLD {
        buf.par_chunks_exact_mut(step).for_each(f);
    } else {
        buf.chunks_exact_mut(step).for_each(f);
    }
}

/// Out-of-place exclusive prefix sum via Blelloch's scan.
pub fn exclusive_scan_blelloch<T>(data: &[T]) -> Vec<T>
where
    T: Copy + Send + Sync,
    AddOp: ScanOp<T>,
{
    exclusive_scan_blelloch_by(data, &AddOp)
}

/// Out-of-place *inclusive* Blelloch scan, derived by combining the exclusive
/// result with the original elements (one extra parallel pass).
pub fn inclusive_scan_blelloch_by<T, O>(data: &[T], op: &O) -> Vec<T>
where
    T: Copy + Send + Sync,
    O: ScanOp<T> + Sync,
{
    let mut out = exclusive_scan_blelloch_by(data, op);
    if out.len() >= PAR_LEVEL_THRESHOLD {
        out.par_iter_mut()
            .zip(data.par_iter())
            .for_each(|(o, &x)| *o = op.combine(*o, x));
    } else {
        for (o, &x) in out.iter_mut().zip(data) {
            *o = op.combine(*o, x);
        }
    }
    out
}

/// Out-of-place inclusive prefix sum via Blelloch's scan.
pub fn inclusive_scan_blelloch<T>(data: &[T]) -> Vec<T>
where
    T: Copy + Send + Sync,
    AddOp: ScanOp<T>,
{
    inclusive_scan_blelloch_by(data, &AddOp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MaxOp, XorOp};
    use crate::sequential::{exclusive_scan_seq, inclusive_scan_seq, inclusive_scan_seq_by};

    #[test]
    fn exclusive_power_of_two() {
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let got = exclusive_scan_blelloch(&data);
        let mut want = data.clone();
        exclusive_scan_seq(&mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn exclusive_non_power_of_two() {
        for n in [1usize, 2, 3, 5, 6, 7, 9, 100, 1000, 1023, 1025] {
            let data: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 89).collect();
            let got = exclusive_scan_blelloch(&data);
            let mut want = data.clone();
            exclusive_scan_seq(&mut want);
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn inclusive_matches_sequential() {
        for n in [1usize, 4, 13, 64, 777] {
            let data: Vec<u32> = (0..n as u32).map(|i| i % 5 + 1).collect();
            let got = inclusive_scan_blelloch(&data);
            let mut want = data.clone();
            inclusive_scan_seq(&mut want);
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn empty_input() {
        let empty: Vec<u64> = vec![];
        assert!(exclusive_scan_blelloch(&empty).is_empty());
        assert!(inclusive_scan_blelloch(&empty).is_empty());
    }

    #[test]
    fn max_op_inclusive() {
        let data = vec![2i32, 8, 1, 9, 3, 7];
        let got = inclusive_scan_blelloch_by(&data, &MaxOp);
        let mut want = data.clone();
        inclusive_scan_seq_by(&mut want, &MaxOp);
        assert_eq!(got, want);
    }

    #[test]
    fn xor_op_exclusive() {
        let data: Vec<u8> = vec![1, 1, 1, 0, 1, 0, 0];
        let got = exclusive_scan_blelloch_by(&data, &XorOp);
        assert_eq!(got, [0, 1, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn large_parallel_path() {
        // Big enough to exercise the par_chunks_exact_mut branch.
        let n = (PAR_LEVEL_THRESHOLD * 4) + 3;
        let data: Vec<u64> = (0..n as u64).map(|i| i % 11).collect();
        let got = inclusive_scan_blelloch(&data);
        let mut want = data.clone();
        inclusive_scan_seq(&mut want);
        assert_eq!(got, want);
    }
}
