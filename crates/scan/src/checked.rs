//! Schedule-checked models of the chunked and two-pass scans (compiled only
//! under `--cfg parcsr_check`).
//!
//! Each model re-expresses a kernel's phase structure over
//! [`parcsr_check::Slice`] shared memory, with one logical thread per chunk
//! and joins where the real kernel has a rayon phase boundary (the paper's
//! `sync()`). Chunk-local work uses `with_range`/`read_range` — one schedule
//! point per phase — so the explored interleavings are exactly the
//! cross-chunk ones the disjointness argument is about.
//!
//! [`ScanFault`] seeds known-bad variants so the test suite can prove the
//! checker actually catches the races the real synchronization prevents.

use parcsr_check as check;

use parcsr_runtime::chunk_ranges;

/// Known-bad variants of the chunked scan, used to validate the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanFault {
    /// The shipped phase structure (must be race-free).
    None,
    /// Drops the `sync()` between carry propagation (phase 2) and chunk
    /// fix-up (phase 3): the carry thread's tail writes run concurrently
    /// with phase-3 threads reading those tails. Racy for `chunks >= 3`
    /// (phase 2 writes the tail of chunk 1, which chunk 2's fix-up reads).
    SkipPhase2Sync,
}

/// Model of Algorithm 1 (three-phase chunked inclusive scan, `+` monoid)
/// over instrumented shared memory. Must be called inside
/// [`parcsr_check::model`] / [`parcsr_check::check`]. Returns the final
/// array contents under the schedule being explored.
pub fn chunked_scan_model(input: Vec<u64>, chunks: usize, fault: ScanFault) -> Vec<u64> {
    let n = input.len();
    let ranges = chunk_ranges(n, chunks);
    let data = check::Slice::new(input).named("scan.data");
    if ranges.len() <= 1 {
        data.with_range(0..n, scan_in_place);
        return data.snapshot();
    }

    // Phase 1: independent per-chunk scans (Alg. 1 lines 2-3).
    let phase1: Vec<_> = ranges
        .iter()
        .cloned()
        .map(|r| {
            let data = data.clone();
            check::spawn(move || data.with_range(r, scan_in_place))
        })
        .collect();
    for h in phase1 {
        h.join(); // line 4: sync()
    }

    // Phase 2: serialized carry propagation across chunk tails (lines 6-9).
    let phase2 = {
        let data = data.clone();
        let ranges = ranges.clone();
        move || {
            for w in ranges.windows(2) {
                let prev = data.read(w[0].end - 1);
                let cur = data.read(w[1].end - 1);
                data.write(w[1].end - 1, prev + cur);
            }
        }
    };
    // The seeded fault runs phase 2 on its own thread *concurrently* with
    // phase 3 instead of completing it first (missing line-10 sync()).
    let unsynced_carry = match fault {
        ScanFault::None => {
            phase2();
            None
        }
        ScanFault::SkipPhase2Sync => Some(check::spawn(phase2)),
    };

    // Phase 3: each chunk but the first adds its predecessor's global tail
    // to all of its elements except the last (lines 11-13).
    let phase3: Vec<_> = ranges
        .windows(2)
        .map(|w| {
            let (prev, cur) = (w[0].clone(), w[1].clone());
            let data = data.clone();
            check::spawn(move || {
                let carry = data.read(prev.end - 1);
                data.with_range(cur.start..cur.end - 1, |chunk| {
                    for x in chunk.iter_mut() {
                        *x += carry;
                    }
                })
            })
        })
        .collect();
    for h in phase3 {
        h.join();
    }
    if let Some(h) = unsynced_carry {
        h.join();
    }
    data.snapshot()
}

/// Model of the two-pass scan: parallel per-chunk totals, serial exclusive
/// scan of the totals, parallel seeded per-chunk re-scan. Must be called
/// inside a model.
pub fn two_pass_scan_model(input: Vec<u64>, chunks: usize) -> Vec<u64> {
    let n = input.len();
    let ranges = chunk_ranges(n, chunks);
    let data = check::Slice::new(input).named("scan.data");
    if ranges.len() <= 1 {
        data.with_range(0..n, scan_in_place);
        return data.snapshot();
    }

    // Pass 1: per-chunk totals, returned through join (thread-local result,
    // no shared writes).
    let totals: Vec<u64> = ranges
        .iter()
        .cloned()
        .map(|r| {
            let data = data.clone();
            check::spawn(move || data.read_range(r).iter().sum::<u64>())
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join())
        .collect();

    // Serial exclusive scan of the totals on the coordinator.
    let mut carries = totals;
    let mut acc = 0u64;
    for c in carries.iter_mut() {
        let next = acc + *c;
        *c = acc;
        acc = next;
    }

    // Pass 2: per-chunk scan seeded with the carry.
    let pass2: Vec<_> = ranges
        .iter()
        .cloned()
        .zip(carries)
        .map(|(r, carry)| {
            let data = data.clone();
            check::spawn(move || {
                data.with_range(r, |chunk| {
                    let mut acc = carry;
                    for x in chunk.iter_mut() {
                        acc += *x;
                        *x = acc;
                    }
                })
            })
        })
        .collect();
    for h in pass2 {
        h.join();
    }
    data.snapshot()
}

fn scan_in_place(chunk: &mut [u64]) {
    let mut acc = 0u64;
    for x in chunk.iter_mut() {
        acc += *x;
        *x = acc;
    }
}
