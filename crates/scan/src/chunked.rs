//! The paper's Algorithm 1: chunked two-phase parallel prefix sum.
//!
//! The input array is split into `p` chunks (Figure 2's dotted lines). The
//! algorithm then runs three phases:
//!
//! 1. **Per-chunk scan** (parallel): every processor computes the inclusive
//!    scan of its own chunk (Algorithm 1, lines 2–3).
//! 2. **Carry propagation** (serialized — the paper's `Lock()`/`Unlock()`
//!    region, lines 6–9): walking chunks in order, the *last* element of each
//!    chunk absorbs the last element of the previous chunk, so chunk `c`'s
//!    last element becomes the global prefix up to the end of chunk `c`.
//! 3. **Chunk fix-up** (parallel, lines 11–13): every chunk except the first
//!    adds the previous chunk's (now global) last element to all of its
//!    elements *except the last*, which was already fixed in phase 2.
//!
//! Two implementations are provided:
//!
//! * [`inclusive_scan_chunked_by`] expresses the phases as consecutive rayon
//!   parallel regions (a rayon scope join is the paper's `sync()`).
//! * [`inclusive_scan_chunked_lockstep_by`] is a structurally faithful
//!   transcription: `p` persistent worker threads run the whole algorithm,
//!   separated by real barriers, with the carry propagation performed inside a
//!   mutex-protected turn-taking region exactly as the pseudo-code describes.
//!   It exists to demonstrate (and test) that the phase-structured rayon
//!   version computes the same thing as the literal algorithm.

use parking_lot::{Condvar, Mutex};
use rayon::prelude::*;

use crate::op::{AddOp, ScanOp};
use crate::sequential::inclusive_scan_seq_by;
use parcsr_runtime::{chunk_ranges, split_mut_by_ranges};

/// In-place inclusive scan using the paper's chunked algorithm with `chunks`
/// logical processors, phrased as three rayon phases.
///
/// Output is identical to [`crate::inclusive_scan_seq_by`] for every valid
/// monoid, regardless of `chunks`.
pub fn inclusive_scan_chunked_by<T, O>(data: &mut [T], chunks: usize, op: &O)
where
    T: Copy + Send + Sync,
    O: ScanOp<T> + Sync,
{
    let ranges = chunk_ranges(data.len(), chunks);
    if ranges.len() <= 1 {
        inclusive_scan_seq_by(data, op);
        return;
    }

    // Phase 1: independent per-chunk scans (Alg. 1 lines 2-3).
    parcsr_obs::with_span("scan.chunk_pass", || {
        let parts = split_mut_by_ranges(data, &ranges);
        parts.into_par_iter().enumerate().for_each(|(i, chunk)| {
            let _span = parcsr_obs::enter_with_args(
                "scan.chunk",
                parcsr_obs::SpanArgs::new()
                    .chunk(i as u64)
                    .chunk_len(chunk.len() as u64),
            );
            inclusive_scan_seq_by(chunk, op);
        });
    });
    // Implicit sync(): the parallel iterator completes before we continue.

    // Phase 2: serialized carry propagation across chunk tails
    // (Alg. 1 lines 6-9; inherently a sequential chain).
    parcsr_obs::with_span("scan.carry", || {
        for w in ranges.windows(2) {
            let prev_last = data[w[0].end - 1];
            let cur_last = &mut data[w[1].end - 1];
            *cur_last = op.combine(prev_last, *cur_last);
        }
    });

    // Phase 3: each chunk (except the first) adds the previous chunk's global
    // prefix to all but its last element (Alg. 1 lines 11-13).
    parcsr_obs::with_span("scan.fixup", || {
        let carries: Vec<T> = ranges[..ranges.len() - 1]
            .iter()
            .map(|r| data[r.end - 1])
            .collect();
        let mut parts = split_mut_by_ranges(data, &ranges);
        // Drop the first chunk: it has no incoming carry.
        let rest = parts.split_off(1);
        rest.into_par_iter()
            .zip(carries.into_par_iter())
            .enumerate()
            .for_each(|(i, (chunk, carry))| {
                // Chunk 0 has no incoming carry, so fixup chunks start at 1.
                let _span = parcsr_obs::enter_with_args(
                    "scan.fixup_chunk",
                    parcsr_obs::SpanArgs::new()
                        .chunk(i as u64 + 1)
                        .chunk_len(chunk.len() as u64),
                );
                let last = chunk.len() - 1;
                for x in &mut chunk[..last] {
                    *x = op.combine(carry, *x);
                }
            });
    });
}

/// In-place inclusive prefix sum with the paper's chunked algorithm.
pub fn inclusive_scan_chunked<T>(data: &mut [T], chunks: usize)
where
    T: Copy + Send + Sync,
    AddOp: ScanOp<T>,
{
    inclusive_scan_chunked_by(data, chunks, &AddOp);
}

/// Turn-taking state for the lockstep carry-propagation region: `turn` is the
/// index of the chunk currently allowed to add its predecessor's tail.
struct TurnLock {
    state: Mutex<usize>,
    cv: Condvar,
}

impl TurnLock {
    fn new() -> Self {
        TurnLock {
            state: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Blocks until it is `me`'s turn, runs `f`, then passes the turn on.
    fn in_turn<R>(&self, me: usize, f: impl FnOnce() -> R) -> R {
        let mut turn = self.state.lock();
        while *turn != me {
            self.cv.wait(&mut turn);
        }
        let r = f();
        *turn += 1;
        self.cv.notify_all();
        r
    }
}

/// A reusable `p`-thread barrier (the paper's `sync()`).
struct Barrier {
    state: Mutex<(usize, usize)>, // (waiting count, generation)
    cv: Condvar,
    total: usize,
}

impl Barrier {
    fn new(total: usize) -> Self {
        Barrier {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            total,
        }
    }

    fn wait(&self) {
        let mut s = self.state.lock();
        let gen = s.1;
        s.0 += 1;
        if s.0 == self.total {
            s.0 = 0;
            s.1 = s.1.wrapping_add(1);
            self.cv.notify_all();
        } else {
            while s.1 == gen {
                self.cv.wait(&mut s);
            }
        }
    }
}

/// Structurally faithful transcription of Algorithm 1: `p` persistent threads,
/// real barriers for `sync()`, and a lock-guarded turn-taking region for the
/// carry propagation. Semantically identical to
/// [`inclusive_scan_chunked_by`]; measurably slower because of the explicit
/// synchronization, which the benches quantify.
pub fn inclusive_scan_chunked_lockstep_by<T, O>(data: &mut [T], chunks: usize, op: &O)
where
    T: Copy + Send + Sync,
    O: ScanOp<T> + Sync,
{
    let ranges = chunk_ranges(data.len(), chunks);
    if ranges.len() <= 1 {
        inclusive_scan_seq_by(data, op);
        return;
    }
    let p = ranges.len();
    let barrier = Barrier::new(p);
    let turn = TurnLock::new();

    // Tail values published by phase 2, read by phase 3. Indexed by chunk id;
    // slot `c` holds the global prefix at the end of chunk `c`.
    let tails: Vec<Mutex<Option<T>>> = (0..p).map(|_| Mutex::new(None)).collect();

    let parts = split_mut_by_ranges(data, &ranges);
    std::thread::scope(|scope| {
        for (pid, chunk) in parts.into_iter().enumerate() {
            let barrier = &barrier;
            let turn = &turn;
            let tails = &tails;
            scope.spawn(move || {
                // Lines 2-3: local inclusive scan.
                inclusive_scan_seq_by(chunk, op);
                // Line 4: sync().
                barrier.wait();

                // Lines 6-9: under the lock, in chunk order, absorb the
                // previous chunk's tail into our last element and publish
                // our own tail. Publication must happen inside the turn
                // region: the successor enters its turn the moment `turn`
                // increments, and must find the tail already there.
                turn.in_turn(pid, || {
                    let last = chunk.len() - 1;
                    if pid > 0 {
                        let prev = (*tails[pid - 1].lock())
                            .expect("predecessor published its tail in turn order");
                        chunk[last] = op.combine(prev, chunk[last]);
                    }
                    *tails[pid].lock() = Some(chunk[last]);
                });
                // Line 10: sync().
                barrier.wait();

                // Lines 11-13: add the predecessor's global tail to all but
                // the last element.
                if pid > 0 {
                    let carry = (*tails[pid - 1].lock()).expect("published before barrier");
                    let last = chunk.len() - 1;
                    for x in &mut chunk[..last] {
                        *x = op.combine(carry, *x);
                    }
                }
            });
        }
    });
}

/// Lockstep-thread variant of the chunked prefix sum (see
/// [`inclusive_scan_chunked_lockstep_by`]).
pub fn inclusive_scan_chunked_lockstep<T>(data: &mut [T], chunks: usize)
where
    T: Copy + Send + Sync,
    AddOp: ScanOp<T>,
{
    inclusive_scan_chunked_lockstep_by(data, chunks, &AddOp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MaxOp, XorOp};
    use crate::sequential::inclusive_scan_seq;

    fn reference(v: &[u64]) -> Vec<u64> {
        let mut r = v.to_vec();
        inclusive_scan_seq(&mut r);
        r
    }

    #[test]
    fn matches_figure_2_structure() {
        // A 16-element array in 4 chunks, as in the paper's Figure 2.
        let input: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let mut v = input.clone();
        inclusive_scan_chunked(&mut v, 4);
        assert_eq!(v, reference(&input));
    }

    #[test]
    fn all_chunk_counts_agree() {
        let input: Vec<u64> = (0..103).map(|i| (i * 31 + 7) % 97).collect();
        let want = reference(&input);
        for chunks in [1, 2, 3, 4, 7, 16, 64, 103, 500] {
            let mut v = input.clone();
            inclusive_scan_chunked(&mut v, chunks);
            assert_eq!(v, want, "chunks={chunks}");
        }
    }

    #[test]
    fn lockstep_matches_sequential() {
        let input: Vec<u64> = (0..57).map(|i| i * i % 13).collect();
        let want = reference(&input);
        for chunks in [1, 2, 3, 5, 8, 57] {
            let mut v = input.clone();
            inclusive_scan_chunked_lockstep(&mut v, chunks);
            assert_eq!(v, want, "chunks={chunks}");
        }
    }

    #[test]
    fn empty_and_tiny() {
        let mut v: Vec<u64> = vec![];
        inclusive_scan_chunked(&mut v, 4);
        assert!(v.is_empty());

        let mut v = vec![42u64];
        inclusive_scan_chunked(&mut v, 4);
        assert_eq!(v, [42]);

        let mut v = vec![1u64, 2];
        inclusive_scan_chunked(&mut v, 8);
        assert_eq!(v, [1, 3]);
    }

    #[test]
    fn chunk_of_size_one_each() {
        let input: Vec<u64> = vec![5, 5, 5, 5];
        let mut v = input.clone();
        inclusive_scan_chunked(&mut v, 4);
        assert_eq!(v, [5, 10, 15, 20]);
    }

    #[test]
    fn works_with_max_op() {
        let input: Vec<i64> = vec![3, -1, 4, 1, 5, -9, 2, 6];
        let mut want = input.clone();
        inclusive_scan_seq_by(&mut want, &MaxOp);
        let mut v = input.clone();
        inclusive_scan_chunked_by(&mut v, 3, &MaxOp);
        assert_eq!(v, want);
    }

    #[test]
    fn works_with_xor_op() {
        let input: Vec<u32> = (0..33u64).map(|i| (i * 2654435761 % 101) as u32).collect();
        let mut want = input.clone();
        inclusive_scan_seq_by(&mut want, &XorOp);
        let mut v = input.clone();
        inclusive_scan_chunked_by(&mut v, 5, &XorOp);
        assert_eq!(v, want);

        let mut v = input.clone();
        inclusive_scan_chunked_lockstep_by(&mut v, 5, &XorOp);
        assert_eq!(v, want);
    }

    #[test]
    fn lockstep_stress_under_concurrency() {
        // Regression test for a publication race: a thread must publish its
        // tail *inside* the turn region, or its successor can observe an
        // unpublished tail, panic, and strand the rest of the team on the
        // barrier. Many small scans from many threads make the race window
        // hit reliably if it exists.
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    for round in 0..200 {
                        let input: Vec<u64> = (0..64).map(|i| (i + t * 31 + round) % 17).collect();
                        let mut got = input.clone();
                        inclusive_scan_chunked_lockstep(&mut got, 8);
                        let mut want = input;
                        inclusive_scan_seq(&mut want);
                        assert_eq!(got, want, "t={t} round={round}");
                    }
                });
            }
        });
    }

    #[test]
    fn lockstep_heavier_thread_counts() {
        let input: Vec<u64> = (0..1000).map(|i| i % 7).collect();
        let want = reference(&input);
        let mut v = input.clone();
        inclusive_scan_chunked_lockstep(&mut v, 32);
        assert_eq!(v, want);
    }
}
