//! The idiomatic rayon two-pass scan.
//!
//! Where the paper's Algorithm 1 scans chunks *first* and then patches carries
//! in, the classic engineering formulation reduces first:
//!
//! 1. (parallel) compute each chunk's total;
//! 2. (serial, `O(p)`) exclusive-scan the chunk totals to get each chunk's
//!    incoming carry;
//! 3. (parallel) scan each chunk seeded with its carry.
//!
//! Both formulations do the same asymptotic work; the two-pass version reads
//! every element twice but never rewrites an element twice, which usually wins
//! on memory-bandwidth-bound inputs. The benches compare them head to head
//! (DESIGN.md ablation "scan").

use rayon::prelude::*;

use crate::op::{AddOp, ScanOp};
use crate::sequential::inclusive_scan_seq_by;
use parcsr_runtime::{chunk_ranges, split_mut_by_ranges};

/// In-place inclusive scan, two-pass formulation, with `chunks` logical
/// processors.
pub fn inclusive_scan_two_pass_by<T, O>(data: &mut [T], chunks: usize, op: &O)
where
    T: Copy + Send + Sync,
    O: ScanOp<T> + Sync,
{
    let ranges = chunk_ranges(data.len(), chunks);
    if ranges.len() <= 1 {
        inclusive_scan_seq_by(data, op);
        return;
    }

    // Pass 1: per-chunk totals.
    let mut carries: Vec<T> = parcsr_obs::with_span("scan.totals", || {
        let data = &*data;
        ranges
            .par_iter()
            .enumerate()
            .map(|(i, r)| {
                let _span = parcsr_obs::enter_with_args(
                    "scan.totals_chunk",
                    parcsr_obs::SpanArgs::new()
                        .chunk(i as u64)
                        .chunk_len(r.len() as u64),
                );
                data[r.clone()]
                    .iter()
                    .copied()
                    .fold(op.identity(), |a, b| op.combine(a, b))
            })
            .collect()
    });

    // Serial exclusive scan of the totals: carries[c] = prefix before chunk c.
    parcsr_obs::with_span("scan.carry", || {
        let mut acc = op.identity();
        for c in carries.iter_mut() {
            let next = op.combine(acc, *c);
            *c = acc;
            acc = next;
        }
    });

    // Pass 2: per-chunk scan seeded with the carry.
    parcsr_obs::with_span("scan.seeded", || {
        let parts = split_mut_by_ranges(data, &ranges);
        parts
            .into_par_iter()
            .zip(carries.into_par_iter())
            .enumerate()
            .for_each(|(i, (chunk, carry))| {
                let _span = parcsr_obs::enter_with_args(
                    "scan.seeded_chunk",
                    parcsr_obs::SpanArgs::new()
                        .chunk(i as u64)
                        .chunk_len(chunk.len() as u64),
                );
                let mut acc = carry;
                for x in chunk.iter_mut() {
                    acc = op.combine(acc, *x);
                    *x = acc;
                }
            });
    });
}

/// In-place inclusive prefix sum, two-pass formulation.
pub fn inclusive_scan_two_pass<T>(data: &mut [T], chunks: usize)
where
    T: Copy + Send + Sync,
    AddOp: ScanOp<T>,
{
    inclusive_scan_two_pass_by(data, chunks, &AddOp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MaxOp, XorOp};
    use crate::sequential::inclusive_scan_seq;

    #[test]
    fn matches_sequential_for_all_chunkings() {
        let input: Vec<u64> = (0..217).map(|i| (i * 13 + 5) % 31).collect();
        let mut want = input.clone();
        inclusive_scan_seq(&mut want);
        for chunks in [1, 2, 3, 8, 16, 217, 1000] {
            let mut v = input.clone();
            inclusive_scan_two_pass(&mut v, chunks);
            assert_eq!(v, want, "chunks={chunks}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut v: Vec<u32> = vec![];
        inclusive_scan_two_pass(&mut v, 4);
        assert!(v.is_empty());
        let mut v = vec![9u32];
        inclusive_scan_two_pass(&mut v, 4);
        assert_eq!(v, [9]);
    }

    #[test]
    fn non_commutative_safety_with_max() {
        // Max is commutative, but the test ensures operator dispatch works.
        let input: Vec<i64> = vec![5, 3, 9, 1, 2, 8, 0, 7];
        let mut want = input.clone();
        crate::sequential::inclusive_scan_seq_by(&mut want, &MaxOp);
        let mut v = input.clone();
        inclusive_scan_two_pass_by(&mut v, 3, &MaxOp);
        assert_eq!(v, want);
    }

    #[test]
    fn xor_scan() {
        let input: Vec<u16> = (0..57).map(|i| i * 7 % 16).collect();
        let mut want = input.clone();
        crate::sequential::inclusive_scan_seq_by(&mut want, &XorOp);
        let mut v = input.clone();
        inclusive_scan_two_pass_by(&mut v, 6, &XorOp);
        assert_eq!(v, want);
    }
}
