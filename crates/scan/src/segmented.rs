//! Segmented scans: independent prefix scans over consecutive segments of
//! one flat array, described by a CSR-style offset array.
//!
//! This is the scan shape the compressed graph pipeline actually produces:
//! the column array `jA` plus the offset array `iA` *is* a segmented
//! sequence, and decoding every gap-coded row at once is exactly a segmented
//! inclusive scan (each row an independent running sum). Blelloch \[12\]
//! lists the segmented scan as the canonical derived operation; here it is
//! parallelized over segments, which is both simple and optimal when there
//! are many more segments than processors (n ≫ p — always true for graphs).

use rayon::prelude::*;

use crate::op::{AddOp, ScanOp};
use crate::sequential::inclusive_scan_seq_by;

/// Validates a CSR-style offset array over `data`: non-decreasing, starting
/// at 0, ending at `data.len()`.
fn check_offsets<T>(data: &[T], offsets: &[u64]) {
    assert!(!offsets.is_empty(), "offsets must have at least one entry");
    assert_eq!(offsets[0], 0, "offsets must start at 0");
    assert_eq!(
        *offsets.last().expect("non-empty") as usize,
        data.len(),
        "offsets must end at data length"
    );
    debug_assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "offsets must be non-decreasing"
    );
}

/// In-place inclusive scan of every segment independently:
/// `data[offsets[s]..offsets[s+1]]` becomes its own inclusive scan.
/// Parallel over segments.
///
/// # Panics
///
/// Panics if the offsets are not a valid CSR offset array for `data`.
pub fn segmented_inclusive_scan_by<T, O>(data: &mut [T], offsets: &[u64], op: &O)
where
    T: Copy + Send + Sync,
    O: ScanOp<T> + Sync,
{
    check_offsets(data, offsets);
    // Split the flat array at segment boundaries and scan each in parallel.
    let mut segments: Vec<&mut [T]> = Vec::with_capacity(offsets.len() - 1);
    let mut rest = data;
    for w in offsets.windows(2) {
        let (seg, tail) = std::mem::take(&mut rest).split_at_mut((w[1] - w[0]) as usize);
        segments.push(seg);
        rest = tail;
    }
    segments
        .into_par_iter()
        .for_each(|seg| inclusive_scan_seq_by(seg, op));
}

/// In-place segmented inclusive prefix sum.
///
/// # Panics
///
/// Panics if the offsets are not a valid CSR offset array for `data`.
pub fn segmented_inclusive_scan<T>(data: &mut [T], offsets: &[u64])
where
    T: Copy + Send + Sync,
    AddOp: ScanOp<T>,
{
    segmented_inclusive_scan_by(data, offsets, &AddOp);
}

/// Reduces every segment with `op`, returning one value per segment
/// (`identity` for empty segments). Parallel over segments.
///
/// # Panics
///
/// Panics if the offsets are not a valid CSR offset array for `data`.
pub fn segmented_reduce_by<T, O>(data: &[T], offsets: &[u64], op: &O) -> Vec<T>
where
    T: Copy + Send + Sync,
    O: ScanOp<T> + Sync,
{
    check_offsets(data, offsets);
    offsets
        .par_windows(2)
        .map(|w| {
            data[w[0] as usize..w[1] as usize]
                .iter()
                .copied()
                .fold(op.identity(), |a, b| op.combine(a, b))
        })
        .collect()
}

/// Per-segment sums.
///
/// # Panics
///
/// Panics if the offsets are not a valid CSR offset array for `data`.
pub fn segmented_sum<T>(data: &[T], offsets: &[u64]) -> Vec<T>
where
    T: Copy + Send + Sync,
    AddOp: ScanOp<T>,
{
    segmented_reduce_by(data, offsets, &AddOp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MaxOp;

    #[test]
    fn independent_segment_scans() {
        let mut data = vec![1u64, 2, 3, 10, 20, 5];
        let offsets = vec![0, 3, 5, 6];
        segmented_inclusive_scan(&mut data, &offsets);
        assert_eq!(data, [1, 3, 6, 10, 30, 5]);
    }

    #[test]
    fn empty_segments_are_fine() {
        let mut data = vec![7u64, 8];
        let offsets = vec![0, 0, 1, 1, 2, 2];
        segmented_inclusive_scan(&mut data, &offsets);
        assert_eq!(data, [7, 8]);
    }

    #[test]
    fn whole_array_as_one_segment_equals_plain_scan() {
        let mut data: Vec<u64> = (1..=10).collect();
        segmented_inclusive_scan(&mut data, &[0, 10]);
        let mut want: Vec<u64> = (1..=10).collect();
        crate::sequential::inclusive_scan_seq(&mut want);
        assert_eq!(data, want);
    }

    #[test]
    fn gap_decode_all_rows_at_once() {
        // Two gap-coded rows [5, +2, +1] and [100, +50]; the segmented scan
        // decodes both simultaneously.
        let mut data = vec![5u64, 2, 1, 100, 50];
        segmented_inclusive_scan(&mut data, &[0, 3, 5]);
        assert_eq!(data, [5, 7, 8, 100, 150]);
    }

    #[test]
    fn segmented_max() {
        let mut data = vec![3i64, 9, 1, 4, 4, 2];
        segmented_inclusive_scan_by(&mut data, &[0, 2, 6], &MaxOp);
        assert_eq!(data, [3, 9, 1, 4, 4, 4]);
    }

    #[test]
    fn reduce_and_sum() {
        let data = vec![1u64, 2, 3, 10, 20, 5];
        let offsets = vec![0, 3, 5, 6];
        assert_eq!(segmented_sum(&data, &offsets), [6, 30, 5]);
        assert_eq!(segmented_reduce_by(&data, &offsets, &MaxOp), [3, 20, 5]);
        let empties = segmented_sum(&data, &[0, 0, 6, 6]);
        assert_eq!(empties, [0, 41, 0]);
    }

    #[test]
    fn empty_data_single_offset_pairing() {
        let mut data: Vec<u64> = vec![];
        segmented_inclusive_scan(&mut data, &[0]);
        assert!(segmented_sum(&data, &[0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "end at data length")]
    fn bad_offsets_rejected() {
        let mut data = vec![1u64, 2];
        segmented_inclusive_scan(&mut data, &[0, 5]);
    }
}
