//! A small façade selecting a scan algorithm at runtime.
//!
//! The CSR builder and the benches both need "scan these degrees with
//! algorithm X and p processors" as a runtime decision; [`Scanner`] carries
//! that configuration.

use crate::blelloch::{exclusive_scan_blelloch_by, inclusive_scan_blelloch_by};
use crate::chunked::{inclusive_scan_chunked_by, inclusive_scan_chunked_lockstep_by};
use crate::op::{AddOp, ScanOp};
use crate::sequential::{exclusive_scan_seq_by, inclusive_scan_seq_by};
use crate::two_pass::inclusive_scan_two_pass_by;

/// Which scan implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanAlgorithm {
    /// Single-threaded baseline.
    Sequential,
    /// The paper's Algorithm 1 (rayon-phase formulation).
    Chunked,
    /// The paper's Algorithm 1 with persistent threads, barriers and the
    /// lock-guarded carry region — the literal pseudo-code transcription.
    ChunkedLockstep,
    /// Blelloch work-efficient tree scan (out-of-place internally).
    Blelloch,
    /// Idiomatic rayon two-pass (reduce-then-scan) formulation.
    TwoPass,
}

impl ScanAlgorithm {
    /// All algorithms, for exhaustive equivalence tests and bench sweeps.
    pub const ALL: [ScanAlgorithm; 5] = [
        ScanAlgorithm::Sequential,
        ScanAlgorithm::Chunked,
        ScanAlgorithm::ChunkedLockstep,
        ScanAlgorithm::Blelloch,
        ScanAlgorithm::TwoPass,
    ];

    /// Stable human-readable name (used in bench output).
    pub fn name(self) -> &'static str {
        match self {
            ScanAlgorithm::Sequential => "sequential",
            ScanAlgorithm::Chunked => "chunked",
            ScanAlgorithm::ChunkedLockstep => "chunked-lockstep",
            ScanAlgorithm::Blelloch => "blelloch",
            ScanAlgorithm::TwoPass => "two-pass",
        }
    }
}

/// Runtime-configured scan dispatcher.
///
/// `chunks` defaults to the rayon thread-pool width, matching the paper's
/// "one chunk per processor" setup.
#[derive(Debug, Clone, Copy)]
pub struct Scanner {
    algorithm: ScanAlgorithm,
    chunks: usize,
}

impl Scanner {
    /// Creates a scanner with `chunks` equal to the current rayon parallelism.
    pub fn new(algorithm: ScanAlgorithm) -> Self {
        Scanner {
            algorithm,
            chunks: rayon::current_num_threads(),
        }
    }

    /// Creates a scanner with an explicit chunk (processor) count.
    pub fn with_chunks(algorithm: ScanAlgorithm, chunks: usize) -> Self {
        Scanner {
            algorithm,
            chunks: chunks.max(1),
        }
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> ScanAlgorithm {
        self.algorithm
    }

    /// The configured chunk count.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// In-place inclusive scan with the configured algorithm and operator.
    pub fn inclusive_scan_in_place_by<T, O>(&self, data: &mut [T], op: &O)
    where
        T: Copy + Send + Sync,
        O: ScanOp<T> + Sync,
    {
        match self.algorithm {
            ScanAlgorithm::Sequential => inclusive_scan_seq_by(data, op),
            ScanAlgorithm::Chunked => inclusive_scan_chunked_by(data, self.chunks, op),
            ScanAlgorithm::ChunkedLockstep => {
                inclusive_scan_chunked_lockstep_by(data, self.chunks, op)
            }
            ScanAlgorithm::Blelloch => {
                let out = inclusive_scan_blelloch_by(data, op);
                data.copy_from_slice(&out);
            }
            ScanAlgorithm::TwoPass => inclusive_scan_two_pass_by(data, self.chunks, op),
        }
    }

    /// In-place inclusive prefix sum.
    pub fn inclusive_scan_in_place<T>(&self, data: &mut [T])
    where
        T: Copy + Send + Sync,
        AddOp: ScanOp<T>,
    {
        self.inclusive_scan_in_place_by(data, &AddOp);
    }

    /// Out-of-place exclusive scan (what the CSR offset array needs).
    pub fn exclusive_scan_by<T, O>(&self, data: &[T], op: &O) -> Vec<T>
    where
        T: Copy + Send + Sync,
        O: ScanOp<T> + Sync,
    {
        match self.algorithm {
            ScanAlgorithm::Sequential => {
                let mut out = data.to_vec();
                exclusive_scan_seq_by(&mut out, op);
                out
            }
            ScanAlgorithm::Blelloch => exclusive_scan_blelloch_by(data, op),
            // The chunked family is defined inclusively in the paper; derive
            // the exclusive form by scanning a copy and shifting right by one.
            _ => {
                if data.is_empty() {
                    return Vec::new();
                }
                let mut inc = data.to_vec();
                self.inclusive_scan_in_place_by(&mut inc, op);
                let mut out = Vec::with_capacity(data.len());
                out.push(op.identity());
                out.extend_from_slice(&inc[..data.len().saturating_sub(1)]);
                out
            }
        }
    }

    /// Out-of-place exclusive prefix sum.
    pub fn exclusive_scan<T>(&self, data: &[T]) -> Vec<T>
    where
        T: Copy + Send + Sync,
        AddOp: ScanOp<T>,
    {
        self.exclusive_scan_by(data, &AddOp)
    }
}

impl Default for Scanner {
    /// The paper's default configuration: chunked scan, one chunk per
    /// processor.
    fn default() -> Self {
        Scanner::new(ScanAlgorithm::Chunked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{exclusive_scan_seq, inclusive_scan_seq};

    #[test]
    fn every_algorithm_matches_sequential() {
        let input: Vec<u64> = (0..331).map(|i| (i * 7 + 3) % 23).collect();
        let mut want_inc = input.clone();
        inclusive_scan_seq(&mut want_inc);
        let mut want_exc = input.clone();
        exclusive_scan_seq(&mut want_exc);

        for alg in ScanAlgorithm::ALL {
            for chunks in [1, 2, 5, 16] {
                let s = Scanner::with_chunks(alg, chunks);
                let mut v = input.clone();
                s.inclusive_scan_in_place(&mut v);
                assert_eq!(v, want_inc, "{} chunks={chunks} inclusive", alg.name());

                let exc = s.exclusive_scan(&input);
                assert_eq!(exc, want_exc, "{} chunks={chunks} exclusive", alg.name());
            }
        }
    }

    #[test]
    fn exclusive_scan_empty() {
        for alg in ScanAlgorithm::ALL {
            let s = Scanner::with_chunks(alg, 4);
            assert!(s.exclusive_scan::<u64>(&[]).is_empty(), "{}", alg.name());
        }
    }

    #[test]
    fn default_uses_current_parallelism() {
        let s = Scanner::default();
        assert_eq!(s.algorithm(), ScanAlgorithm::Chunked);
        assert_eq!(s.chunks(), rayon::current_num_threads());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ScanAlgorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ScanAlgorithm::ALL.len());
    }
}
