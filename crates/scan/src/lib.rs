#![warn(missing_docs)]

//! Parallel prefix-sum (scan) primitives.
//!
//! This crate implements the scan algorithms the paper builds its CSR
//! construction pipeline on (Section III-A1, Algorithm 1, Figure 2):
//!
//! * [`sequential`] — the baseline single-threaded inclusive/exclusive scans.
//! * [`chunked`] — the paper's Algorithm 1: split the array into one chunk per
//!   processor, scan each chunk independently, serially propagate each chunk's
//!   last element into the next chunk's last element (the paper's
//!   `Lock()`/`Unlock()` region), then in parallel add the carried-in prefix to
//!   the remaining elements of every chunk.
//! * [`blelloch`] — Blelloch's work-efficient tree scan (up-sweep/down-sweep),
//!   `O(n)` work and `O(log n)` depth, cited by the paper as [12].
//! * [`two_pass`] — the idiomatic rayon two-pass scan (per-chunk totals first,
//!   tiny serial scan of the totals, then per-chunk scan with an initial
//!   carry). Used as an engineering comparison point in the benches.
//! * [`segmented`] — independent scans/reductions over CSR-style segments
//!   (Blelloch's canonical derived operation; what batch-decoding gap-coded
//!   rows amounts to).
//!
//! All algorithms are generic over a [`ScanOp`] monoid, so the same machinery
//! computes degree-array prefix sums (`AddOp`), running maxima (`MaxOp`), and
//! the XOR parity scans used by the time-evolving differential CSR (`XorOp`).
//!
//! Every parallel implementation is *deterministic*: for a fixed input and
//! operator it produces bit-identical output regardless of thread count, and
//! is property-tested against the sequential scan.
//!
//! # Example
//!
//! ```
//! use parcsr_scan::{inclusive_scan_chunked, Scanner, ScanAlgorithm};
//!
//! let mut degrees = vec![1u64, 2, 1, 2, 1, 1, 1, 2, 2, 1];
//! inclusive_scan_chunked(&mut degrees, 4);
//! assert_eq!(degrees, [1, 3, 4, 6, 7, 8, 9, 11, 13, 14]);
//!
//! let scanner = Scanner::new(ScanAlgorithm::Blelloch);
//! let offsets = scanner.exclusive_scan(&[1u64, 2, 1, 2]);
//! assert_eq!(offsets, [0, 1, 3, 4]);
//! ```

pub mod blelloch;
#[cfg(parcsr_check)]
pub mod checked;
pub mod chunked;
pub mod op;
pub mod scanner;
pub mod segmented;
pub mod sequential;
pub mod two_pass;

pub use blelloch::{
    exclusive_scan_blelloch, exclusive_scan_blelloch_by, inclusive_scan_blelloch,
    inclusive_scan_blelloch_by,
};
pub use chunked::{
    inclusive_scan_chunked, inclusive_scan_chunked_by, inclusive_scan_chunked_lockstep,
    inclusive_scan_chunked_lockstep_by,
};
pub use op::{AddOp, MaxOp, MinOp, ScanOp, XorOp};
pub use scanner::{ScanAlgorithm, Scanner};
pub use segmented::{
    segmented_inclusive_scan, segmented_inclusive_scan_by, segmented_reduce_by, segmented_sum,
};
pub use sequential::{
    exclusive_scan_seq, exclusive_scan_seq_by, inclusive_scan_seq, inclusive_scan_seq_by,
};
pub use two_pass::{inclusive_scan_two_pass, inclusive_scan_two_pass_by};
// Chunk planning lives in the shared `parcsr-runtime` crate; re-exported
// here because every scan entry point takes a chunk count and callers
// historically imported the planners from this crate.
pub use parcsr_runtime::{
    chunk_ranges, chunk_ranges_by_prefix_sum, chunk_ranges_weighted, split_mut_by_ranges,
};
