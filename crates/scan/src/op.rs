//! Scan operators (monoids).
//!
//! A scan is defined over any associative operator with an identity element.
//! The paper only needs integer addition (degree prefix sums), but the
//! time-evolving differential CSR reuses the same chunked-scan skeleton with an
//! XOR-like "difference propagation" step, so the operator is abstracted here.

/// An associative operator with an identity element, over values of type `T`.
///
/// Implementations must satisfy the monoid laws; the property tests in this
/// crate check them on the provided operators:
///
/// * associativity: `combine(a, combine(b, c)) == combine(combine(a, b), c)`
/// * identity: `combine(identity(), a) == a == combine(a, identity())`
///
/// Operators must be [`Sync`] because parallel scans share them across worker
/// threads.
pub trait ScanOp<T>: Sync {
    /// The identity element of the monoid.
    fn identity(&self) -> T;
    /// Combines two values. Must be associative.
    fn combine(&self, a: T, b: T) -> T;
}

/// Wrapping integer addition.
///
/// Wrapping (rather than panicking) semantics keep the operator total, so the
/// monoid laws hold for *all* inputs — a requirement for the property tests
/// and for scan results to be independent of chunking. Callers that need
/// overflow detection should scan in a wider type (the CSR builder scans
/// degrees as `u64`, which cannot overflow for any graph that fits in memory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddOp;

/// Maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxOp;

/// Minimum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinOp;

/// Bitwise XOR.
///
/// Used by the temporal crate to propagate edge-parity "differences" across
/// chunks with the same skeleton as the additive scan (Section IV: an edge
/// occurring an even number of times within an interval is inactive, odd is
/// active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XorOp;

macro_rules! impl_int_ops {
    ($($t:ty),*) => {$(
        impl ScanOp<$t> for AddOp {
            #[inline]
            fn identity(&self) -> $t { 0 }
            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t { a.wrapping_add(b) }
        }
        impl ScanOp<$t> for MaxOp {
            #[inline]
            fn identity(&self) -> $t { <$t>::MIN }
            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t { a.max(b) }
        }
        impl ScanOp<$t> for MinOp {
            #[inline]
            fn identity(&self) -> $t { <$t>::MAX }
            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t { a.min(b) }
        }
        impl ScanOp<$t> for XorOp {
            #[inline]
            fn identity(&self) -> $t { 0 }
            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t { a ^ b }
        }
    )*};
}

impl_int_ops!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_identity_and_combine() {
        let op = AddOp;
        assert_eq!(ScanOp::<u64>::identity(&op), 0);
        assert_eq!(op.combine(3u64, 4u64), 7);
    }

    #[test]
    fn add_wraps_instead_of_panicking() {
        let op = AddOp;
        assert_eq!(op.combine(u64::MAX, 1u64), 0);
        assert_eq!(op.combine(u8::MAX, 2u8), 1);
    }

    #[test]
    fn max_identity_is_min_value() {
        let op = MaxOp;
        assert_eq!(ScanOp::<i32>::identity(&op), i32::MIN);
        assert_eq!(op.combine(-5i32, 3i32), 3);
    }

    #[test]
    fn min_identity_is_max_value() {
        let op = MinOp;
        assert_eq!(ScanOp::<u32>::identity(&op), u32::MAX);
        assert_eq!(op.combine(5u32, 3u32), 3);
    }

    #[test]
    fn xor_is_self_inverse() {
        let op = XorOp;
        let a = 0b1010u8;
        assert_eq!(op.combine(op.combine(a, a), 0b0110), 0b0110);
    }

    #[test]
    fn associativity_spot_checks() {
        let add = AddOp;
        let max = MaxOp;
        let xor = XorOp;
        for &(a, b, c) in &[
            (1u64, 2, 3),
            (u64::MAX, 7, 9),
            (0, 0, 0),
            (42, 0, u64::MAX / 2),
        ] {
            assert_eq!(
                add.combine(a, add.combine(b, c)),
                add.combine(add.combine(a, b), c)
            );
            assert_eq!(
                max.combine(a, max.combine(b, c)),
                max.combine(max.combine(a, b), c)
            );
            assert_eq!(
                xor.combine(a, xor.combine(b, c)),
                xor.combine(xor.combine(a, b), c)
            );
        }
    }
}
