//! Chunking utilities shared by every parallel algorithm in the workspace.
//!
//! The paper's algorithms all start the same way: "divide the array into `p`
//! chunks, one per processor". [`chunk_ranges`] is the single source of truth
//! for that division so the scan, degree-computation, bit-packing and TCSR
//! pipelines agree on chunk boundaries.

use std::ops::Range;

/// Splits `0..len` into at most `chunks` contiguous, non-empty ranges of
/// near-equal size (sizes differ by at most one, larger chunks first).
///
/// Returns fewer than `chunks` ranges when `len < chunks`, and an empty vector
/// when `len == 0`. `chunks == 0` is treated as `1` so callers can pass a
/// "number of processors" value straight through without special-casing.
///
/// ```
/// use parcsr_scan::chunk_ranges;
/// assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
/// assert_eq!(chunk_ranges(2, 8).len(), 2);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Splits `0..weights.len()` into at most `chunks` contiguous, non-empty
/// ranges of near-equal total *weight* — the size-aware alternative to
/// [`chunk_ranges`] for skewed inputs (hub rows), where equal element counts
/// leave one chunk with most of the work.
///
/// Boundaries are placed greedily: chunk `i` ends at the first element where
/// the cumulative weight reaches `total × (i + 1) / chunks`, while always
/// taking at least one element and leaving at least one for each remaining
/// chunk. Returns exactly `min(chunks, weights.len())` ranges covering the
/// input contiguously; an all-zero weight vector falls back to
/// [`chunk_ranges`]. `chunks == 0` is treated as `1`.
///
/// ```
/// use parcsr_scan::chunk_ranges_weighted;
/// // A hub at the front: element 0 alone is half the work.
/// assert_eq!(chunk_ranges_weighted(&[6, 1, 1, 1, 1, 2], 2), vec![0..1, 1..6]);
/// assert_eq!(chunk_ranges_weighted(&[0, 0, 0, 0], 2), vec![0..2, 2..4]);
/// ```
pub fn chunk_ranges_weighted(weights: &[u64], chunks: usize) -> Vec<Range<usize>> {
    let len = weights.len();
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(len);
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        return chunk_ranges(len, chunks);
    }
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    let mut cum: u128 = 0;
    for i in 0..chunks {
        let target = total * (i as u128 + 1) / chunks as u128;
        // Leave at least one element for each of the remaining chunks; the
        // last chunk takes everything left (a zero-weight tail would
        // otherwise satisfy the target early and strand elements).
        let max_end = len - (chunks - i - 1);
        let mut end = start + 1;
        cum += u128::from(weights[start]);
        while end < max_end && cum < target {
            cum += u128::from(weights[end]);
            end += 1;
        }
        if i == chunks - 1 {
            end = len;
        }
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Splits a mutable slice into disjoint sub-slices described by `ranges`.
///
/// The ranges must be sorted, non-overlapping and contained in
/// `0..data.len()` — exactly what [`chunk_ranges`] produces. Gaps between
/// ranges are allowed (the gap elements are simply not handed out).
///
/// # Panics
///
/// Panics if the ranges are out of order or exceed the slice length.
pub fn split_mut_by_ranges<'a, T>(
    mut data: &'a mut [T],
    ranges: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0;
    for r in ranges {
        assert!(r.start >= consumed, "ranges must be sorted and disjoint");
        let (_, rest) = data.split_at_mut(r.start - consumed);
        let (piece, rest) = rest.split_at_mut(r.end - r.start);
        out.push(piece);
        data = rest;
        consumed = r.end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        assert_eq!(chunk_ranges(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn uneven_split_puts_extra_in_leading_chunks() {
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn more_chunks_than_elements() {
        let r = chunk_ranges(3, 10);
        assert_eq!(r, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn zero_len_is_empty() {
        assert!(chunk_ranges(0, 5).is_empty());
    }

    #[test]
    fn zero_chunks_treated_as_one() {
        assert_eq!(chunk_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn single_chunk() {
        assert_eq!(chunk_ranges(7, 1), vec![0..7]);
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for len in [1usize, 2, 3, 10, 97, 1000] {
            for chunks in [1usize, 2, 3, 7, 64, 1500] {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "contiguous");
                    assert!(!r.is_empty(), "non-empty");
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, len);
                // Sizes differ by at most one.
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn weighted_split_isolates_a_hub() {
        // Element 0 carries half the weight: it gets a chunk of its own.
        assert_eq!(
            chunk_ranges_weighted(&[6, 1, 1, 1, 1, 2], 2),
            vec![0..1, 1..6]
        );
        // Uniform weights reduce to the near-equal element split.
        assert_eq!(
            chunk_ranges_weighted(&[1; 8], 4),
            vec![0..2, 2..4, 4..6, 6..8]
        );
    }

    #[test]
    fn weighted_split_edge_cases() {
        assert!(chunk_ranges_weighted(&[], 4).is_empty());
        assert_eq!(chunk_ranges_weighted(&[3, 3], 0), vec![0..2]);
        assert_eq!(chunk_ranges_weighted(&[0, 0, 0, 0], 2), vec![0..2, 2..4]);
        // More chunks than elements: one element each.
        assert_eq!(
            chunk_ranges_weighted(&[5, 1, 1], 10),
            vec![0..1, 1..2, 2..3]
        );
        // A zero-weight tail still gets covered by the last chunk.
        assert_eq!(chunk_ranges_weighted(&[5, 0, 0], 1), vec![0..3]);
        assert_eq!(chunk_ranges_weighted(&[5, 5, 0, 0], 2), vec![0..1, 1..4]);
    }

    #[test]
    fn weighted_ranges_cover_exactly_once_and_balance() {
        // A deterministic skewed weight vector: one hub plus a long tail.
        let weights: Vec<u64> = (0..1000u64)
            .map(|i| if i == 17 { 5000 } else { 1 + i % 7 })
            .collect();
        for chunks in [1usize, 2, 3, 7, 64, 1500] {
            let ranges = chunk_ranges_weighted(&weights, chunks);
            assert_eq!(ranges.len(), chunks.min(weights.len()).max(1));
            let mut prev_end = 0;
            for r in &ranges {
                assert_eq!(r.start, prev_end, "contiguous");
                assert!(!r.is_empty(), "non-empty");
                prev_end = r.end;
            }
            assert_eq!(prev_end, weights.len());
            // No chunk except a single-element one exceeds its fair share
            // by more than the largest single weight.
            let total: u64 = weights.iter().sum();
            let fair = total / chunks as u64;
            for r in &ranges {
                let w: u64 = weights[r.clone()].iter().sum();
                assert!(
                    r.len() == 1 || w <= fair + 5000,
                    "chunk {r:?} weight {w} vs fair {fair}"
                );
            }
        }
    }

    #[test]
    fn split_mut_matches_ranges() {
        let mut data: Vec<u32> = (0..10).collect();
        let ranges = chunk_ranges(10, 3);
        let parts = split_mut_by_ranges(&mut data, &ranges);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2, 3]);
        assert_eq!(parts[1], &[4, 5, 6]);
        assert_eq!(parts[2], &[7, 8, 9]);
    }

    #[test]
    fn split_mut_allows_gaps() {
        let mut data: Vec<u32> = (0..10).collect();
        let parts = split_mut_by_ranges(&mut data, &[1..3, 5..6]);
        assert_eq!(parts[0], &[1, 2]);
        assert_eq!(parts[1], &[5]);
    }

    #[test]
    fn split_mut_pieces_are_writable() {
        let mut data = vec![0u8; 6];
        let ranges = chunk_ranges(6, 2);
        let mut parts = split_mut_by_ranges(&mut data, &ranges);
        for p in parts.iter_mut() {
            for x in p.iter_mut() {
                *x = 9;
            }
        }
        assert_eq!(data, vec![9; 6]);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn split_mut_rejects_overlap() {
        let mut data = vec![0u8; 6];
        let _ = split_mut_by_ranges(&mut data, &[0..3, 2..5]);
    }
}
