// All three covered shapes: the closure form (`with_span(.., || ..)`),
// the guard form (`let _g = span!(..)` live in the same fn), and a call
// in a nested block under an `enter_with_args` opener.

fn closure_form(plan: Vec<Chunk>) -> u64 {
    with_span("stage", || {
        run_chunked_plan("s", plan, |c| c.index)
    })
}

fn guard_form(n: usize) -> u64 {
    let _g = span!("stage");
    run_chunked("s", n, |c| c.index)
}

fn nested_block(plan: Vec<Chunk>) -> u64 {
    enter_with_args("outer", 1);
    {
        run_chunked_plan("s", plan, |c| c.index)
    }
}
