//@ expect-line: 11
//@ expect-line: 19
// Uncovered chunked calls: one whose span guard lived in a block that
// closed before the call, and one in a fn with no span at all (the span
// in the *previous* fn must not leak across the item boundary).

fn closed_block(plan: Vec<Chunk>) -> u64 {
    {
        let _g = enter("setup");
    }
    run_chunked_plan("s", plan, |c| c.index)
}

fn spanned_elsewhere() {
    let _g = span!("other");
}

fn bare(n: usize) -> u64 {
    run_chunked("s", n, |c| c.index)
}
