//@ path: crates/bitpack/src/cursor.rs
// A HOT_PATHS file: every function is implicitly hot. This one stays
// allocation-free, so it lints clean with no markers at all.

pub struct Cursor<'a> {
    words: &'a [u64],
    bit: usize,
}

impl<'a> Cursor<'a> {
    pub fn advance(&mut self, width: usize) -> u64 {
        let word = self.words[self.bit / 64];
        self.bit += width;
        word >> (self.bit % 64)
    }
}

#[cfg(test)]
mod tests {
    // Test modules in hot files may allocate: exempt from the cutoff down.
    fn helper() -> Vec<u64> {
        (0..4u64).collect()
    }
}
