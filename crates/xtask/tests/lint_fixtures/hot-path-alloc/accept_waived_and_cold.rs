// Cold functions may allocate freely; hot functions may allocate only
// under an explained waiver; allocation tokens inside comments and raw
// strings never count.

fn cold_setup(n: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    v.extend((0..n as u32).collect::<Vec<_>>());
    v
}

// LINT: hot
fn hot_decode(n: usize) -> Vec<u32> {
    // LINT: alloc-ok(the result vector is the API contract; sized exactly once)
    let mut out = Vec::with_capacity(n);
    for i in 0..n as u32 {
        out.push(i);
    }
    out
}

// LINT: hot
fn hot_docs() -> &'static str {
    // Vec::new and format! in this comment are prose, not code.
    r#" vec![ Box::new String::from .collect() .to_owned() "#
}
