//@ expect-line: 9
// A hot-marked function allocating inside a nested closure: the hotness
// propagates through the closure scope and the `.collect()` is flagged.

// LINT: hot
fn hot_sum(xs: &[u32]) -> u32 {
    xs.iter()
        .map(|x| {
            let doubled: Vec<u32> = xs.iter().map(|y| y + x).collect();
            doubled.len() as u32
        })
        .sum()
}
