//@ path: crates/core/src/query.rs
//@ expect-line: 7
// An unwaived allocation anywhere in a HOT_PATHS file is a violation —
// no `LINT: hot` marker needed.

fn probe_buffer(n: usize) -> Vec<u64> {
    let mut buf = Vec::with_capacity(n);
    buf.push(0);
    buf
}
