//@ expect-line: 6
//@ expect-line: 9
// Malformed directives are violations themselves: an unknown directive
// word, and an `alloc-ok` waiver that carries no reason.

// LINT: frobnicate
fn a() {}

// LINT: alloc-ok()
fn b() {}
