// Well-formed directives parse clean: `hot` arms the allocation ban for
// the next fn (which stays allocation-free here), and `alloc-ok` with a
// reason registers an explained waiver instead of a violation.

// LINT: hot — steady-state accessor, must stay allocation-free.
fn peek(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

fn build(n: usize) -> Vec<u64> {
    // LINT: alloc-ok(cold construction path; the output buffer is the API contract)
    let mut v = Vec::with_capacity(n);
    v.push(1);
    v
}
