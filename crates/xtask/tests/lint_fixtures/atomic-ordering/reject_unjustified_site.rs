//@ expect-line: 9
// An explicit `Ordering::Relaxed` site with no `ORDERING:` justification
// in the contiguous comment block above it. The stale comment further up
// does not attach: the blank line below it ends the block.

// ORDERING: this comment is separated from the site and must not count.

fn bump(c: &std::sync::atomic::AtomicU64) {
    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
