// Both justification styles: a justified `use` import covering the file's
// bare variant uses, and explicit `Ordering::X` paths justified per site
// (one comment may cover a contiguous cluster of sites).

// ORDERING: Relaxed throughout — independent statistics counters, read
// only after the workload's join barrier.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Relaxed);
}

fn publish(flag: &std::sync::atomic::AtomicBool, a: &AtomicU64, b: &AtomicU64) {
    // ORDERING: Release store pairs with the Acquire load in `consume`;
    // both counters above are published by it (cluster justification).
    a.store(1, std::sync::atomic::Ordering::Relaxed);
    b.store(2, std::sync::atomic::Ordering::Relaxed);
    flag.store(true, std::sync::atomic::Ordering::Release);
}

fn consume(flag: &std::sync::atomic::AtomicBool) -> bool {
    flag.load(std::sync::atomic::Ordering::Acquire) // ORDERING: pairs with the Release store in `publish`.
}
