//@ path: crates/runtime/src/fixture.rs
// Guards that are scoped, dropped, shadowed, or consumed within their own
// statement are all dead by the time the parallel region starts. (Linted
// under a runtime path: the span-coverage pass exempts the runtime crate,
// so these bare chunked calls exercise only the guard-liveness rule.)

fn scoped(m: &std::sync::Mutex<u32>, plan: Vec<Chunk>) {
    {
        let g = m.lock().unwrap();
        let _ = *g;
    }
    run_chunked_plan("s", plan, |c| c.index);
}

fn dropped(m: &std::sync::Mutex<u32>, plan: Vec<Chunk>) {
    let g = m.lock().unwrap();
    drop(g);
    run_chunked_plan("s", plan, |c| c.index);
}

fn shadowed(m: &std::sync::Mutex<u32>, plan: Vec<Chunk>) {
    let g = m.lock().unwrap();
    let g = 0u32;
    run_chunked_plan("s", plan, |c| c.index + g);
}

fn consumed(m: &std::sync::Mutex<Vec<u32>>, plan: Vec<Chunk>) {
    let len = m.lock().unwrap().len();
    let copied = *m.lock().unwrap();
    run_chunked_plan("s", plan, |c| c.index + len + copied.len());
}
