//@ path: crates/runtime/src/fixture.rs
//@ expect-line: 9
//@ expect-line: 16
// A lock guard still live at the parallel call — in the same scope and,
// trickier, bound in an enclosing scope of a nested block.

fn direct(m: &std::sync::Mutex<u32>, plan: Vec<Chunk>) {
    let g = m.lock().unwrap();
    run_chunked_plan("s", plan, |c| c.index);
}

fn from_outer_scope(m: &std::sync::RwLock<u32>, plan: Vec<Chunk>) {
    let w = m.write().unwrap();
    if !plan.is_empty() {
        let inner = 1u32;
        rayon::join(|| inner, || 2u32);
    }
}
