//! Integration tests for the `expo-check` gate: a seeded accept/reject
//! fixture corpus in `tests/expo_fixtures/` pins the exposition shape the
//! CI scrape step consumes (mirroring the `check-trace` /
//! `serving_gates.rs` pattern), plus a producer/gate round-trip so the
//! renderer in `parcsr_obs::expo` can never drift out from under the
//! validator.

use std::path::PathBuf;

use xtask::expo_check::check_expo_text;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/expo_fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn accept_scrape_passes_with_all_series() {
    let n = check_expo_text(&fixture("scrape_accept.txt")).expect("accept fixture is valid");
    // 4 scalar series + 6 histogram series + 3 window cells × 6 series.
    assert_eq!(n, 4 + 6 + 18);
}

#[test]
fn reject_fixtures_each_trip_their_rule() {
    for (name, expect) in [
        ("scrape_reject_dup_series.txt", "duplicate series"),
        ("scrape_reject_negative_counter.txt", "negative counter"),
        ("scrape_reject_no_eof.txt", "# EOF"),
        ("scrape_reject_bad_escape.txt", "escape"),
        ("scrape_reject_missing_help.txt", "no HELP"),
        ("scrape_reject_undeclared_series.txt", "TYPE declaration"),
    ] {
        let err = check_expo_text(&fixture(name)).expect_err(&format!("{name} must be rejected"));
        assert!(
            err.contains(expect),
            "{name}: expected error mentioning {expect:?}, got: {err}"
        );
    }
}

/// Producer/gate round-trip: whatever the live renderer emits for a
/// populated snapshot must pass the gate — if either side changes shape,
/// this is the test that breaks first.
#[test]
fn live_renderer_output_passes_the_gate() {
    use parcsr_obs::metrics::{HistogramSummary, MetricsSnapshot, WindowSeries};

    let mut snap = MetricsSnapshot::default();
    snap.counters.push(("queries.total".to_string(), 99));
    snap.gauges.push(("query.win.epoch".to_string(), 3));
    for (kind, class) in [("neighbors", "low"), ("split", "hub")] {
        snap.windows.push(WindowSeries {
            name: format!("query.win.{kind}.{class}"),
            kind,
            class,
            window: 2,
            summary: HistogramSummary {
                count: 10,
                sum: 1000,
                max: 400,
                p50: 80,
                p95: 300,
                p99: 400,
            },
        });
    }
    let text = parcsr_obs::expo::render(&snap);
    let n = check_expo_text(&text).expect("rendered exposition is valid");
    assert_eq!(n, 1 + 1 + 1 + 12);
    assert!(
        text.contains("parcsr_query_win_ns{kind=\"split\",class=\"hub\",quantile=\"0.99\"} 400")
    );
}
