//! Integration tests for the lint layer: the fixture-corpus self-test
//! (every rule keeps firing) and a `--json` report round-trip through the
//! in-tree JSON parser.

use std::path::Path;

use parcsr_obs::json::Json;
use xtask::{fixtures, lints};

#[test]
fn fixture_corpus_passes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures");
    if let Err(errors) = fixtures::check_fixture_corpus(&dir) {
        panic!("fixture corpus failed:\n{}", errors.join("\n"));
    }
}

#[test]
fn json_report_round_trips() {
    // A snippet linted as a hot-path file, producing at least one of each
    // report row kind: a violation (unwaived allocation), an explained
    // waiver, and a justified ordering site. The directive prefix is
    // assembled at runtime so this test file itself stays directive-free.
    let lint = concat!("//", " LINT:");
    let src = format!(
        "fn hot_alloc(n: usize) -> Vec<u64> {{\n\
         \x20   Vec::with_capacity(n)\n\
         }}\n\
         \n\
         fn waived(n: usize) -> Vec<u64> {{\n\
         \x20   {lint} alloc-ok(round-trip test waiver)\n\
         \x20   Vec::with_capacity(n)\n\
         }}\n\
         \n\
         fn counter(c: &std::sync::atomic::AtomicU64) {{\n\
         \x20   c.fetch_add(1, std::sync::atomic::Ordering::Relaxed); // ORDERING: advisory counter.\n\
         }}\n"
    );

    let mut report = lints::WorkspaceReport::default();
    report.merge(lints::analyze_file("crates/core/src/query.rs", &src));
    assert_eq!(
        report
            .violations
            .iter()
            .map(|v| (v.rule, v.line))
            .collect::<Vec<_>>(),
        vec![("hot-path-alloc", 2)]
    );
    assert_eq!(report.waivers.len(), 1, "waiver row present");
    assert_eq!(report.ordering_sites.len(), 1, "ordering row present");

    let json = report.to_json();
    let text = json.pretty();
    let parsed = Json::parse(&text).expect("report JSON parses back");
    assert_eq!(parsed, json, "pretty-print / parse round-trip is lossless");

    // The inventory artifact renders one table row per ordering site.
    let inventory = lints::WorkspaceReport::inventory_markdown(&report);
    assert!(inventory.contains("advisory counter"));
}
