//! Integration tests for the serving-telemetry gates: `slo-check` against
//! seeded good/bad closed-loop results, and `check-trace`'s `query.win.*`
//! windowed-counter rules against accept/reject trace fixtures. The
//! fixtures live in `tests/serving_fixtures/` and pin the artifact shapes
//! CI consumes, so a schema drift in either producer or gate shows up
//! here first.

use std::path::PathBuf;

use xtask::slo_check::{self, SloThresholds};
use xtask::trace_check::check_trace_text;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/serving_fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The thresholds the CI `slo` job enforces on the serving smoke (loose on
/// purpose: a laptop-class runner sustains hundreds of kq/s with p99 in
/// the low microseconds, so 1 ms / 10 kq/s only trips on order-of-magnitude
/// regressions).
const CI_THRESHOLDS: SloThresholds = SloThresholds {
    p99_ns: Some(1_000_000),
    min_qps: Some(10_000.0),
};

#[test]
fn good_result_passes_the_ci_thresholds() {
    let out = slo_check::check_slo_text(&fixture("closed_loop_good.json"), &CI_THRESHOLDS)
        .expect("good fixture must parse");
    assert!(!out.failed, "{}", out.report);
    assert!(out.report.contains("p99:"), "{}", out.report);
    assert!(out.report.contains("ok"), "{}", out.report);
}

#[test]
fn bad_result_fails_both_dimensions() {
    let out = slo_check::check_slo_text(&fixture("closed_loop_bad.json"), &CI_THRESHOLDS)
        .expect("bad fixture is schema-valid; only the numbers are bad");
    assert!(out.failed);
    // Both the latency ceiling and the throughput floor are violated.
    assert_eq!(out.report.matches("VIOLATED").count(), 2, "{}", out.report);
}

#[test]
fn baseline_mode_gates_the_bad_result_against_the_good_one() {
    let base = slo_check::parse_result("baseline", &fixture("closed_loop_good.json")).unwrap();
    let thresholds = slo_check::baseline_thresholds(&base, slo_check::DEFAULT_SLACK);
    // The good result passes against itself-with-slack...
    let out = slo_check::check_slo_text(&fixture("closed_loop_good.json"), &thresholds).unwrap();
    assert!(!out.failed, "{}", out.report);
    // ...the bad one (3000× the latency, 0.5% of the throughput) does not.
    let out = slo_check::check_slo_text(&fixture("closed_loop_bad.json"), &thresholds).unwrap();
    assert!(out.failed);
}

#[test]
fn fixtures_carry_per_kind_and_per_class_rollups() {
    // The gate only reads windows/overall, but the fixtures double as the
    // committed example of the full v1 schema — keep the rollups present.
    for name in ["closed_loop_good.json", "closed_loop_bad.json"] {
        let doc = parcsr_obs::json::Json::parse(&fixture(name)).unwrap();
        let overall = doc.get("overall").unwrap();
        assert!(
            !overall.get("kinds").unwrap().as_array().unwrap().is_empty(),
            "{name}: overall.kinds empty"
        );
        assert!(
            !overall
                .get("classes")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "{name}: overall.classes empty"
        );
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some(slo_check::SCHEMA),
            "{name}"
        );
    }
}

#[test]
fn trace_with_windowed_counters_is_accepted() {
    let n = check_trace_text(&fixture("query_win_accept.trace.json"))
        .expect("accept fixture must validate");
    assert_eq!(n, 7);
}

#[test]
fn trace_with_backwards_window_ordinal_is_rejected() {
    let err = check_trace_text(&fixture("query_win_reject.trace.json")).unwrap_err();
    assert!(err.contains("window ordinal goes backwards"), "{err}");
}
