//! Integration tests for the serving-telemetry gates: `slo-check` against
//! seeded good/bad closed-loop results, and `check-trace`'s `query.win.*`
//! windowed-counter rules against accept/reject trace fixtures. The
//! fixtures live in `tests/serving_fixtures/` and pin the artifact shapes
//! CI consumes, so a schema drift in either producer or gate shows up
//! here first.

use std::path::PathBuf;

use xtask::slo_check::{self, SloThresholds};
use xtask::trace_check::check_trace_text;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/serving_fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The thresholds the CI `slo` job enforces on the serving smoke (loose on
/// purpose: a laptop-class runner sustains hundreds of kq/s with p99 in
/// the low microseconds, so 1 ms / 10 kq/s only trips on order-of-magnitude
/// regressions). The phase ceilings gate the queue/exec decomposition the
/// same way: sub-millisecond phases on a healthy run, so only a collapsed
/// dispatch path or a saturated pool trips them.
const CI_THRESHOLDS: SloThresholds = SloThresholds {
    p99_ns: Some(1_000_000),
    min_qps: Some(10_000.0),
    p99_queue_ns: Some(500_000),
    p99_exec_ns: Some(1_000_000),
};

#[test]
fn good_result_passes_the_ci_thresholds() {
    let out = slo_check::check_slo_text(&fixture("closed_loop_good.json"), &CI_THRESHOLDS)
        .expect("good fixture must parse");
    assert!(!out.failed, "{}", out.report);
    assert!(out.report.contains("p99:"), "{}", out.report);
    assert!(out.report.contains("ok"), "{}", out.report);
}

#[test]
fn bad_result_fails_every_dimension() {
    let out = slo_check::check_slo_text(&fixture("closed_loop_bad.json"), &CI_THRESHOLDS)
        .expect("bad fixture is schema-valid; only the numbers are bad");
    assert!(out.failed);
    // The latency ceiling, the throughput floor, and both phase ceilings
    // are violated.
    assert_eq!(out.report.matches("VIOLATED").count(), 4, "{}", out.report);
    assert!(out.report.contains("queue p99"), "{}", out.report);
    assert!(out.report.contains("exec p99"), "{}", out.report);
}

#[test]
fn baseline_mode_gates_the_bad_result_against_the_good_one() {
    let base = slo_check::parse_result("baseline", &fixture("closed_loop_good.json")).unwrap();
    let thresholds = slo_check::baseline_thresholds(&base, slo_check::DEFAULT_SLACK);
    // The good result passes against itself-with-slack...
    let out = slo_check::check_slo_text(&fixture("closed_loop_good.json"), &thresholds).unwrap();
    assert!(!out.failed, "{}", out.report);
    // ...the bad one (3000× the latency, 0.5% of the throughput) does not.
    let out = slo_check::check_slo_text(&fixture("closed_loop_bad.json"), &thresholds).unwrap();
    assert!(out.failed);
}

#[test]
fn fixtures_carry_per_kind_and_per_class_rollups() {
    // The gate only reads windows/overall, but the fixtures double as the
    // committed example of the full v1 schema — keep the rollups present.
    for name in ["closed_loop_good.json", "closed_loop_bad.json"] {
        let doc = parcsr_obs::json::Json::parse(&fixture(name)).unwrap();
        let overall = doc.get("overall").unwrap();
        assert!(
            !overall.get("kinds").unwrap().as_array().unwrap().is_empty(),
            "{name}: overall.kinds empty"
        );
        assert!(
            !overall
                .get("classes")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "{name}: overall.classes empty"
        );
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some(slo_check::SCHEMA),
            "{name}"
        );
    }
}

#[test]
fn fixtures_carry_phase_rollups_and_exemplars() {
    // The phase-decomposed schema additions: per-window and overall
    // `phases`, the per-class rollup, and the tail-exemplar block.
    for name in ["closed_loop_good.json", "closed_loop_bad.json"] {
        let doc = parcsr_obs::json::Json::parse(&fixture(name)).unwrap();
        let result = slo_check::parse_result("fixture", &fixture(name)).unwrap();
        for phase in ["queue", "exec", "reply"] {
            assert!(
                result.phase(phase).is_some(),
                "{name}: overall.phases missing `{phase}`"
            );
        }
        for w in doc.get("windows").unwrap().as_array().unwrap() {
            assert!(
                !w.get("phases").unwrap().as_array().unwrap().is_empty(),
                "{name}: window phases empty"
            );
        }
        assert!(
            !doc.get("class_phases")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "{name}: class_phases empty"
        );
        let ex = doc.get("exemplars").unwrap();
        assert_eq!(
            ex.get("schema").unwrap().as_str(),
            Some("parcsr.exemplars.v1"),
            "{name}"
        );
        for win in ex.get("windows").unwrap().as_array().unwrap() {
            for e in win.get("exemplars").unwrap().as_array().unwrap() {
                let ns = |k: &str| e.get(k).unwrap().as_i64().unwrap();
                assert_eq!(
                    ns("queue_ns") + ns("exec_ns") + ns("reply_ns"),
                    ns("total_ns"),
                    "{name}: exemplar phases must partition the total"
                );
            }
        }
    }
}

#[test]
fn trace_with_windowed_counters_is_accepted() {
    // 2 spans, 4 query.win points, 2 qps points, 3 phase points, 1
    // exemplar — and the phase sums reconcile with their cell.
    let n = check_trace_text(&fixture("query_win_accept.trace.json"))
        .expect("accept fixture must validate");
    assert_eq!(n, 11);
}

#[test]
fn trace_with_backwards_window_ordinal_is_rejected() {
    let err = check_trace_text(&fixture("query_win_reject.trace.json")).unwrap_err();
    assert!(err.contains("window ordinal goes backwards"), "{err}");
}

#[test]
fn trace_with_unreconciled_phase_sums_is_rejected() {
    // queue 300000 + exec 330000 against a 400000 ns cell: the phases
    // claim 57% more time than the end-to-end measurement.
    let err = check_trace_text(&fixture("query_phase_reject.trace.json")).unwrap_err();
    assert!(err.contains("more than 10%"), "{err}");
}
