//! Cross-run stage-regression diff over two bench `*.stages.json` files.
//!
//! `cargo xtask stage-diff <baseline> <current> [--threshold F]` compares,
//! for every `(dataset, processors)` sample present in both files, each
//! construction stage's **share of total construction time** and its
//! **peak heap bytes** against the baseline:
//!
//! * time shares are compared in absolute percentage points — a stage that
//!   moved from 12% to 25% of the build drifted by 0.13 regardless of how
//!   the machine's absolute speed changed between runs, which makes the
//!   check robust to CI hosts of different speeds;
//! * peak memory is compared relatively (`|cur - base| / base`), and only
//!   when both runs recorded it (a baseline captured without
//!   `--mem-metrics` reports 0 and is skipped, not failed).
//!
//! Either drift above the threshold (default 0.10) fails the diff with a
//! per-stage table naming the offenders. Samples or stages present on only
//! one side are reported but do not fail — datasets and pipeline stages
//! are expected to be added over time; a *shift* in an existing stage is
//! the regression signal.

use parcsr_obs::json::Json;

use xtask::trace_read::parse_json;

/// One construction stage of one `(dataset, processors)` sample.
struct Stage {
    name: String,
    total_ms: f64,
    mem_peak_bytes: u64,
}

/// One `(dataset, processors)` sample: the per-stage breakdown of a run.
struct Sample {
    dataset: String,
    processors: i64,
    stages: Vec<Stage>,
}

fn parse_samples(which: &str, text: &str) -> Result<Vec<Sample>, String> {
    let doc = parse_json(which, text)?;
    let datasets = doc
        .as_array()
        .ok_or_else(|| format!("{which}: top level is not an array of dataset results"))?;
    let mut out = Vec::new();
    for ds in datasets {
        let name = ds
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{which}: dataset result is missing `name`"))?;
        let samples = ds
            .get("samples")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{which}: dataset `{name}` is missing `samples`"))?;
        for s in samples {
            let processors = s
                .get("processors")
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("{which}: sample in `{name}` is missing `processors`"))?;
            let stages = s
                .get("stages")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("{which}: sample in `{name}` is missing `stages`"))?;
            let mut parsed = Vec::new();
            for st in stages {
                let sname = st
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{which}: stage in `{name}` is missing `name`"))?;
                let total_ms = st
                    .get("total_ms")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{which}: stage `{sname}` is missing `total_ms`"))?;
                // Baselines written before memory accounting lack the field.
                let mem = st
                    .get("mem_peak_bytes")
                    .and_then(Json::as_i64)
                    .unwrap_or(0)
                    .max(0) as u64;
                parsed.push(Stage {
                    name: sname.to_string(),
                    total_ms,
                    mem_peak_bytes: mem,
                });
            }
            out.push(Sample {
                dataset: name.to_string(),
                processors,
                stages: parsed,
            });
        }
    }
    Ok(out)
}

/// Construction-time share of each stage within one sample. A sample whose
/// stages sum to zero time (trace disabled) yields zero shares.
fn shares(stages: &[Stage]) -> Vec<(String, f64, u64)> {
    let total: f64 = stages.iter().map(|s| s.total_ms).sum();
    stages
        .iter()
        .map(|s| {
            let share = if total > 0.0 { s.total_ms / total } else { 0.0 };
            (s.name.clone(), share, s.mem_peak_bytes)
        })
        .collect()
}

/// Outcome of a diff: the rendered report and whether any drift exceeded
/// the threshold.
#[derive(Debug)]
pub struct DiffOutcome {
    /// Per-sample tables plus the summary line, ready to print.
    pub report: String,
    /// True iff at least one stage drifted above the threshold.
    pub failed: bool,
}

/// Diffs two bench JSON texts; `Err` means a file failed to parse.
pub fn diff_stage_text(base: &str, cur: &str, threshold: f64) -> Result<DiffOutcome, String> {
    let base = parse_samples("baseline", base)?;
    let cur = parse_samples("current", cur)?;
    let mut report = String::new();
    let mut violations = 0usize;
    let mut compared = 0usize;

    for sample in &cur {
        let Some(bs) = base
            .iter()
            .find(|b| b.dataset == sample.dataset && b.processors == sample.processors)
        else {
            report.push_str(&format!(
                "-- {} p={}: no baseline sample, skipped\n",
                sample.dataset, sample.processors
            ));
            continue;
        };
        compared += 1;
        report.push_str(&format!(
            "== {} p={} ==\n{:<24} {:>7} {:>7} {:>7}  {:>12} {:>12} {:>7}\n",
            sample.dataset,
            sample.processors,
            "stage",
            "base%",
            "cur%",
            "d_pp",
            "base_mem",
            "cur_mem",
            "d_mem%"
        ));
        let base_shares = shares(&bs.stages);
        let cur_shares = shares(&sample.stages);

        // Union of stage names, baseline order first so the table reads in
        // pipeline order.
        let mut names: Vec<&str> = base_shares.iter().map(|(n, _, _)| n.as_str()).collect();
        for (n, _, _) in &cur_shares {
            if !names.contains(&n.as_str()) {
                names.push(n);
            }
        }

        for name in names {
            let b = base_shares.iter().find(|(n, _, _)| n == name);
            let c = cur_shares.iter().find(|(n, _, _)| n == name);
            match (b, c) {
                (Some((_, bsh, bmem)), Some((_, csh, cmem))) => {
                    let d_share = (csh - bsh).abs();
                    let time_fail = d_share > threshold;
                    let (mem_col, mem_fail) = if *bmem > 0 && *cmem > 0 {
                        let d_mem = (*cmem as f64 - *bmem as f64) / *bmem as f64;
                        (format!("{:>+7.1}", d_mem * 100.0), d_mem.abs() > threshold)
                    } else {
                        ("      -".to_string(), false)
                    };
                    let marker = match (time_fail, mem_fail) {
                        (true, true) => "  <-- FAIL (time, mem)",
                        (true, false) => "  <-- FAIL (time)",
                        (false, true) => "  <-- FAIL (mem)",
                        (false, false) => "",
                    };
                    violations += usize::from(time_fail) + usize::from(mem_fail);
                    report.push_str(&format!(
                        "{:<24} {:>7.1} {:>7.1} {:>+7.1}  {:>12} {:>12} {}{}\n",
                        name,
                        bsh * 100.0,
                        csh * 100.0,
                        (csh - bsh) * 100.0,
                        bmem,
                        cmem,
                        mem_col,
                        marker
                    ));
                }
                (Some(_), None) => {
                    report.push_str(&format!("{name:<24} present only in baseline\n"));
                }
                (None, Some(_)) => {
                    report.push_str(&format!("{name:<24} present only in current\n"));
                }
                (None, None) => unreachable!("name came from one of the two lists"),
            }
        }
        report.push('\n');
    }

    if compared == 0 {
        report.push_str("stage-diff: no overlapping (dataset, processors) samples\n");
    }
    report.push_str(&format!(
        "stage-diff: {} violation{} above threshold {:.2} across {} sample{}\n",
        violations,
        if violations == 1 { "" } else { "s" },
        threshold,
        compared,
        if compared == 1 { "" } else { "s" }
    ));
    Ok(DiffOutcome {
        report,
        failed: violations > 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(stages: &[(&str, f64, i64)]) -> String {
        let body: Vec<String> = stages
            .iter()
            .map(|(n, ms, mem)| {
                format!(
                    r#"{{"name":"{n}","calls":1,"kept":1,"total_ms":{ms},"workers":1,"mem_peak_bytes":{mem}}}"#
                )
            })
            .collect();
        format!(
            r#"[{{"name":"toy","samples":[{{"processors":4,"time_ms":10.0,"stages":[{}]}}]}}]"#,
            body.join(",")
        )
    }

    #[test]
    fn identical_runs_pass() {
        let a = doc(&[
            ("degree", 4.0, 1000),
            ("scan", 2.0, 500),
            ("scatter", 4.0, 2000),
        ]);
        let out = diff_stage_text(&a, &a, 0.10).unwrap();
        assert!(!out.failed, "{}", out.report);
        assert!(out.report.contains("0 violations"), "{}", out.report);
    }

    #[test]
    fn uniform_slowdown_passes_shares_are_scale_free() {
        let a = doc(&[("degree", 4.0, 1000), ("scan", 2.0, 500)]);
        // 3x slower machine, same shape: shares identical.
        let b = doc(&[("degree", 12.0, 1000), ("scan", 6.0, 500)]);
        let out = diff_stage_text(&a, &b, 0.10).unwrap();
        assert!(!out.failed, "{}", out.report);
    }

    #[test]
    fn time_share_drift_fails_readably() {
        let a = doc(&[("degree", 5.0, 0), ("scan", 5.0, 0)]);
        // degree moves from 50% to 80% of the build: 30pp drift.
        let b = doc(&[("degree", 8.0, 0), ("scan", 2.0, 0)]);
        let out = diff_stage_text(&a, &b, 0.10).unwrap();
        assert!(out.failed);
        assert!(out.report.contains("FAIL (time)"), "{}", out.report);
        assert!(out.report.contains("degree"), "{}", out.report);
    }

    #[test]
    fn mem_drift_fails_and_zero_mem_is_skipped() {
        let a = doc(&[("degree", 5.0, 1000), ("scan", 5.0, 0)]);
        let b = doc(&[("degree", 5.0, 1500), ("scan", 5.0, 999)]);
        let out = diff_stage_text(&a, &b, 0.10).unwrap();
        assert!(out.failed);
        // degree: +50% mem fails; scan: baseline had no accounting, skipped.
        assert!(out.report.contains("FAIL (mem)"), "{}", out.report);
        assert_eq!(out.report.matches("FAIL").count(), 1, "{}", out.report);
        let loose = diff_stage_text(&a, &b, 0.60).unwrap();
        assert!(!loose.failed, "{}", loose.report);
    }

    #[test]
    fn missing_samples_and_stages_do_not_fail() {
        let a = doc(&[("degree", 5.0, 0), ("scan", 5.0, 0)]);
        let b = r#"[{"name":"toy","samples":[{"processors":8,"time_ms":1.0,"stages":[]}]}]"#;
        let out = diff_stage_text(&a, b, 0.10).unwrap();
        assert!(!out.failed, "{}", out.report);
        assert!(out.report.contains("no baseline sample"), "{}", out.report);
        assert!(out.report.contains("no overlapping"), "{}", out.report);

        let c = doc(&[("degree", 10.0, 0)]);
        let a2 = doc(&[("degree", 10.0, 0), ("pack", 0.0, 0)]);
        let out = diff_stage_text(&a2, &c, 0.10).unwrap();
        assert!(!out.failed, "{}", out.report);
        assert!(out.report.contains("only in baseline"), "{}", out.report);
    }

    #[test]
    fn parse_errors_are_reported_per_side() {
        assert!(diff_stage_text("nope", "[]", 0.1)
            .unwrap_err()
            .contains("baseline"));
        assert!(diff_stage_text("[]", "nope", 0.1)
            .unwrap_err()
            .contains("current"));
        let bad = r#"[{"samples":[]}]"#;
        assert!(diff_stage_text(bad, "[]", 0.1)
            .unwrap_err()
            .contains("`name`"));
    }
}
